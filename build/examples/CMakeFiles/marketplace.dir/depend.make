# Empty dependencies file for marketplace.
# This may be replaced when dependencies are built.
