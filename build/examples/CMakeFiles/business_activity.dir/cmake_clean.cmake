file(REMOVE_RECURSE
  "CMakeFiles/business_activity.dir/business_activity.cpp.o"
  "CMakeFiles/business_activity.dir/business_activity.cpp.o.d"
  "business_activity"
  "business_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/business_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
