# Empty compiler generated dependencies file for business_activity.
# This may be replaced when dependencies are built.
