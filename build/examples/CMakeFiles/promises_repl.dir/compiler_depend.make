# Empty compiler generated dependencies file for promises_repl.
# This may be replaced when dependencies are built.
