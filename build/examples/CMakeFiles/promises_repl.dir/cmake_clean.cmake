file(REMOVE_RECURSE
  "CMakeFiles/promises_repl.dir/promises_repl.cpp.o"
  "CMakeFiles/promises_repl.dir/promises_repl.cpp.o.d"
  "promises_repl"
  "promises_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
