# Empty compiler generated dependencies file for order_workflow.
# This may be replaced when dependencies are built.
