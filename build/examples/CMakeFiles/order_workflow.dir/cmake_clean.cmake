file(REMOVE_RECURSE
  "CMakeFiles/order_workflow.dir/order_workflow.cpp.o"
  "CMakeFiles/order_workflow.dir/order_workflow.cpp.o.d"
  "order_workflow"
  "order_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
