# Empty dependencies file for bank_escrow.
# This may be replaced when dependencies are built.
