file(REMOVE_RECURSE
  "CMakeFiles/bank_escrow.dir/bank_escrow.cpp.o"
  "CMakeFiles/bank_escrow.dir/bank_escrow.cpp.o.d"
  "bank_escrow"
  "bank_escrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_escrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
