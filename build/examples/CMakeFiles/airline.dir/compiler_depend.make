# Empty compiler generated dependencies file for airline.
# This may be replaced when dependencies are built.
