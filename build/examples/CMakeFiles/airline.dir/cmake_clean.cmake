file(REMOVE_RECURSE
  "CMakeFiles/airline.dir/airline.cpp.o"
  "CMakeFiles/airline.dir/airline.cpp.o.d"
  "airline"
  "airline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
