file(REMOVE_RECURSE
  "CMakeFiles/hotel_booking.dir/hotel_booking.cpp.o"
  "CMakeFiles/hotel_booking.dir/hotel_booking.cpp.o.d"
  "hotel_booking"
  "hotel_booking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_booking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
