
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hotel_booking.cpp" "examples/CMakeFiles/hotel_booking.dir/hotel_booking.cpp.o" "gcc" "examples/CMakeFiles/hotel_booking.dir/hotel_booking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/promises_service.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/promises_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/promises_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/wsba/CMakeFiles/promises_wsba.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/promises_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/promises_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/promises_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/promises_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/predicate/CMakeFiles/promises_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/promises_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/promises_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/promises_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
