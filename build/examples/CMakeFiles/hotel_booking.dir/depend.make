# Empty dependencies file for hotel_booking.
# This may be replaced when dependencies are built.
