file(REMOVE_RECURSE
  "CMakeFiles/travel_agent.dir/travel_agent.cpp.o"
  "CMakeFiles/travel_agent.dir/travel_agent.cpp.o.d"
  "travel_agent"
  "travel_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
