# Empty compiler generated dependencies file for travel_agent.
# This may be replaced when dependencies are built.
