# Empty dependencies file for promises_tests.
# This may be replaced when dependencies are built.
