
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/client_services_test.cc" "tests/CMakeFiles/promises_tests.dir/client_services_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/client_services_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/promises_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/contract_test.cc" "tests/CMakeFiles/promises_tests.dir/contract_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/contract_test.cc.o.d"
  "/root/repo/tests/delegation_test.cc" "tests/CMakeFiles/promises_tests.dir/delegation_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/delegation_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/promises_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/escrow_test.cc" "tests/CMakeFiles/promises_tests.dir/escrow_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/escrow_test.cc.o.d"
  "/root/repo/tests/federation_test.cc" "tests/CMakeFiles/promises_tests.dir/federation_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/federation_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/promises_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/matching_test.cc" "tests/CMakeFiles/promises_tests.dir/matching_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/matching_test.cc.o.d"
  "/root/repo/tests/pending_test.cc" "tests/CMakeFiles/promises_tests.dir/pending_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/pending_test.cc.o.d"
  "/root/repo/tests/predicate_test.cc" "tests/CMakeFiles/promises_tests.dir/predicate_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/predicate_test.cc.o.d"
  "/root/repo/tests/promise_manager_test.cc" "tests/CMakeFiles/promises_tests.dir/promise_manager_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/promise_manager_test.cc.o.d"
  "/root/repo/tests/promise_table_test.cc" "tests/CMakeFiles/promises_tests.dir/promise_table_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/promise_table_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/promises_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/protocol_test.cc" "tests/CMakeFiles/promises_tests.dir/protocol_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/protocol_test.cc.o.d"
  "/root/repo/tests/recovery_test.cc" "tests/CMakeFiles/promises_tests.dir/recovery_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/recovery_test.cc.o.d"
  "/root/repo/tests/resource_test.cc" "tests/CMakeFiles/promises_tests.dir/resource_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/resource_test.cc.o.d"
  "/root/repo/tests/roundtrip_fuzz_test.cc" "tests/CMakeFiles/promises_tests.dir/roundtrip_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/roundtrip_fuzz_test.cc.o.d"
  "/root/repo/tests/tcp_transport_test.cc" "tests/CMakeFiles/promises_tests.dir/tcp_transport_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/tcp_transport_test.cc.o.d"
  "/root/repo/tests/technique_conformance_test.cc" "tests/CMakeFiles/promises_tests.dir/technique_conformance_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/technique_conformance_test.cc.o.d"
  "/root/repo/tests/txn_test.cc" "tests/CMakeFiles/promises_tests.dir/txn_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/txn_test.cc.o.d"
  "/root/repo/tests/violation_test.cc" "tests/CMakeFiles/promises_tests.dir/violation_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/violation_test.cc.o.d"
  "/root/repo/tests/workflow_test.cc" "tests/CMakeFiles/promises_tests.dir/workflow_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/workflow_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/promises_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/wsba_test.cc" "tests/CMakeFiles/promises_tests.dir/wsba_test.cc.o" "gcc" "tests/CMakeFiles/promises_tests.dir/wsba_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/promises_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/promises_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/wsba/CMakeFiles/promises_wsba.dir/DependInfo.cmake"
  "/root/repo/build/src/contract/CMakeFiles/promises_contract.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/promises_service.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/promises_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/promises_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/promises_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/promises_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/predicate/CMakeFiles/promises_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/promises_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/promises_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/promises_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
