# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("txn")
subdirs("resource")
subdirs("predicate")
subdirs("matching")
subdirs("protocol")
subdirs("workflow")
subdirs("wsba")
subdirs("contract")
subdirs("core")
subdirs("service")
subdirs("baseline")
subdirs("sim")
