file(REMOVE_RECURSE
  "libpromises_common.a"
)
