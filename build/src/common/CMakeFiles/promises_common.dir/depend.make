# Empty dependencies file for promises_common.
# This may be replaced when dependencies are built.
