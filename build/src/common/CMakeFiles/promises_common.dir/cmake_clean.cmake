file(REMOVE_RECURSE
  "CMakeFiles/promises_common.dir/rng.cc.o"
  "CMakeFiles/promises_common.dir/rng.cc.o.d"
  "CMakeFiles/promises_common.dir/status.cc.o"
  "CMakeFiles/promises_common.dir/status.cc.o.d"
  "CMakeFiles/promises_common.dir/string_util.cc.o"
  "CMakeFiles/promises_common.dir/string_util.cc.o.d"
  "libpromises_common.a"
  "libpromises_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
