file(REMOVE_RECURSE
  "libpromises_predicate.a"
)
