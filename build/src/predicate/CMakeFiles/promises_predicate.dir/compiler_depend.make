# Empty compiler generated dependencies file for promises_predicate.
# This may be replaced when dependencies are built.
