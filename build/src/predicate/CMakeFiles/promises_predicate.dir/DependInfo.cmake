
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predicate/ast.cc" "src/predicate/CMakeFiles/promises_predicate.dir/ast.cc.o" "gcc" "src/predicate/CMakeFiles/promises_predicate.dir/ast.cc.o.d"
  "/root/repo/src/predicate/evaluator.cc" "src/predicate/CMakeFiles/promises_predicate.dir/evaluator.cc.o" "gcc" "src/predicate/CMakeFiles/promises_predicate.dir/evaluator.cc.o.d"
  "/root/repo/src/predicate/parser.cc" "src/predicate/CMakeFiles/promises_predicate.dir/parser.cc.o" "gcc" "src/predicate/CMakeFiles/promises_predicate.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/promises_common.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/promises_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/promises_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
