file(REMOVE_RECURSE
  "CMakeFiles/promises_predicate.dir/ast.cc.o"
  "CMakeFiles/promises_predicate.dir/ast.cc.o.d"
  "CMakeFiles/promises_predicate.dir/evaluator.cc.o"
  "CMakeFiles/promises_predicate.dir/evaluator.cc.o.d"
  "CMakeFiles/promises_predicate.dir/parser.cc.o"
  "CMakeFiles/promises_predicate.dir/parser.cc.o.d"
  "libpromises_predicate.a"
  "libpromises_predicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_predicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
