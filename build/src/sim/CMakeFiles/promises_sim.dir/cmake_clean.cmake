file(REMOVE_RECURSE
  "CMakeFiles/promises_sim.dir/metrics.cc.o"
  "CMakeFiles/promises_sim.dir/metrics.cc.o.d"
  "CMakeFiles/promises_sim.dir/workload.cc.o"
  "CMakeFiles/promises_sim.dir/workload.cc.o.d"
  "libpromises_sim.a"
  "libpromises_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
