# Empty compiler generated dependencies file for promises_sim.
# This may be replaced when dependencies are built.
