file(REMOVE_RECURSE
  "libpromises_sim.a"
)
