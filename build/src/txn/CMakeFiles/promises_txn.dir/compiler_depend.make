# Empty compiler generated dependencies file for promises_txn.
# This may be replaced when dependencies are built.
