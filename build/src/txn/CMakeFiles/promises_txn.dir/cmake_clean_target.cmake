file(REMOVE_RECURSE
  "libpromises_txn.a"
)
