file(REMOVE_RECURSE
  "CMakeFiles/promises_txn.dir/lock_manager.cc.o"
  "CMakeFiles/promises_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/promises_txn.dir/transaction.cc.o"
  "CMakeFiles/promises_txn.dir/transaction.cc.o.d"
  "libpromises_txn.a"
  "libpromises_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
