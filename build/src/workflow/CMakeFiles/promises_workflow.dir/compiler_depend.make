# Empty compiler generated dependencies file for promises_workflow.
# This may be replaced when dependencies are built.
