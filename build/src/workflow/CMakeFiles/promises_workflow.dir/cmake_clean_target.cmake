file(REMOVE_RECURSE
  "libpromises_workflow.a"
)
