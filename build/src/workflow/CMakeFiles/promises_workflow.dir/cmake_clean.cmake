file(REMOVE_RECURSE
  "CMakeFiles/promises_workflow.dir/engine.cc.o"
  "CMakeFiles/promises_workflow.dir/engine.cc.o.d"
  "libpromises_workflow.a"
  "libpromises_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
