file(REMOVE_RECURSE
  "CMakeFiles/promises_baseline.dir/ordering.cc.o"
  "CMakeFiles/promises_baseline.dir/ordering.cc.o.d"
  "libpromises_baseline.a"
  "libpromises_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
