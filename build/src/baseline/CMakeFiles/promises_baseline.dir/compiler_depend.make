# Empty compiler generated dependencies file for promises_baseline.
# This may be replaced when dependencies are built.
