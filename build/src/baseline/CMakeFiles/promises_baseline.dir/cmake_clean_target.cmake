file(REMOVE_RECURSE
  "libpromises_baseline.a"
)
