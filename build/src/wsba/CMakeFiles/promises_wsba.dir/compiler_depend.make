# Empty compiler generated dependencies file for promises_wsba.
# This may be replaced when dependencies are built.
