file(REMOVE_RECURSE
  "libpromises_wsba.a"
)
