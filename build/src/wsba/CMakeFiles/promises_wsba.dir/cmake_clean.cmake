file(REMOVE_RECURSE
  "CMakeFiles/promises_wsba.dir/business_activity.cc.o"
  "CMakeFiles/promises_wsba.dir/business_activity.cc.o.d"
  "libpromises_wsba.a"
  "libpromises_wsba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_wsba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
