file(REMOVE_RECURSE
  "libpromises_resource.a"
)
