
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resource/resource_manager.cc" "src/resource/CMakeFiles/promises_resource.dir/resource_manager.cc.o" "gcc" "src/resource/CMakeFiles/promises_resource.dir/resource_manager.cc.o.d"
  "/root/repo/src/resource/schema.cc" "src/resource/CMakeFiles/promises_resource.dir/schema.cc.o" "gcc" "src/resource/CMakeFiles/promises_resource.dir/schema.cc.o.d"
  "/root/repo/src/resource/value.cc" "src/resource/CMakeFiles/promises_resource.dir/value.cc.o" "gcc" "src/resource/CMakeFiles/promises_resource.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/promises_common.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/promises_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
