file(REMOVE_RECURSE
  "CMakeFiles/promises_resource.dir/resource_manager.cc.o"
  "CMakeFiles/promises_resource.dir/resource_manager.cc.o.d"
  "CMakeFiles/promises_resource.dir/schema.cc.o"
  "CMakeFiles/promises_resource.dir/schema.cc.o.d"
  "CMakeFiles/promises_resource.dir/value.cc.o"
  "CMakeFiles/promises_resource.dir/value.cc.o.d"
  "libpromises_resource.a"
  "libpromises_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
