# Empty dependencies file for promises_resource.
# This may be replaced when dependencies are built.
