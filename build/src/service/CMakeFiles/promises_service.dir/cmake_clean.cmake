file(REMOVE_RECURSE
  "CMakeFiles/promises_service.dir/client.cc.o"
  "CMakeFiles/promises_service.dir/client.cc.o.d"
  "CMakeFiles/promises_service.dir/services.cc.o"
  "CMakeFiles/promises_service.dir/services.cc.o.d"
  "libpromises_service.a"
  "libpromises_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
