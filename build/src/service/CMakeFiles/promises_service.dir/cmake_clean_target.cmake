file(REMOVE_RECURSE
  "libpromises_service.a"
)
