# Empty dependencies file for promises_service.
# This may be replaced when dependencies are built.
