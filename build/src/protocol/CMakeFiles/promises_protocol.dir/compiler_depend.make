# Empty compiler generated dependencies file for promises_protocol.
# This may be replaced when dependencies are built.
