file(REMOVE_RECURSE
  "CMakeFiles/promises_protocol.dir/message.cc.o"
  "CMakeFiles/promises_protocol.dir/message.cc.o.d"
  "CMakeFiles/promises_protocol.dir/tcp_transport.cc.o"
  "CMakeFiles/promises_protocol.dir/tcp_transport.cc.o.d"
  "CMakeFiles/promises_protocol.dir/transport.cc.o"
  "CMakeFiles/promises_protocol.dir/transport.cc.o.d"
  "CMakeFiles/promises_protocol.dir/xml.cc.o"
  "CMakeFiles/promises_protocol.dir/xml.cc.o.d"
  "libpromises_protocol.a"
  "libpromises_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
