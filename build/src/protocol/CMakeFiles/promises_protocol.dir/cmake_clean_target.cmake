file(REMOVE_RECURSE
  "libpromises_protocol.a"
)
