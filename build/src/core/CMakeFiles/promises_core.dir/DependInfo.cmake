
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/delegation_engine.cc" "src/core/CMakeFiles/promises_core.dir/delegation_engine.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/delegation_engine.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/promises_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/engine.cc.o.d"
  "/root/repo/src/core/escrow.cc" "src/core/CMakeFiles/promises_core.dir/escrow.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/escrow.cc.o.d"
  "/root/repo/src/core/federated_engine.cc" "src/core/CMakeFiles/promises_core.dir/federated_engine.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/federated_engine.cc.o.d"
  "/root/repo/src/core/oplog.cc" "src/core/CMakeFiles/promises_core.dir/oplog.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/oplog.cc.o.d"
  "/root/repo/src/core/pool_engine.cc" "src/core/CMakeFiles/promises_core.dir/pool_engine.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/pool_engine.cc.o.d"
  "/root/repo/src/core/promise_manager.cc" "src/core/CMakeFiles/promises_core.dir/promise_manager.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/promise_manager.cc.o.d"
  "/root/repo/src/core/promise_table.cc" "src/core/CMakeFiles/promises_core.dir/promise_table.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/promise_table.cc.o.d"
  "/root/repo/src/core/satisfiability_engine.cc" "src/core/CMakeFiles/promises_core.dir/satisfiability_engine.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/satisfiability_engine.cc.o.d"
  "/root/repo/src/core/tag_engine.cc" "src/core/CMakeFiles/promises_core.dir/tag_engine.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/tag_engine.cc.o.d"
  "/root/repo/src/core/tentative_engine.cc" "src/core/CMakeFiles/promises_core.dir/tentative_engine.cc.o" "gcc" "src/core/CMakeFiles/promises_core.dir/tentative_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/promises_common.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/promises_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/promises_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/predicate/CMakeFiles/promises_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/promises_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/promises_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
