file(REMOVE_RECURSE
  "libpromises_core.a"
)
