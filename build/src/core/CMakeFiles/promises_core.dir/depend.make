# Empty dependencies file for promises_core.
# This may be replaced when dependencies are built.
