file(REMOVE_RECURSE
  "CMakeFiles/promises_core.dir/delegation_engine.cc.o"
  "CMakeFiles/promises_core.dir/delegation_engine.cc.o.d"
  "CMakeFiles/promises_core.dir/engine.cc.o"
  "CMakeFiles/promises_core.dir/engine.cc.o.d"
  "CMakeFiles/promises_core.dir/escrow.cc.o"
  "CMakeFiles/promises_core.dir/escrow.cc.o.d"
  "CMakeFiles/promises_core.dir/federated_engine.cc.o"
  "CMakeFiles/promises_core.dir/federated_engine.cc.o.d"
  "CMakeFiles/promises_core.dir/oplog.cc.o"
  "CMakeFiles/promises_core.dir/oplog.cc.o.d"
  "CMakeFiles/promises_core.dir/pool_engine.cc.o"
  "CMakeFiles/promises_core.dir/pool_engine.cc.o.d"
  "CMakeFiles/promises_core.dir/promise_manager.cc.o"
  "CMakeFiles/promises_core.dir/promise_manager.cc.o.d"
  "CMakeFiles/promises_core.dir/promise_table.cc.o"
  "CMakeFiles/promises_core.dir/promise_table.cc.o.d"
  "CMakeFiles/promises_core.dir/satisfiability_engine.cc.o"
  "CMakeFiles/promises_core.dir/satisfiability_engine.cc.o.d"
  "CMakeFiles/promises_core.dir/tag_engine.cc.o"
  "CMakeFiles/promises_core.dir/tag_engine.cc.o.d"
  "CMakeFiles/promises_core.dir/tentative_engine.cc.o"
  "CMakeFiles/promises_core.dir/tentative_engine.cc.o.d"
  "libpromises_core.a"
  "libpromises_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
