file(REMOVE_RECURSE
  "libpromises_matching.a"
)
