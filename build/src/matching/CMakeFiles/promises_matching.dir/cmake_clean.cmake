file(REMOVE_RECURSE
  "CMakeFiles/promises_matching.dir/bipartite.cc.o"
  "CMakeFiles/promises_matching.dir/bipartite.cc.o.d"
  "libpromises_matching.a"
  "libpromises_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
