# Empty dependencies file for promises_matching.
# This may be replaced when dependencies are built.
