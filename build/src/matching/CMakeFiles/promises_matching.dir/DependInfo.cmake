
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/bipartite.cc" "src/matching/CMakeFiles/promises_matching.dir/bipartite.cc.o" "gcc" "src/matching/CMakeFiles/promises_matching.dir/bipartite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/promises_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
