file(REMOVE_RECURSE
  "libpromises_contract.a"
)
