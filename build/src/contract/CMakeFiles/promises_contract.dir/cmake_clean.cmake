file(REMOVE_RECURSE
  "CMakeFiles/promises_contract.dir/compatibility.cc.o"
  "CMakeFiles/promises_contract.dir/compatibility.cc.o.d"
  "CMakeFiles/promises_contract.dir/contract.cc.o"
  "CMakeFiles/promises_contract.dir/contract.cc.o.d"
  "CMakeFiles/promises_contract.dir/monitor.cc.o"
  "CMakeFiles/promises_contract.dir/monitor.cc.o.d"
  "CMakeFiles/promises_contract.dir/monitored_endpoint.cc.o"
  "CMakeFiles/promises_contract.dir/monitored_endpoint.cc.o.d"
  "libpromises_contract.a"
  "libpromises_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promises_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
