# Empty compiler generated dependencies file for promises_contract.
# This may be replaced when dependencies are built.
