# CMake generated Testfile for 
# Source directory: /root/repo/src/contract
# Build directory: /root/repo/build/src/contract
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
