# Empty dependencies file for bench_e1_ordering.
# This may be replaced when dependencies are built.
