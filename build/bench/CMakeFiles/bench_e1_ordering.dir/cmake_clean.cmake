file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_ordering.dir/bench_e1_ordering.cpp.o"
  "CMakeFiles/bench_e1_ordering.dir/bench_e1_ordering.cpp.o.d"
  "bench_e1_ordering"
  "bench_e1_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
