file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_protocol.dir/bench_e9_protocol.cpp.o"
  "CMakeFiles/bench_e9_protocol.dir/bench_e9_protocol.cpp.o.d"
  "bench_e9_protocol"
  "bench_e9_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
