# Empty dependencies file for bench_e9_protocol.
# This may be replaced when dependencies are built.
