# Empty dependencies file for bench_e3_matching.
# This may be replaced when dependencies are built.
