file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_matching.dir/bench_e3_matching.cpp.o"
  "CMakeFiles/bench_e3_matching.dir/bench_e3_matching.cpp.o.d"
  "bench_e3_matching"
  "bench_e3_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
