# Empty dependencies file for bench_e10_delegation.
# This may be replaced when dependencies are built.
