file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_delegation.dir/bench_e10_delegation.cpp.o"
  "CMakeFiles/bench_e10_delegation.dir/bench_e10_delegation.cpp.o.d"
  "bench_e10_delegation"
  "bench_e10_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
