file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_checking.dir/bench_e2_checking.cpp.o"
  "CMakeFiles/bench_e2_checking.dir/bench_e2_checking.cpp.o.d"
  "bench_e2_checking"
  "bench_e2_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
