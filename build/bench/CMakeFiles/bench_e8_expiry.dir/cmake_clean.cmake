file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_expiry.dir/bench_e8_expiry.cpp.o"
  "CMakeFiles/bench_e8_expiry.dir/bench_e8_expiry.cpp.o.d"
  "bench_e8_expiry"
  "bench_e8_expiry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_expiry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
