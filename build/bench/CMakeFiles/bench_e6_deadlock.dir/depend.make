# Empty dependencies file for bench_e6_deadlock.
# This may be replaced when dependencies are built.
