file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_deadlock.dir/bench_e6_deadlock.cpp.o"
  "CMakeFiles/bench_e6_deadlock.dir/bench_e6_deadlock.cpp.o.d"
  "bench_e6_deadlock"
  "bench_e6_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
