file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_escrow.dir/bench_e5_escrow.cpp.o"
  "CMakeFiles/bench_e5_escrow.dir/bench_e5_escrow.cpp.o.d"
  "bench_e5_escrow"
  "bench_e5_escrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_escrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
