# Empty dependencies file for bench_e7_atomicity.
# This may be replaced when dependencies are built.
