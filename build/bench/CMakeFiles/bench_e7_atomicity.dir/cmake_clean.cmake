file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_atomicity.dir/bench_e7_atomicity.cpp.o"
  "CMakeFiles/bench_e7_atomicity.dir/bench_e7_atomicity.cpp.o.d"
  "bench_e7_atomicity"
  "bench_e7_atomicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
