file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_wsba.dir/bench_a2_wsba.cpp.o"
  "CMakeFiles/bench_a2_wsba.dir/bench_a2_wsba.cpp.o.d"
  "bench_a2_wsba"
  "bench_a2_wsba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_wsba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
