# Empty dependencies file for bench_a2_wsba.
# This may be replaced when dependencies are built.
