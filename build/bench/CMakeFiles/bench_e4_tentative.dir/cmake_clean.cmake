file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_tentative.dir/bench_e4_tentative.cpp.o"
  "CMakeFiles/bench_e4_tentative.dir/bench_e4_tentative.cpp.o.d"
  "bench_e4_tentative"
  "bench_e4_tentative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_tentative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
