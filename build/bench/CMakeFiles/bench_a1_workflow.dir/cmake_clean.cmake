file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_workflow.dir/bench_a1_workflow.cpp.o"
  "CMakeFiles/bench_a1_workflow.dir/bench_a1_workflow.cpp.o.d"
  "bench_a1_workflow"
  "bench_a1_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
