# Empty dependencies file for bench_a1_workflow.
# This may be replaced when dependencies are built.
