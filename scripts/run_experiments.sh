#!/bin/sh
# Rebuilds and regenerates every experiment (E1..E10 + ablations).
# See EXPERIMENTS.md for the claim-by-claim interpretation.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b"
done
