#!/usr/bin/env bash
# CI entry point: tier-1 verify plus sanitizer configurations.
#
# Usage:
#   scripts/ci.sh            # tier-1 (default preset) only
#   scripts/ci.sh all        # tier-1 + asan/ubsan + tsan + chaos
#   scripts/ci.sh asan       # asan/ubsan configuration only
#   scripts/ci.sh tsan       # tsan configuration (concurrency tests only)
#   scripts/ci.sh chaos      # fault-injection suite under ASan: fixed
#                            # seed, then one randomized seed (printed,
#                            # so failures reproduce)
#   scripts/ci.sh overload   # overload smoke: bench_overload sweep at
#                            # the fixed seed; the binary exits nonzero
#                            # unless goodput with shedding clears the
#                            # floor (>= 2x the collapsed no-shedding
#                            # goodput at 4x saturation)
#   scripts/ci.sh restart    # restart survivability suite under ASan:
#                            # lifecycle/drain/reconnect units plus the
#                            # kill/restart chaos harness, fixed seed
#                            # then one randomized seed (printed)
#   scripts/ci.sh epoch      # epoch-batched execution suite under
#                            # ASan: executor/layout/metrics units plus
#                            # the epoch chaos composition, then the
#                            # bench_epoch speedup + §4 audit gate on
#                            # the default preset
#   scripts/ci.sh sharding   # federated sharding suite under ASan:
#                            # topology/routing/federated-grant units
#                            # plus the shard chaos workload, fixed
#                            # seed then one randomized seed (printed),
#                            # then the bench_sharding scaling +
#                            # consistency gate on the default preset
#   scripts/ci.sh bench      # bench-regression gate: rerun the
#                            # benches and compare against the
#                            # committed BENCH_*.json baselines with
#                            # scripts/check_bench.py (>25% goodput
#                            # drop or >2x p99 growth fails)
#   scripts/ci.sh lint       # clang-format --dry-run --Werror over
#                            # src/ tests/ bench/
#
# When ccache is installed it is wired in as the compiler launcher and
# a hit/miss summary is printed at the end; without it the build runs
# cold (the CI jobs install and cache it, dev boxes need not).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-default}"

if command -v ccache >/dev/null 2>&1; then
  export CMAKE_CXX_COMPILER_LAUNCHER=ccache
  ccache --zero-stats >/dev/null 2>&1 || true
  CCACHE_ON=1
else
  CCACHE_ON=0
fi

print_ccache_summary() {
  if [ "${CCACHE_ON}" = 1 ]; then
    echo "=== ccache summary ==="
    # -s layout differs across versions; both spellings kept on purpose.
    ccache --show-stats 2>/dev/null | grep -Ei 'hit|miss|cache size' || ccache -s
  else
    echo "=== ccache not installed: cold build ==="
  fi
}

run_preset() {
  local preset="$1"
  shift
  echo "=== configure/build/test: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --test-dir "build$([ "${preset}" = default ] || echo "-${preset}")" \
    --output-on-failure -j "${JOBS}" "$@"
}

run_overload() {
  echo "=== overload smoke: bench_overload (goodput-floor gates) ==="
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" --target bench_overload
  ./build/bench/bench_overload build/BENCH_overload.json
}

run_bench() {
  echo "=== bench-regression gate: fresh runs vs committed baselines ==="
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" \
    --target bench_scaling --target bench_chaos --target bench_overload \
    --target bench_durability --target bench_recovery --target bench_a2_wsba \
    --target bench_restart --target bench_sharding --target bench_epoch
  # check_bench output is tee'd to build/check_bench_<name>.log so the
  # CI job can upload the phase-latency attribution as an artifact when
  # the gate fails.
  local bench
  for bench in scaling chaos overload durability recovery restart sharding \
      epoch; do
    echo "--- bench_${bench} ---"
    "./build/bench/bench_${bench}" "build/BENCH_${bench}.json"
    python3 scripts/check_bench.py \
      "BENCH_${bench}.json" "build/BENCH_${bench}.json" |
      tee "build/check_bench_${bench}.log"
  done
  # The wsba sweep ships as bench_a2_wsba (the A2 ablation grown into a
  # sweep); its binary self-gates on 100% outcome consistency and the
  # checker re-gates the committed baseline comparison.
  echo "--- bench_a2_wsba ---"
  ./build/bench/bench_a2_wsba build/BENCH_wsba.json
  python3 scripts/check_bench.py BENCH_wsba.json build/BENCH_wsba.json |
    tee build/check_bench_wsba.log
}

run_lint() {
  # CLANG_FORMAT overrides the binary (the CI job pins a versioned
  # clang-format-NN; formatting output drifts across major versions).
  local fmt="${CLANG_FORMAT:-clang-format}"
  echo "=== clang-format check (src/ tests/ bench/) ==="
  if ! command -v "${fmt}" >/dev/null 2>&1; then
    echo "${fmt} not installed" >&2
    exit 2
  fi
  "${fmt}" --version
  find src tests bench -name '*.h' -o -name '*.cc' -o -name '*.cpp' \
    | xargs "${fmt}" --dry-run --Werror
}

run_chaos() {
  # Fault-injection suite under ASan: the fixed-seed run first, then
  # one fresh-seed run to probe schedules the fixed seed never hits.
  # The seed is exported and echoed so a failure is reproducible with
  # PROMISES_CHAOS_SEED=<seed> scripts/ci.sh chaos.
  run_preset asan -R 'Chaos|FaultInjector|TransportFault|RetryPolicy|RetryClock|Idempotency|Overload|Breaker|Admission|Trace|GroupCommit|Recovery|Checkpoint|OplogScan|Wsba|Restart|Lifecycle|Drain|Reconnect'
  local seed="${PROMISES_CHAOS_SEED:-$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}"
  echo "=== chaos randomized run: PROMISES_CHAOS_SEED=${seed} ==="
  PROMISES_CHAOS_SEED="${seed}" \
    ctest --test-dir build-asan --output-on-failure -R 'Chaos' ||
    { echo "chaos FAILED with PROMISES_CHAOS_SEED=${seed}" >&2; exit 1; }
}

run_restart() {
  # Restart survivability under ASan: the lifecycle/drain/reconnect
  # units plus the kill/restart chaos harness at the fixed seed, then
  # one fresh-seed chaos run (seed echoed so failures reproduce with
  # PROMISES_CHAOS_SEED=<seed> scripts/ci.sh restart).
  run_preset asan -R 'Restart|Lifecycle|Drain|Reconnect'
  local seed="${PROMISES_CHAOS_SEED:-$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}"
  echo "=== restart chaos randomized run: PROMISES_CHAOS_SEED=${seed} ==="
  PROMISES_CHAOS_SEED="${seed}" \
    ctest --test-dir build-asan --output-on-failure -R 'RestartChaos' ||
    { echo "restart chaos FAILED with PROMISES_CHAOS_SEED=${seed}" >&2; exit 1; }
}

run_epoch() {
  # Epoch-batched execution under ASan: the executor units (round
  # trips, dedup replay across epochs, twin-world replay determinism),
  # the cache-line layout asserts, the epoch metrics, and the §4
  # invariant audit running against the epoch path under faults.
  # Finishes with the bench_epoch ≥4x speedup + audit gate on the
  # default preset (the binary self-gates on the audit; check_bench
  # re-gates the speedup floor and the baseline comparison).
  run_preset asan -R 'Epoch|Layout|MetricsRegistry'
  echo "=== epoch bench gate: bench_epoch + check_bench ==="
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" --target bench_epoch
  ./build/bench/bench_epoch build/BENCH_epoch.json
  python3 scripts/check_bench.py \
    BENCH_epoch.json build/BENCH_epoch.json |
    tee build/check_bench_epoch.log
}

run_sharding() {
  # Federated sharding under ASan: topology/routing/guard units, the
  # federated grant + twin-world crash tests and the TCP cluster, then
  # the shard chaos workload at the fixed seed and one fresh seed
  # (echoed so failures reproduce with PROMISES_CHAOS_SEED=<seed>
  # scripts/ci.sh sharding). Finishes with the bench_sharding scaling
  # + atomic-consistency gate on the default preset.
  run_preset asan -R 'Shard|FederatedGrant'
  local seed="${PROMISES_CHAOS_SEED:-$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}"
  echo "=== shard chaos randomized run: PROMISES_CHAOS_SEED=${seed} ==="
  PROMISES_CHAOS_SEED="${seed}" \
    ctest --test-dir build-asan --output-on-failure -R 'ShardChaos' ||
    { echo "shard chaos FAILED with PROMISES_CHAOS_SEED=${seed}" >&2; exit 1; }
  echo "=== sharding bench gate: bench_sharding + check_bench ==="
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" --target bench_sharding
  ./build/bench/bench_sharding build/BENCH_sharding.json
  python3 scripts/check_bench.py \
    BENCH_sharding.json build/BENCH_sharding.json |
    tee build/check_bench_sharding.log
}

case "${MODE}" in
  default)
    run_preset default
    ;;
  asan)
    run_preset asan
    ;;
  tsan)
    # TSan over the full suite is slow on small runners; the concurrency
    # and transaction tests are where data races would live — including
    # the chaos workload's retry/dedup path.
    run_preset tsan -R 'Concurren|Striped|LockManager|Transaction|Workload|Chaos|Epoch|Layout|Idempotency|Overload|Breaker|Admission|Trace|Metrics|GroupCommit|Recovery|Checkpoint|OplogScan|Wsba|Restart|Lifecycle|Drain|Reconnect|Shard|FederatedGrant'
    ;;
  chaos)
    run_chaos
    ;;
  restart)
    run_restart
    ;;
  epoch)
    run_epoch
    ;;
  sharding)
    run_sharding
    ;;
  overload)
    run_overload
    ;;
  bench)
    run_bench
    ;;
  lint)
    run_lint
    ;;
  all)
    run_preset default
    run_preset asan
    run_preset tsan -R 'Concurren|Striped|LockManager|Transaction|Workload|Chaos|Epoch|Layout|Idempotency|Overload|Breaker|Admission|Trace|Metrics|GroupCommit|Recovery|Checkpoint|OplogScan|Wsba|Restart|Lifecycle|Drain|Reconnect|Shard|FederatedGrant'
    run_chaos
    run_restart
    run_epoch
    run_sharding
    run_overload
    run_bench
    ;;
  *)
    echo "unknown mode: ${MODE} (expected default|asan|tsan|chaos|restart|epoch|sharding|overload|bench|lint|all)" >&2
    exit 2
    ;;
esac

print_ccache_summary
echo "=== CI ${MODE}: OK ==="
