#!/usr/bin/env bash
# CI entry point: tier-1 verify plus sanitizer configurations.
#
# Usage:
#   scripts/ci.sh            # tier-1 (default preset) only
#   scripts/ci.sh all        # tier-1 + asan/ubsan + tsan + chaos
#   scripts/ci.sh asan       # asan/ubsan configuration only
#   scripts/ci.sh tsan       # tsan configuration (concurrency tests only)
#   scripts/ci.sh chaos      # fault-injection suite under ASan: fixed
#                            # seed, then one randomized seed (printed,
#                            # so failures reproduce)
#   scripts/ci.sh overload   # overload smoke: bench_overload sweep at
#                            # the fixed seed; the binary exits nonzero
#                            # unless goodput with shedding clears the
#                            # floor (>= 2x the collapsed no-shedding
#                            # goodput at 4x saturation)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-default}"

run_preset() {
  local preset="$1"
  shift
  echo "=== configure/build/test: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --test-dir "build$([ "${preset}" = default ] || echo "-${preset}")" \
    --output-on-failure -j "${JOBS}" "$@"
}

run_overload() {
  echo "=== overload smoke: bench_overload (goodput-floor gates) ==="
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" --target bench_overload
  ./build/bench/bench_overload build/BENCH_overload.json
}

run_chaos() {
  # Fault-injection suite under ASan: the fixed-seed run first, then
  # one fresh-seed run to probe schedules the fixed seed never hits.
  # The seed is exported and echoed so a failure is reproducible with
  # PROMISES_CHAOS_SEED=<seed> scripts/ci.sh chaos.
  run_preset asan -R 'Chaos|FaultInjector|TransportFault|RetryPolicy|RetryClock|Idempotency|Overload|Breaker|Admission'
  local seed="${PROMISES_CHAOS_SEED:-$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}"
  echo "=== chaos randomized run: PROMISES_CHAOS_SEED=${seed} ==="
  PROMISES_CHAOS_SEED="${seed}" \
    ctest --test-dir build-asan --output-on-failure -R 'Chaos' ||
    { echo "chaos FAILED with PROMISES_CHAOS_SEED=${seed}" >&2; exit 1; }
}

case "${MODE}" in
  default)
    run_preset default
    ;;
  asan)
    run_preset asan
    ;;
  tsan)
    # TSan over the full suite is slow on small runners; the concurrency
    # and transaction tests are where data races would live — including
    # the chaos workload's retry/dedup path.
    run_preset tsan -R 'Concurren|Striped|LockManager|Transaction|Workload|Chaos|Idempotency|Overload|Breaker|Admission'
    ;;
  chaos)
    run_chaos
    ;;
  overload)
    run_overload
    ;;
  all)
    run_preset default
    run_preset asan
    run_preset tsan -R 'Concurren|Striped|LockManager|Transaction|Workload|Chaos|Idempotency|Overload|Breaker|Admission'
    run_chaos
    run_overload
    ;;
  *)
    echo "unknown mode: ${MODE} (expected default|asan|tsan|chaos|overload|all)" >&2
    exit 2
    ;;
esac

echo "=== CI ${MODE}: OK ==="
