#!/usr/bin/env bash
# CI entry point: tier-1 verify plus sanitizer configurations.
#
# Usage:
#   scripts/ci.sh            # tier-1 (default preset) only
#   scripts/ci.sh all        # tier-1 + asan/ubsan + tsan
#   scripts/ci.sh asan       # asan/ubsan configuration only
#   scripts/ci.sh tsan       # tsan configuration (concurrency tests only)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-default}"

run_preset() {
  local preset="$1"
  shift
  echo "=== configure/build/test: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --test-dir "build$([ "${preset}" = default ] || echo "-${preset}")" \
    --output-on-failure -j "${JOBS}" "$@"
}

case "${MODE}" in
  default)
    run_preset default
    ;;
  asan)
    run_preset asan
    ;;
  tsan)
    # TSan over the full suite is slow on small runners; the concurrency
    # and transaction tests are where data races would live.
    run_preset tsan -R 'Concurren|Striped|LockManager|Transaction|Workload'
    ;;
  all)
    run_preset default
    run_preset asan
    run_preset tsan -R 'Concurren|Striped|LockManager|Transaction|Workload'
    ;;
  *)
    echo "unknown mode: ${MODE} (expected default|asan|tsan|all)" >&2
    exit 2
    ;;
esac

echo "=== CI ${MODE}: OK ==="
