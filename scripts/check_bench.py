#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_*.json against the
committed baseline.

Usage:
  scripts/check_bench.py BASELINE FRESH [--goodput-drop 0.25]
                                        [--p99-growth 2.0]
                                        [--p99-slack-us 5000]

Fails (exit 1) when any comparable point's goodput drops by more than
--goodput-drop (fraction of baseline) or its p99 grows by more than
--p99-growth (multiple of baseline) AND by more than --p99-slack-us on
top of it. The additive slack exists because a multiplicative gate
alone is meaningless at millisecond scale: a 50-sample p99 on a shared
runner moves by a couple of scheduler ticks run to run, which can be
2x of a 2.5 ms baseline while meaning nothing. Regressions worth
failing the build over clear both bars. On failure the fresh run's
span-derived phase-latency table is printed so the regression can be
attributed to a pipeline phase without rerunning anything.

The file schema is detected from the point keys, so the same script
gates all the benches:
  * BENCH_scaling.json    points keyed by workers, goodput=throughput_ops_s
  * BENCH_chaos.json      points keyed by loss_rate, goodput=goodput_orders_s
  * BENCH_overload.json   points keyed by (offered_rps, shedding),
                          goodput=goodput_rps; only shedding=true points
                          are gated — the no-shedding rows measure the
                          collapse the admission controller exists to
                          prevent, and their goodput is deliberately
                          unstable.
  * BENCH_durability.json points keyed by (mode, workers),
                          goodput=throughput_ops_s; every mode is gated
                          (each point is already a median of interleaved
                          sweeps, stable enough for the loose tolerance).
  * BENCH_recovery.json   points keyed by (mode, log_length),
                          goodput=replay_ops_s (history recovered per
                          second); recovery_ms rides in the p99 slot so
                          the latency gate also bounds time-to-recover.
  * BENCH_wsba.json       points keyed by loss_rate but carrying
                          outcome_consistency (detected first),
                          goodput=activities_per_s, p99=completion_p99_us.
                          Additionally HARD-gated: any fresh point with
                          outcome_consistency < 1.0 or audit_ok false
                          fails regardless of tolerances — atomic
                          outcomes are a correctness invariant, not a
                          performance number.
  * BENCH_restart.json    points keyed by kill_mode (detected before
                          the durability branch), goodput=goodput_rps;
                          blackout_p99_ms rides in the p99 slot so a
                          hard-kill blackout regression fails the gate.
                          Additionally HARD-gated: audit_ok must be
                          true and goodput_ratio (recovered vs steady
                          state) must hold >= 0.9 in the fresh run —
                          the restart-survivability acceptance bar.
  * BENCH_epoch.json      points keyed by (path, clients) with path
                          "striped" | "epoch" (detected before the
                          workers branch — epoch points carry both),
                          goodput=goodput_ops_s, p99=p99_us.
                          Additionally HARD-gated in the fresh run:
                          every point must report audit_ok true (the
                          in-binary §4 invariant + exactly-once stock
                          accounting), and the epoch path's goodput
                          must be >= 4x the striped point run at the
                          SAME closed-loop population — an equal-
                          offered-concurrency comparison, so the bar
                          measures the epoch mechanism rather than a
                          small striped loop starved by the group-
                          commit window. Extra striped populations
                          (e.g. the 8-client latency reference) are
                          regression-tracked but not part of the
                          speedup gate.
  * BENCH_sharding.json   points keyed by (shards, cross_shard_fraction)
                          — detected first, the points also carry
                          atomic_consistency which must NOT fall into
                          the wsba branch (it reads loss_rate).
                          goodput=goodput_ops_s, p99=p99_us.
                          Additionally HARD-gated in the fresh run:
                          every point must report atomic_consistency
                          == 1.0 with audit_ok true, and goodput at
                          4 shards / 0% cross must be >= 1.6x goodput
                          at 1 shard / 0% cross — the federated
                          sharding scaling + atomicity acceptance bar.

Tolerances are deliberately loose (shared CI runners are noisy); the
gate exists to catch order-of-magnitude regressions, not 5% drift. The
flags exist so the failure path itself can be exercised: a negative
--goodput-drop demands an improvement and must fail on identical
inputs.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def extract_points(doc):
    """Returns a list of (label, goodput, p99_us_or_None)."""
    out = []
    for p in doc.get("points", []):
        if "shards" in p:  # sharding sweep (before everything: its
            # points carry consistency fields the wsba branch would
            # misread)
            out.append(
                (f"shard[{p['shards']}]@cross="
                 f"{p['cross_shard_fraction']:.2f}",
                 p["goodput_ops_s"], p.get("p99_us")))
        elif "kill_mode" in p:  # restart sweep (before the durability
            # branch: both carry a mode-ish key)
            p99_us = None
            if p.get("blackout_p99_ms") is not None:
                p99_us = int(p["blackout_p99_ms"] * 1000)
            out.append((f"restart[{p['kill_mode']}]", p["goodput_rps"],
                        p99_us))
        elif "log_length" in p:  # recovery sweep (mode + log_length)
            p99_us = None
            if p.get("recovery_ms") is not None:
                p99_us = int(p["recovery_ms"] * 1000)
            out.append((f"recovery[{p['mode']}]@{p['log_length']}",
                        p["replay_ops_s"], p99_us))
        elif "mode" in p:  # durability sweep (mode + workers)
            out.append((f"{p['mode']}@{p['workers']}w",
                        p["throughput_ops_s"], p.get("p99_us")))
        elif "path" in p:  # epoch sweep (before the workers branch:
            # its points carry both path and workers). Keyed by
            # population so the two striped rows don't collide;
            # pre-"clients" baselines fall back to the workers value
            # (they coincided for striped rows in that schema).
            clients = p.get("clients", p["workers"])
            out.append((f"epoch[{p['path']}]@{clients}c",
                        p["goodput_ops_s"], p.get("p99_us")))
        elif "workers" in p:  # scaling sweep; the think_us key joined
            # the schema with the no-think point set, so label it when
            # present (think_us=0 and think_us=2000 rows share a
            # workers value and must not collide)
            if "think_us" in p:
                label = f"workers={p['workers']}@think={p['think_us']}us"
            else:
                label = f"workers={p['workers']}"
            out.append((label, p["throughput_ops_s"], p.get("p99_us")))
        elif "outcome_consistency" in p:  # wsba sweep (before chaos:
            # both are keyed by loss_rate)
            out.append((f"wsba-loss={p['loss_rate']:.2f}",
                        p["activities_per_s"], p.get("completion_p99_us")))
        elif "loss_rate" in p:  # chaos sweep (no per-point p99)
            out.append((f"loss={p['loss_rate']:.2f}",
                        p["goodput_orders_s"], None))
        elif "offered_rps" in p:  # overload sweep
            if not p.get("shedding"):
                continue
            out.append((f"offered={p['offered_rps']:.0f}rps",
                        p["goodput_rps"], p.get("p99_us")))
        else:
            print(f"check_bench: unrecognized point shape: {sorted(p)}",
                  file=sys.stderr)
            sys.exit(2)
    return out


def print_phase_table(doc, title):
    phases = doc.get("phase_latency_us")
    if not phases:
        print(f"  ({title}: no phase_latency_us section)")
        return
    print(f"  {title} phase-latency breakdown:")
    print(f"    {'phase':<18} {'count':>8} {'mean_us':>10} {'p50_us':>8} "
          f"{'p99_us':>8}")
    for name in sorted(phases):
        s = phases[name]
        print(f"    {name:<18} {s['count']:>8} {s['mean_us']:>10.1f} "
              f"{s['p50_us']:>8} {s['p99_us']:>8}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--goodput-drop", type=float, default=0.25,
                    help="max tolerated fractional goodput drop")
    ap.add_argument("--p99-growth", type=float, default=2.0,
                    help="max tolerated p99 growth multiple")
    ap.add_argument("--p99-slack-us", type=float, default=5000,
                    help="extra absolute p99 headroom on top of the "
                         "growth multiple")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)
    base = extract_points(base_doc)
    fresh = extract_points(fresh_doc)

    base_by_label = {label: (g, p99) for label, g, p99 in base}
    failures = []
    # The wsba sweep carries a correctness invariant alongside its
    # performance numbers: outcome consistency must stay 100% in the
    # fresh run no matter what the baseline says.
    for p in fresh_doc.get("points", []):
        if "outcome_consistency" not in p:
            continue
        if p["outcome_consistency"] < 1.0 or not p.get("audit_ok", True):
            failures.append(
                f"wsba-loss={p['loss_rate']:.2f}: outcome_consistency "
                f"{p['outcome_consistency']:.4f} (required: 1.0), "
                f"audit_ok {p.get('audit_ok')}")
    # The restart sweep likewise: the fresh run's own invariant audit
    # must pass, and recovered goodput must stay within 10% of the
    # steady-state point — the restart-survivability acceptance bar.
    for p in fresh_doc.get("points", []):
        if "kill_mode" not in p:
            continue
        if not p.get("audit_ok", True):
            failures.append(
                f"restart[{p['kill_mode']}]: audit_ok "
                f"{p.get('audit_ok')} (required: true)")
        ratio = p.get("goodput_ratio")
        if p["kill_mode"] != "steady" and ratio is not None and ratio < 0.9:
            failures.append(
                f"restart[{p['kill_mode']}]: goodput_ratio {ratio:.3f} "
                f"< 0.9 (recovered vs steady state)")
    # The sharding sweep: atomic-outcome consistency is a hard
    # invariant on every fresh point, and the whole point of sharding
    # is scaling — 4 shards must beat 1 shard by >= 1.6x at 0%
    # cross-shard traffic.
    shard_goodput = {}
    for p in fresh_doc.get("points", []):
        if "shards" not in p:
            continue
        label = (f"shard[{p['shards']}]@cross="
                 f"{p['cross_shard_fraction']:.2f}")
        if p["atomic_consistency"] < 1.0 or not p.get("audit_ok", True):
            failures.append(
                f"{label}: atomic_consistency "
                f"{p['atomic_consistency']:.4f} (required: 1.0), "
                f"audit_ok {p.get('audit_ok')}")
        if p["cross_shard_fraction"] == 0.0:
            shard_goodput[p["shards"]] = p["goodput_ops_s"]
    if 1 in shard_goodput and 4 in shard_goodput:
        speedup = (shard_goodput[4] / shard_goodput[1]
                   if shard_goodput[1] > 0 else 0.0)
        if speedup < 1.6:
            failures.append(
                f"sharding: 4-shard speedup {speedup:.2f}x < 1.6x over "
                f"1 shard at 0% cross "
                f"(goodput {shard_goodput[4]:.1f} vs "
                f"{shard_goodput[1]:.1f})")
    # The epoch sweep: the in-binary §4 audit is a hard invariant on
    # every fresh point, and the epoch-batched path must beat the
    # per-operation striped path by >= 4x at the SAME closed-loop
    # population (computed from the fresh points themselves, not
    # trusted from the summary field). Comparing against a smaller
    # striped loop would largely measure offered concurrency under the
    # group-commit window, not the epoch mechanism.
    epoch_points = [p for p in fresh_doc.get("points", [])
                    if "path" in p]
    for p in epoch_points:
        if not p.get("audit_ok", True):
            clients = p.get("clients", p.get("workers"))
            failures.append(
                f"epoch[{p['path']}]@{clients}c: audit_ok "
                f"{p.get('audit_ok')} (required: true)")
    for p in epoch_points:
        if p["path"] != "epoch":
            continue
        same_pop = [s for s in epoch_points if s["path"] == "striped"
                    and s.get("clients") == p.get("clients")]
        # Pre-"clients" baselines carried a single striped point; keep
        # gating rather than silently passing.
        striped = same_pop or [s for s in epoch_points
                               if s["path"] == "striped"]
        if not striped:
            continue
        striped_goodput = striped[0]["goodput_ops_s"]
        speedup = (p["goodput_ops_s"] / striped_goodput
                   if striped_goodput > 0 else 0.0)
        if speedup < 4.0:
            failures.append(
                f"epoch: speedup {speedup:.2f}x < 4.0x over the striped "
                f"path at {p.get('clients')} clients (goodput "
                f"{p['goodput_ops_s']:.1f} vs {striped_goodput:.1f})")
    compared = 0
    for label, fresh_goodput, fresh_p99 in fresh:
        if label not in base_by_label:
            print(f"  {label}: no baseline point, skipping")
            continue
        base_goodput, base_p99 = base_by_label[label]
        compared += 1
        floor = base_goodput * (1.0 - args.goodput_drop)
        verdict = "ok"
        if fresh_goodput < floor:
            verdict = "GOODPUT REGRESSION"
            failures.append(
                f"{label}: goodput {fresh_goodput:.1f} < floor {floor:.1f} "
                f"(baseline {base_goodput:.1f}, tolerance "
                f"{args.goodput_drop:.0%})")
        if (base_p99 is not None and fresh_p99 is not None and base_p99 > 0
                and fresh_p99 > base_p99 * args.p99_growth
                and fresh_p99 > base_p99 + args.p99_slack_us):
            verdict = "P99 REGRESSION"
            failures.append(
                f"{label}: p99 {fresh_p99}us > {args.p99_growth:g}x baseline "
                f"{base_p99}us (+{args.p99_slack_us:g}us slack)")
        p99_str = "-" if fresh_p99 is None else str(fresh_p99)
        print(f"  {label}: goodput {fresh_goodput:.1f} "
              f"(baseline {base_goodput:.1f}), p99 {p99_str} -> {verdict}")

    if compared == 0:
        print("check_bench: no comparable points", file=sys.stderr)
        sys.exit(2)

    if failures:
        print(f"\ncheck_bench: FAIL ({args.fresh} vs {args.baseline}):")
        for f in failures:
            print(f"  {f}")
        print_phase_table(fresh_doc, "fresh")
        print_phase_table(base_doc, "baseline")
        sys.exit(1)
    print(f"check_bench: OK ({compared} points within tolerance)")


if __name__ == "__main__":
    main()
