#include "predicate/evaluator.h"

namespace promises {

Result<bool> EvalExpr(const Expr& expr, const PropertyMap& props,
                      const Schema* schema) {
  switch (expr.kind()) {
    case Expr::Kind::kConst:
      return expr.const_value();
    case Expr::Kind::kCompare: {
      auto it = props.find(expr.property());
      if (it == props.end()) return false;
      CompareOp op = expr.op();
      if (schema != nullptr && op == CompareOp::kEq) {
        const PropertyDef* def = schema->Find(expr.property());
        if (def != nullptr && def->upgradeable) op = CompareOp::kGe;
      }
      return ApplyCompare(op, it->second, expr.literal());
    }
    case Expr::Kind::kNot: {
      PROMISES_ASSIGN_OR_RETURN(bool v, EvalExpr(*expr.lhs(), props, schema));
      return !v;
    }
    case Expr::Kind::kAnd: {
      PROMISES_ASSIGN_OR_RETURN(bool l, EvalExpr(*expr.lhs(), props, schema));
      if (!l) return false;
      return EvalExpr(*expr.rhs(), props, schema);
    }
    case Expr::Kind::kOr: {
      PROMISES_ASSIGN_OR_RETURN(bool l, EvalExpr(*expr.lhs(), props, schema));
      if (l) return true;
      return EvalExpr(*expr.rhs(), props, schema);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvalQuantity(const Predicate& pred, int64_t quantity) {
  if (pred.kind() != PredicateKind::kQuantity) {
    return Status::InvalidArgument("predicate is not a quantity predicate");
  }
  return ApplyCompare(pred.op(), Value(quantity), Value(pred.amount()));
}

Result<bool> InstanceMatches(const Predicate& pred, const InstanceView& inst,
                             const Schema* schema) {
  if (pred.kind() != PredicateKind::kProperty) {
    return Status::InvalidArgument("predicate is not a property predicate");
  }
  return EvalExpr(*pred.match(), inst.properties, schema);
}

Result<std::vector<size_t>> MatchingInstances(
    const Predicate& pred, const std::vector<InstanceView>& instances,
    const Schema* schema) {
  std::vector<size_t> out;
  for (size_t i = 0; i < instances.size(); ++i) {
    PROMISES_ASSIGN_OR_RETURN(bool m,
                              InstanceMatches(pred, instances[i], schema));
    if (m) out.push_back(i);
  }
  return out;
}

namespace {

Status ValidateExprAgainstSchema(const Expr& expr, const Schema& schema) {
  switch (expr.kind()) {
    case Expr::Kind::kConst:
      return Status::OK();
    case Expr::Kind::kCompare: {
      const PropertyDef* def = schema.Find(expr.property());
      if (def == nullptr) {
        return Status::InvalidArgument("property '" + expr.property() +
                                       "' is not exported by the schema");
      }
      bool type_ok =
          expr.literal().type() == def->type ||
          (expr.literal().is_numeric() &&
           (def->type == ValueType::kInt || def->type == ValueType::kDouble));
      if (!type_ok) {
        return Status::InvalidArgument(
            "property '" + expr.property() + "' has type " +
            std::string(ValueTypeToString(def->type)) +
            " but literal has type " +
            std::string(ValueTypeToString(expr.literal().type())));
      }
      return Status::OK();
    }
    case Expr::Kind::kNot:
      return ValidateExprAgainstSchema(*expr.lhs(), schema);
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      PROMISES_RETURN_IF_ERROR(ValidateExprAgainstSchema(*expr.lhs(), schema));
      return ValidateExprAgainstSchema(*expr.rhs(), schema);
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace

Status ValidatePredicate(const Predicate& pred, const ResourceManager& rm) {
  switch (pred.kind()) {
    case PredicateKind::kQuantity:
      if (!rm.HasPool(pred.resource_class())) {
        return Status::NotFound("pool '" + pred.resource_class() +
                                "' not found");
      }
      if (pred.op() != CompareOp::kGe) {
        return Status::InvalidArgument(
            "reservation quantity predicates must use '>='");
      }
      if (pred.amount() < 0) {
        return Status::InvalidArgument("quantity amount must be >= 0");
      }
      return Status::OK();
    case PredicateKind::kNamed:
      if (!rm.HasInstanceClass(pred.resource_class())) {
        return Status::NotFound("instance class '" + pred.resource_class() +
                                "' not found");
      }
      return Status::OK();
    case PredicateKind::kProperty: {
      const Schema* schema = rm.GetSchema(pred.resource_class());
      if (schema == nullptr) {
        return Status::NotFound("instance class '" + pred.resource_class() +
                                "' not found");
      }
      if (pred.count() < 0) {
        return Status::InvalidArgument("count must be >= 0");
      }
      return ValidateExprAgainstSchema(*pred.match(), *schema);
    }
  }
  return Status::Internal("unreachable predicate kind");
}

}  // namespace promises
