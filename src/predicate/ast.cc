#include "predicate/ast.h"

namespace promises {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

Result<bool> ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  if (op == CompareOp::kEq) return lhs.Equals(rhs);
  if (op == CompareOp::kNe) return !lhs.Equals(rhs);
  PROMISES_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
  switch (op) {
    case CompareOp::kLt: return c < 0;
    case CompareOp::kLe: return c <= 0;
    case CompareOp::kGt: return c > 0;
    case CompareOp::kGe: return c >= 0;
    default:
      return Status::Internal("unreachable compare op");
  }
}

ExprPtr Expr::Const(bool value) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kConst));
  e->const_value_ = value;
  return e;
}

ExprPtr Expr::Compare(std::string property, CompareOp op, Value literal) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kCompare));
  e->property_ = std::move(property);
  e->op_ = op;
  e->literal_ = std::move(literal);
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAnd));
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kOr));
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kNot));
  e->lhs_ = std::move(operand);
  return e;
}

void Expr::CollectProperties(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kConst:
      return;
    case Kind::kCompare:
      out->insert(property_);
      return;
    case Kind::kNot:
      lhs_->CollectProperties(out);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      lhs_->CollectProperties(out);
      rhs_->CollectProperties(out);
      return;
  }
}

namespace {

std::string QuoteString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "\\'";
    else out += c;
  }
  out += "'";
  return out;
}

std::string LiteralToSource(const Value& v) {
  if (v.is_string()) return QuoteString(v.as_string());
  return v.ToString();
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kConst:
      return const_value_ ? "true" : "false";
    case Kind::kCompare:
      return property_ + " " + std::string(CompareOpToString(op_)) + " " +
             LiteralToSource(literal_);
    case Kind::kNot:
      return "!(" + lhs_->ToString() + ")";
    case Kind::kAnd:
      return "(" + lhs_->ToString() + " && " + rhs_->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString() + " || " + rhs_->ToString() + ")";
  }
  return "";
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kConst:
      return const_value_ == other.const_value_;
    case Kind::kCompare:
      return property_ == other.property_ && op_ == other.op_ &&
             literal_.type() == other.literal_.type() &&
             literal_.Equals(other.literal_);
    case Kind::kNot:
      return lhs_->Equals(*other.lhs_);
    case Kind::kAnd:
    case Kind::kOr:
      return lhs_->Equals(*other.lhs_) && rhs_->Equals(*other.rhs_);
  }
  return false;
}

std::string_view PredicateKindToString(PredicateKind k) {
  switch (k) {
    case PredicateKind::kQuantity: return "quantity";
    case PredicateKind::kNamed: return "named";
    case PredicateKind::kProperty: return "property";
  }
  return "unknown";
}

Predicate Predicate::Quantity(std::string pool, CompareOp op,
                              int64_t amount) {
  Predicate p;
  p.kind_ = PredicateKind::kQuantity;
  p.resource_class_ = std::move(pool);
  p.op_ = op;
  p.amount_ = amount;
  return p;
}

Predicate Predicate::Named(std::string cls, std::string instance_id) {
  Predicate p;
  p.kind_ = PredicateKind::kNamed;
  p.resource_class_ = std::move(cls);
  p.instance_id_ = std::move(instance_id);
  return p;
}

Predicate Predicate::Property(std::string cls, ExprPtr match,
                              int64_t count) {
  Predicate p;
  p.kind_ = PredicateKind::kProperty;
  p.resource_class_ = std::move(cls);
  p.match_ = std::move(match);
  p.amount_ = count;
  return p;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case PredicateKind::kQuantity:
      return "quantity(" + QuoteString(resource_class_) + ") " +
             std::string(CompareOpToString(op_)) + " " +
             std::to_string(amount_);
    case PredicateKind::kNamed:
      return "available(" + QuoteString(resource_class_) + ", " +
             QuoteString(instance_id_) + ")";
    case PredicateKind::kProperty:
      return "count(" + QuoteString(resource_class_) + " where " +
             match_->ToString() + ") >= " + std::to_string(amount_);
  }
  return "";
}

bool Predicate::Equals(const Predicate& other) const {
  if (kind_ != other.kind_ || resource_class_ != other.resource_class_) {
    return false;
  }
  switch (kind_) {
    case PredicateKind::kQuantity:
      return op_ == other.op_ && amount_ == other.amount_;
    case PredicateKind::kNamed:
      return instance_id_ == other.instance_id_;
    case PredicateKind::kProperty:
      return amount_ == other.amount_ && match_->Equals(*other.match_);
  }
  return false;
}

}  // namespace promises
