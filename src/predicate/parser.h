// Recursive-descent parser for the textual predicate syntax.
//
// §3: in their most general form predicates are expressed "in the
// agreed standard syntax" so that a completely general-purpose promise
// manager can store, check and evaluate them without application
// knowledge. This grammar is that standard syntax for the reproduction;
// the protocol layer ships predicates as text and re-parses them on the
// promise-manager side.
//
//   predicate := 'quantity' '(' STRING ')' CMPOP INT
//              | 'available' '(' STRING ',' STRING ')'
//              | 'count' '(' STRING 'where' expr ')' '>=' INT
//   expr      := or ; or := and ('||' and)*
//   and       := unary ('&&' unary)*
//   unary     := '!' unary | primary
//   primary   := '(' expr ')' | 'true' | 'false' | IDENT CMPOP literal
//   literal   := INT | DOUBLE | STRING | 'true' | 'false'
//
// Strings are single-quoted; `\'` escapes a quote. Predicate lists are
// separated with ';'.

#ifndef PROMISES_PREDICATE_PARSER_H_
#define PROMISES_PREDICATE_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "predicate/ast.h"

namespace promises {

/// Parses one predicate. The entire input must be consumed.
Result<Predicate> ParsePredicate(std::string_view input);

/// Parses a ';'-separated list of predicates.
Result<std::vector<Predicate>> ParsePredicateList(std::string_view input);

/// Parses a bare property expression (the part after `where`).
Result<ExprPtr> ParseExpr(std::string_view input);

}  // namespace promises

#endif  // PROMISES_PREDICATE_PARSER_H_
