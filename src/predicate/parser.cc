#include "predicate/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace promises {
namespace {

enum class TokKind {
  kEnd,
  kIdent,    // bare identifier / keyword
  kString,   // '...'
  kInt,
  kDouble,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kBang,
  kAndAnd,
  kOrOr,
  kCmp,      // ==, !=, <, <=, >, >=
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;      // ident name or string body
  int64_t int_value = 0;
  double double_value = 0;
  CompareOp cmp = CompareOp::kEq;
  size_t pos = 0;        // offset in the input, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      Token t;
      t.pos = pos_;
      if (pos_ >= input_.size()) {
        t.kind = TokKind::kEnd;
        out.push_back(t);
        return out;
      }
      char c = input_[pos_];
      if (c == '(') {
        t.kind = TokKind::kLParen;
        ++pos_;
      } else if (c == ')') {
        t.kind = TokKind::kRParen;
        ++pos_;
      } else if (c == ',') {
        t.kind = TokKind::kComma;
        ++pos_;
      } else if (c == ';') {
        t.kind = TokKind::kSemicolon;
        ++pos_;
      } else if (c == '\'') {
        PROMISES_RETURN_IF_ERROR(LexString(&t));
      } else if (c == '&') {
        PROMISES_RETURN_IF_ERROR(Expect2('&', TokKind::kAndAnd, &t));
      } else if (c == '|') {
        PROMISES_RETURN_IF_ERROR(Expect2('|', TokKind::kOrOr, &t));
      } else if (c == '=') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          t.kind = TokKind::kCmp;
          t.cmp = CompareOp::kEq;
          pos_ += 2;
        } else {
          return Err("'=' must be '=='");
        }
      } else if (c == '!') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          t.kind = TokKind::kCmp;
          t.cmp = CompareOp::kNe;
          pos_ += 2;
        } else {
          t.kind = TokKind::kBang;
          ++pos_;
        }
      } else if (c == '<') {
        t.kind = TokKind::kCmp;
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          t.cmp = CompareOp::kLe;
          pos_ += 2;
        } else {
          t.cmp = CompareOp::kLt;
          ++pos_;
        }
      } else if (c == '>') {
        t.kind = TokKind::kCmp;
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          t.cmp = CompareOp::kGe;
          pos_ += 2;
        } else {
          t.cmp = CompareOp::kGt;
          ++pos_;
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '+') {
        PROMISES_RETURN_IF_ERROR(LexNumber(&t));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_' || input_[pos_] == '-')) {
          ++pos_;
        }
        t.kind = TokKind::kIdent;
        t.text = std::string(input_.substr(start, pos_ - start));
      } else {
        return Err(std::string("unexpected character '") + c + "'");
      }
      out.push_back(std::move(t));
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect2(char c, TokKind kind, Token* t) {
    if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != c) {
      return Err(std::string("expected '") + c + c + "'");
    }
    t->kind = kind;
    pos_ += 2;
    return Status::OK();
  }

  Status LexString(Token* t) {
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\\' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
        body += '\'';
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        t->kind = TokKind::kString;
        t->text = std::move(body);
        return Status::OK();
      }
      body += c;
      ++pos_;
    }
    return Err("unterminated string literal");
  }

  Status LexNumber(Token* t) {
    size_t start = pos_;
    if (input_[pos_] == '-' || input_[pos_] == '+') ++pos_;
    bool is_double = false;
    bool seen_exponent = false;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !is_double && !seen_exponent) {
        is_double = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !seen_exponent &&
                 pos_ + 1 < input_.size() &&
                 (std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])) ||
                  input_[pos_ + 1] == '-' || input_[pos_ + 1] == '+')) {
        seen_exponent = true;
        is_double = true;
        ++pos_;
        if (input_[pos_] == '-' || input_[pos_] == '+') ++pos_;
      } else {
        break;
      }
    }
    std::string_view text = input_.substr(start, pos_ - start);
    if (is_double) {
      PROMISES_ASSIGN_OR_RETURN(t->double_value, ParseDouble(text));
      t->kind = TokKind::kDouble;
    } else {
      PROMISES_ASSIGN_OR_RETURN(t->int_value, ParseInt64(text));
      t->kind = TokKind::kInt;
    }
    return Status::OK();
  }

  Status Err(std::string msg) const {
    return Status::InvalidArgument("predicate syntax error at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::move(msg));
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Predicate> ParseOnePredicate() {
    PROMISES_ASSIGN_OR_RETURN(Predicate p, ParsePredicateInner());
    PROMISES_RETURN_IF_ERROR(ExpectEnd());
    return p;
  }

  Result<std::vector<Predicate>> ParseList() {
    std::vector<Predicate> out;
    if (Peek().kind == TokKind::kEnd) return out;  // empty list
    while (true) {
      PROMISES_ASSIGN_OR_RETURN(Predicate p, ParsePredicateInner());
      out.push_back(std::move(p));
      if (Peek().kind == TokKind::kSemicolon) {
        Advance();
        if (Peek().kind == TokKind::kEnd) break;  // trailing ';' allowed
        continue;
      }
      break;
    }
    PROMISES_RETURN_IF_ERROR(ExpectEnd());
    return out;
  }

  Result<ExprPtr> ParseBareExpr() {
    PROMISES_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    PROMISES_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Advance() { return toks_[pos_++]; }

  Status ExpectEnd() {
    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input after predicate");
    }
    return Status::OK();
  }

  Status Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) return Err(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectString() {
    if (Peek().kind != TokKind::kString) return Err("expected string literal");
    return Advance().text;
  }

  Result<int64_t> ExpectInt() {
    if (Peek().kind != TokKind::kInt) return Err("expected integer");
    return Advance().int_value;
  }

  Result<Predicate> ParsePredicateInner() {
    if (Peek().kind != TokKind::kIdent) {
      return Err("expected 'quantity', 'available' or 'count'");
    }
    std::string head = Advance().text;
    if (head == "quantity") {
      PROMISES_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      PROMISES_ASSIGN_OR_RETURN(std::string pool, ExpectString());
      PROMISES_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      if (Peek().kind != TokKind::kCmp) return Err("expected comparison");
      CompareOp op = Advance().cmp;
      PROMISES_ASSIGN_OR_RETURN(int64_t amount, ExpectInt());
      return Predicate::Quantity(std::move(pool), op, amount);
    }
    if (head == "available") {
      PROMISES_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      PROMISES_ASSIGN_OR_RETURN(std::string cls, ExpectString());
      PROMISES_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
      PROMISES_ASSIGN_OR_RETURN(std::string id, ExpectString());
      PROMISES_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return Predicate::Named(std::move(cls), std::move(id));
    }
    if (head == "count") {
      PROMISES_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      PROMISES_ASSIGN_OR_RETURN(std::string cls, ExpectString());
      if (Peek().kind != TokKind::kIdent || Peek().text != "where") {
        return Err("expected 'where'");
      }
      Advance();
      PROMISES_ASSIGN_OR_RETURN(ExprPtr match, ParseOr());
      PROMISES_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      if (Peek().kind != TokKind::kCmp || Peek().cmp != CompareOp::kGe) {
        return Err("count predicate requires '>='");
      }
      Advance();
      PROMISES_ASSIGN_OR_RETURN(int64_t count, ExpectInt());
      if (count < 0) return Err("count must be >= 0");
      return Predicate::Property(std::move(cls), std::move(match), count);
    }
    return Err("unknown predicate head '" + head + "'");
  }

  Result<ExprPtr> ParseOr() {
    PROMISES_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().kind == TokKind::kOrOr) {
      Advance();
      PROMISES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PROMISES_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().kind == TokKind::kAndAnd) {
      Advance();
      PROMISES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().kind == TokKind::kBang) {
      Advance();
      PROMISES_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return Expr::Not(std::move(inner));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Peek().kind == TokKind::kLParen) {
      Advance();
      PROMISES_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
      PROMISES_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return e;
    }
    if (Peek().kind != TokKind::kIdent) {
      return Err("expected property name, 'true', 'false' or '('");
    }
    std::string name = Advance().text;
    if (name == "true") return Expr::Const(true);
    if (name == "false") return Expr::Const(false);
    if (Peek().kind != TokKind::kCmp) {
      return Err("expected comparison after property '" + name + "'");
    }
    CompareOp op = Advance().cmp;
    const Token& lit = Peek();
    switch (lit.kind) {
      case TokKind::kInt:
        Advance();
        return Expr::Compare(std::move(name), op, Value(lit.int_value));
      case TokKind::kDouble:
        Advance();
        return Expr::Compare(std::move(name), op, Value(lit.double_value));
      case TokKind::kString:
        Advance();
        return Expr::Compare(std::move(name), op, Value(lit.text));
      case TokKind::kIdent:
        if (lit.text == "true" || lit.text == "false") {
          Advance();
          return Expr::Compare(std::move(name), op, Value(lit.text == "true"));
        }
        return Err("expected literal, got identifier '" + lit.text + "'");
      default:
        return Err("expected literal");
    }
  }

  Status Err(std::string msg) const {
    return Status::InvalidArgument("predicate parse error at offset " +
                                   std::to_string(Peek().pos) + ": " +
                                   std::move(msg));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

Result<std::vector<Token>> Tokenize(std::string_view input) {
  return Lexer(input).Run();
}

}  // namespace

Result<Predicate> ParsePredicate(std::string_view input) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(input));
  return Parser(std::move(toks)).ParseOnePredicate();
}

Result<std::vector<Predicate>> ParsePredicateList(std::string_view input) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(input));
  return Parser(std::move(toks)).ParseList();
}

Result<ExprPtr> ParseExpr(std::string_view input) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(input));
  return Parser(std::move(toks)).ParseBareExpr();
}

}  // namespace promises
