// Predicate abstract syntax.
//
// §2: "Predicates are simply Boolean expressions over resources. Our
// model imposes no restrictions on the form these expressions can
// take." This module defines the concrete predicate forms matching the
// three resource views of §3:
//
//   quantity('pink-widget') >= 5                        anonymous, §3.1
//   available('room', 'r512@2007-03-12')                named,     §3.2
//   count('room' where floor == 5 && view == true) >= 1 property,  §3.3
//
// A promise request carries a *set* of predicates which must be granted
// atomically (§4). The textual grammar is the reproduction's stand-in
// for the paper's "agreed standard syntax" (it suggests XPath or SQL);
// predicates round-trip through text for the protocol layer.

#ifndef PROMISES_PREDICATE_AST_H_
#define PROMISES_PREDICATE_AST_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "resource/value.h"

namespace promises {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// Applies `op` to the three-way comparison result of lhs vs rhs.
Result<bool> ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs);

// ---------------------------------------------------------------------
// Boolean expressions over one instance's properties (§3.3).

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable node of a property-matching expression tree.
class Expr {
 public:
  enum class Kind { kConst, kCompare, kAnd, kOr, kNot };

  static ExprPtr Const(bool value);
  /// property <op> literal, e.g. floor >= 5.
  static ExprPtr Compare(std::string property, CompareOp op, Value literal);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);

  Kind kind() const { return kind_; }
  bool const_value() const { return const_value_; }
  const std::string& property() const { return property_; }
  CompareOp op() const { return op_; }
  const Value& literal() const { return literal_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  /// Property names referenced anywhere in the tree.
  void CollectProperties(std::set<std::string>* out) const;

  /// Parenthesised source form; parses back to an equivalent tree.
  std::string ToString() const;

  /// Structural equality.
  bool Equals(const Expr& other) const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  bool const_value_ = false;
  std::string property_;
  CompareOp op_ = CompareOp::kEq;
  Value literal_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

// ---------------------------------------------------------------------
// Top-level predicate forms.

enum class PredicateKind {
  kQuantity,  ///< §3.1 anonymous pool view.
  kNamed,     ///< §3.2 named instance view.
  kProperty,  ///< §3.3 view via properties.
};

std::string_view PredicateKindToString(PredicateKind k);

/// One condition a promise maker must maintain (§2).
///
/// Value-semantic; expression trees are shared immutably.
class Predicate {
 public:
  /// quantity('<pool>') <op> <amount>. For reservations the op is kGe
  /// ("at least 5 widgets remain for me"); other ops are accepted for
  /// evaluation-only uses.
  static Predicate Quantity(std::string pool, CompareOp op, int64_t amount);

  /// available('<class>', '<instance-id>').
  static Predicate Named(std::string cls, std::string instance_id);

  /// count('<class>' where <expr>) >= <count>.
  static Predicate Property(std::string cls, ExprPtr match, int64_t count);

  PredicateKind kind() const { return kind_; }
  /// Resource class (pool or instance class) this predicate covers.
  const std::string& resource_class() const { return resource_class_; }

  // kQuantity accessors.
  CompareOp op() const { return op_; }
  int64_t amount() const { return amount_; }

  // kNamed accessors.
  const std::string& instance_id() const { return instance_id_; }

  // kProperty accessors.
  const ExprPtr& match() const { return match_; }
  int64_t count() const { return amount_; }

  /// Source form; Parser::ParsePredicate inverts it.
  std::string ToString() const;

  bool Equals(const Predicate& other) const;

 private:
  Predicate() = default;

  PredicateKind kind_ = PredicateKind::kQuantity;
  std::string resource_class_;
  CompareOp op_ = CompareOp::kGe;
  int64_t amount_ = 0;  // quantity amount or property count
  std::string instance_id_;
  ExprPtr match_;
};

}  // namespace promises

#endif  // PROMISES_PREDICATE_AST_H_
