// Predicate evaluation against resource state.
//
// The promise manager evaluates predicates "with the assistance of the
// appropriate resource manager" (§3). This module is the pure part:
// given property values / quantities / instance views it decides truth.
// The stateful part (reading the RM inside a transaction) lives in the
// core checkers.

#ifndef PROMISES_PREDICATE_EVALUATOR_H_
#define PROMISES_PREDICATE_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "predicate/ast.h"
#include "resource/resource_manager.h"
#include "resource/schema.h"
#include "resource/value.h"

namespace promises {

/// Evaluates a property expression against one instance's properties.
///
/// A comparison whose property is absent from `props` is false (sparse
/// instances simply fail to match). When `schema` is provided and
/// declares the compared property `upgradeable`, an equality test also
/// accepts larger values (§3.3: "a promise can be satisfied ... by one
/// offering a 'better' value").
Result<bool> EvalExpr(const Expr& expr, const PropertyMap& props,
                      const Schema* schema = nullptr);

/// Evaluates quantity('pool') <op> amount given the pool quantity.
Result<bool> EvalQuantity(const Predicate& pred, int64_t quantity);

/// True when the instance matches the property predicate's expression
/// (availability is NOT considered here).
Result<bool> InstanceMatches(const Predicate& pred, const InstanceView& inst,
                             const Schema* schema = nullptr);

/// Indexes into `instances` whose properties match `pred.match()`.
Result<std::vector<size_t>> MatchingInstances(
    const Predicate& pred, const std::vector<InstanceView>& instances,
    const Schema* schema = nullptr);

/// Validates that a predicate is well-formed against the resource
/// definitions in `rm`: the class exists with the right shape, property
/// names and literal types agree with the schema, and reservation
/// predicates use the supported direction (quantity >=, count >=).
Status ValidatePredicate(const Predicate& pred, const ResourceManager& rm);

}  // namespace promises

#endif  // PROMISES_PREDICATE_EVALUATOR_H_
