// Bipartite matching for property-view promise checking.
//
// §5: with property-based access "the promise manager needs to be able
// to check the compatibility of a set of promises with the state of the
// resources. This might be done by finding a matching in a bipartite
// graph where edges link the untaken resources to the promise
// predicates that they can satisfy."
//
// Left vertices are demand units (one per instance a promise needs: a
// `count >= k` predicate contributes k units); right vertices are
// untaken resource instances. The promise set is satisfiable iff a
// matching saturates every left vertex.
//
// Two engines are provided:
//  * Hopcroft–Karp maximum matching (O(E * sqrt(V))) for one-shot
//    satisfiability checks;
//  * IncrementalMatcher, which maintains a saturating matching across
//    demand insertions/removals using single augmenting-path searches —
//    the realistic promise-manager workload (experiment E3 compares
//    them). Its reassignment of previously matched right vertices along
//    augmenting paths IS the §5 "tentative allocation" rearrangement.

#ifndef PROMISES_MATCHING_BIPARTITE_H_
#define PROMISES_MATCHING_BIPARTITE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace promises {

/// Adjacency structure: left vertex -> right vertices it may use.
class BipartiteGraph {
 public:
  BipartiteGraph(size_t num_left, size_t num_right)
      : adj_(num_left), num_right_(num_right) {}

  size_t num_left() const { return adj_.size(); }
  size_t num_right() const { return num_right_; }

  void AddEdge(size_t left, size_t right) { adj_[left].push_back(right); }

  const std::vector<size_t>& Neighbors(size_t left) const {
    return adj_[left];
  }

 private:
  std::vector<std::vector<size_t>> adj_;
  size_t num_right_;
};

/// Result of a maximum-matching run.
struct MatchingResult {
  size_t size = 0;
  /// match_left[l] = right partner or kUnmatched.
  std::vector<size_t> match_left;
  /// match_right[r] = left partner or kUnmatched.
  std::vector<size_t> match_right;

  static constexpr size_t kUnmatched = static_cast<size_t>(-1);

  /// True when every left vertex found a partner.
  bool Saturating() const { return size == match_left.size(); }
};

/// Hopcroft–Karp maximum bipartite matching.
MatchingResult MaxMatching(const BipartiteGraph& graph);

/// Maintains a left-saturating matching under demand churn.
///
/// Demands (left side) come and go as promises are granted and
/// released; the right side (instances) is fixed at construction but
/// individual instances can be disabled when they are taken.
class IncrementalMatcher {
 public:
  explicit IncrementalMatcher(size_t num_right);

  /// Attempts to add a demand that may be satisfied by `candidates`.
  /// Returns true (and keeps the demand matched, possibly reassigning
  /// existing demands along an augmenting path) or false and leaves the
  /// matching untouched. `demand_id` must be fresh.
  bool AddDemand(uint64_t demand_id, const std::vector<size_t>& candidates);

  /// Removes a demand, freeing its matched right vertex.
  void RemoveDemand(uint64_t demand_id);

  /// Marks a right vertex unusable (instance taken). If a demand was
  /// matched to it, tries to rematch that demand elsewhere; returns
  /// false if the demand could not be rehoused (caller decides whether
  /// that is a violation).
  bool DisableRight(size_t right);

  /// Re-enables a right vertex (instance released back to available).
  void EnableRight(size_t right);

  /// Appends a new right vertex (instance added to the class) and
  /// returns its index.
  size_t AddRight();

  size_t num_right() const { return right_owner_.size(); }

  /// True when the right vertex is enabled (usable by demands).
  bool RightEnabled(size_t right) const {
    return right < right_enabled_.size() && right_enabled_[right];
  }

  /// Demand currently assigned to `right`, or 0 when free.
  uint64_t OwnerOf(size_t right) const {
    return right < right_owner_.size() ? right_owner_[right] : 0;
  }

  /// Right vertex currently assigned to `demand_id`, or kUnmatched.
  size_t AssignmentOf(uint64_t demand_id) const;

  size_t num_demands() const { return demands_.size(); }

  /// One registered demand unit and its current assignment.
  struct Demand {
    std::vector<size_t> candidates;
    size_t matched_right = MatchingResult::kUnmatched;
  };

  /// Opaque copy of the full matcher state. Grants run inside local
  /// ACID transactions (§8); a rollback must restore the exact prior
  /// matching because augmenting paths reassign unrelated demands.
  struct Snapshot {
    std::unordered_map<uint64_t, Demand> demands;
    std::vector<uint64_t> right_owner;
    std::vector<bool> right_enabled;
  };
  Snapshot TakeSnapshot() const;
  void Restore(Snapshot snapshot);

  static constexpr size_t kUnmatched = MatchingResult::kUnmatched;

 private:
  /// DFS augmenting-path search from `demand_id`; `visited_right` marks
  /// right vertices already on the path.
  bool TryAugment(uint64_t demand_id, std::vector<bool>* visited_right);

  std::unordered_map<uint64_t, Demand> demands_;
  std::vector<uint64_t> right_owner_;  // demand id or 0 (free)
  std::vector<bool> right_enabled_;
};

}  // namespace promises

#endif  // PROMISES_MATCHING_BIPARTITE_H_
