#include "matching/bipartite.h"

#include <functional>
#include <limits>
#include <queue>

namespace promises {

namespace {
constexpr size_t kUnmatched = MatchingResult::kUnmatched;
constexpr size_t kInf = std::numeric_limits<size_t>::max();
}  // namespace

MatchingResult MaxMatching(const BipartiteGraph& graph) {
  const size_t nl = graph.num_left();
  const size_t nr = graph.num_right();
  MatchingResult res;
  res.match_left.assign(nl, kUnmatched);
  res.match_right.assign(nr, kUnmatched);

  std::vector<size_t> dist(nl, kInf);

  // BFS phase: layer the graph from free left vertices.
  auto bfs = [&]() -> bool {
    std::queue<size_t> q;
    for (size_t l = 0; l < nl; ++l) {
      if (res.match_left[l] == kUnmatched) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found_free_right = false;
    while (!q.empty()) {
      size_t l = q.front();
      q.pop();
      for (size_t r : graph.Neighbors(l)) {
        size_t l2 = res.match_right[r];
        if (l2 == kUnmatched) {
          found_free_right = true;
        } else if (dist[l2] == kInf) {
          dist[l2] = dist[l] + 1;
          q.push(l2);
        }
      }
    }
    return found_free_right;
  };

  // DFS phase: find vertex-disjoint shortest augmenting paths.
  std::function<bool(size_t)> dfs = [&](size_t l) -> bool {
    for (size_t r : graph.Neighbors(l)) {
      size_t l2 = res.match_right[r];
      if (l2 == kUnmatched || (dist[l2] == dist[l] + 1 && dfs(l2))) {
        res.match_left[l] = r;
        res.match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  };

  while (bfs()) {
    for (size_t l = 0; l < nl; ++l) {
      if (res.match_left[l] == kUnmatched && dfs(l)) ++res.size;
    }
  }
  return res;
}

IncrementalMatcher::IncrementalMatcher(size_t num_right)
    : right_owner_(num_right, 0), right_enabled_(num_right, true) {}

bool IncrementalMatcher::TryAugment(uint64_t demand_id,
                                    std::vector<bool>* visited_right) {
  Demand& d = demands_.at(demand_id);
  for (size_t r : d.candidates) {
    if (r >= right_owner_.size() || !right_enabled_[r] ||
        (*visited_right)[r]) {
      continue;
    }
    (*visited_right)[r] = true;
    uint64_t owner = right_owner_[r];
    if (owner == 0 || TryAugment(owner, visited_right)) {
      right_owner_[r] = demand_id;
      d.matched_right = r;
      return true;
    }
  }
  return false;
}

bool IncrementalMatcher::AddDemand(uint64_t demand_id,
                                   const std::vector<size_t>& candidates) {
  if (demand_id == 0) return false;  // 0 is the "free" sentinel
  auto [it, inserted] = demands_.emplace(demand_id, Demand{candidates});
  if (!inserted) return false;  // id reuse is a caller bug; refuse
  std::vector<bool> visited(right_owner_.size(), false);
  if (TryAugment(demand_id, &visited)) return true;
  demands_.erase(it);
  return false;
}

void IncrementalMatcher::RemoveDemand(uint64_t demand_id) {
  auto it = demands_.find(demand_id);
  if (it == demands_.end()) return;
  if (it->second.matched_right != kUnmatched) {
    right_owner_[it->second.matched_right] = 0;
  }
  demands_.erase(it);
}

bool IncrementalMatcher::DisableRight(size_t right) {
  if (right >= right_enabled_.size()) return true;
  right_enabled_[right] = false;
  uint64_t owner = right_owner_[right];
  right_owner_[right] = 0;
  if (owner == 0) return true;
  Demand& d = demands_.at(owner);
  d.matched_right = kUnmatched;
  std::vector<bool> visited(right_owner_.size(), false);
  if (TryAugment(owner, &visited)) return true;
  // Could not rehouse: restore bookkeeping so the caller can decide;
  // the demand stays registered but unmatched.
  return false;
}

void IncrementalMatcher::EnableRight(size_t right) {
  if (right < right_enabled_.size()) right_enabled_[right] = true;
}

size_t IncrementalMatcher::AddRight() {
  right_owner_.push_back(0);
  right_enabled_.push_back(true);
  return right_owner_.size() - 1;
}

IncrementalMatcher::Snapshot IncrementalMatcher::TakeSnapshot() const {
  return Snapshot{demands_, right_owner_, right_enabled_};
}

void IncrementalMatcher::Restore(Snapshot snapshot) {
  demands_ = std::move(snapshot.demands);
  right_owner_ = std::move(snapshot.right_owner);
  right_enabled_ = std::move(snapshot.right_enabled);
}

size_t IncrementalMatcher::AssignmentOf(uint64_t demand_id) const {
  auto it = demands_.find(demand_id);
  return it == demands_.end() ? kUnmatched : it->second.matched_right;
}

}  // namespace promises
