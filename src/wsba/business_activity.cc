#include "wsba/business_activity.h"

#include "common/string_util.h"

namespace promises {

namespace {

// Protocol messages ride as <action> bodies with service "wsba".
constexpr char kService[] = "wsba";

Envelope ProtocolMessage(Transport* transport, const std::string& from,
                         const std::string& to, const std::string& kind,
                         ActivityId activity, ParticipantId participant,
                         const std::string& detail = "") {
  Envelope env;
  env.message_id = transport->NextMessageId();
  env.from = from;
  env.to = to;
  ActionBody action;
  action.service = kService;
  action.operation = kind;
  action.params["activity"] = Value(static_cast<int64_t>(activity.value()));
  action.params["participant"] =
      Value(static_cast<int64_t>(participant.value()));
  if (!detail.empty()) action.params["detail"] = Value(detail);
  env.action = std::move(action);
  return env;
}

Envelope Ack(Transport* transport, const Envelope& in, bool ok,
             const std::string& error = "") {
  Envelope reply;
  reply.message_id = transport->NextMessageId();
  reply.from = in.to;
  reply.to = in.from;
  ActionResultBody result;
  result.ok = ok;
  result.error = error;
  reply.action_result = std::move(result);
  return reply;
}

}  // namespace

std::string_view ParticipantStateToString(ParticipantState s) {
  switch (s) {
    case ParticipantState::kActive: return "active";
    case ParticipantState::kCompleted: return "completed";
    case ParticipantState::kClosing: return "closing";
    case ParticipantState::kCompensating: return "compensating";
    case ParticipantState::kEnded: return "ended";
    case ParticipantState::kExited: return "exited";
    case ParticipantState::kFaulted: return "faulted";
  }
  return "unknown";
}

std::string_view ActivityOutcomeToString(ActivityOutcome o) {
  switch (o) {
    case ActivityOutcome::kOpen: return "open";
    case ActivityOutcome::kClosed: return "closed";
    case ActivityOutcome::kCompensated: return "compensated";
    case ActivityOutcome::kMixed: return "mixed";
  }
  return "unknown";
}

BusinessActivityCoordinator::BusinessActivityCoordinator(
    std::string endpoint, Transport* transport)
    : endpoint_(std::move(endpoint)), transport_(transport) {
  transport_->Register(endpoint_, [this](const Envelope& env) {
    return HandleSignal(env);
  });
}

BusinessActivityCoordinator::~BusinessActivityCoordinator() {
  transport_->Unregister(endpoint_);
}

ActivityId BusinessActivityCoordinator::CreateActivity() {
  ActivityId id = activity_ids_.Next();
  activities_[id] = Activity{};
  return id;
}

Result<ParticipantId> BusinessActivityCoordinator::Register(
    ActivityId activity, const std::string& participant_endpoint) {
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  if (it->second.outcome != ActivityOutcome::kOpen) {
    return Status::FailedPrecondition("activity " + activity.ToString() +
                                      " already ended");
  }
  ParticipantId id = participant_ids_.Next();
  it->second.participants[id] = Participant{participant_endpoint,
                                            ParticipantState::kActive};
  return id;
}

Result<Envelope> BusinessActivityCoordinator::HandleSignal(
    const Envelope& envelope) {
  if (!envelope.action || envelope.action->service != kService) {
    return Status::InvalidArgument("not a wsba protocol message");
  }
  const ActionBody& action = *envelope.action;
  auto aid = action.params.find("activity");
  auto pid = action.params.find("participant");
  if (aid == action.params.end() || pid == action.params.end()) {
    return Status::InvalidArgument("wsba message missing ids");
  }
  ActivityId activity(static_cast<uint64_t>(aid->second.as_int()));
  ParticipantId participant(static_cast<uint64_t>(pid->second.as_int()));

  auto ait = activities_.find(activity);
  if (ait == activities_.end()) {
    return Ack(transport_, envelope, false,
               "unknown activity " + activity.ToString());
  }
  auto it = ait->second.participants.find(participant);
  if (it == ait->second.participants.end()) {
    return Ack(transport_, envelope, false,
               "unknown participant " + participant.ToString());
  }
  Participant& p = it->second;

  const std::string& kind = action.operation;
  if (kind == "completed") {
    if (p.state != ParticipantState::kActive) {
      return Ack(transport_, envelope, false,
                 "completed in state " +
                     std::string(ParticipantStateToString(p.state)));
    }
    p.state = ParticipantState::kCompleted;
    return Ack(transport_, envelope, true);
  }
  if (kind == "exit") {
    if (p.state != ParticipantState::kActive) {
      return Ack(transport_, envelope, false,
                 "exit in state " +
                     std::string(ParticipantStateToString(p.state)));
    }
    p.state = ParticipantState::kExited;
    return Ack(transport_, envelope, true);
  }
  if (kind == "fault") {
    if (p.state != ParticipantState::kActive &&
        p.state != ParticipantState::kCompleted) {
      return Ack(transport_, envelope, false,
                 "fault in state " +
                     std::string(ParticipantStateToString(p.state)));
    }
    p.state = ParticipantState::kFaulted;
    ait->second.faulted = true;
    return Ack(transport_, envelope, true);
  }
  return Ack(transport_, envelope, false, "unknown signal '" + kind + "'");
}

Status BusinessActivityCoordinator::DriveToEnd(Activity* activity,
                                               ActivityId activity_id,
                                               ParticipantId id,
                                               Participant* participant,
                                               bool close) {
  participant->state =
      close ? ParticipantState::kClosing : ParticipantState::kCompensating;
  Envelope order = ProtocolMessage(transport_, endpoint_,
                                   participant->endpoint,
                                   close ? "close" : "compensate",
                                   activity_id, id);
  Result<Envelope> reply = transport_->Send(order);
  if (!reply.ok() || !reply->action_result || !reply->action_result->ok) {
    participant->state = ParticipantState::kFaulted;
    activity->faulted = true;
    return Status::FailedPrecondition(
        "participant " + id.ToString() + " failed to " +
        (close ? "close" : "compensate") +
        (reply.ok() && reply->action_result
             ? ": " + reply->action_result->error
             : ""));
  }
  participant->state = ParticipantState::kEnded;
  return Status::OK();
}

Result<ActivityOutcome> BusinessActivityCoordinator::CloseActivity(
    ActivityId activity) {
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  Activity& act = it->second;
  if (act.outcome != ActivityOutcome::kOpen) return act.outcome;
  if (act.faulted) {
    return Status::FailedPrecondition(
        "activity has faulted participants; cancel it instead");
  }
  for (auto& [id, p] : act.participants) {
    (void)id;
    if (p.state == ParticipantState::kActive) {
      return Status::FailedPrecondition(
          "participant " + id.ToString() +
          " is still active; it must complete or exit before close");
    }
  }
  bool all_ok = true;
  for (auto& [id, p] : act.participants) {
    if (p.state != ParticipantState::kCompleted) continue;
    if (!DriveToEnd(&act, activity, id, &p, /*close=*/true).ok()) {
      all_ok = false;
    }
  }
  act.outcome = all_ok ? ActivityOutcome::kClosed : ActivityOutcome::kMixed;
  return act.outcome;
}

Result<ActivityOutcome> BusinessActivityCoordinator::CancelActivity(
    ActivityId activity) {
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  Activity& act = it->second;
  if (act.outcome != ActivityOutcome::kOpen) return act.outcome;
  bool all_ok = true;
  for (auto& [id, p] : act.participants) {
    switch (p.state) {
      case ParticipantState::kActive: {
        // Cancel: nothing completed, nothing to undo.
        Envelope order = ProtocolMessage(transport_, endpoint_, p.endpoint,
                                         "cancel", activity, id);
        (void)transport_->Send(order);
        p.state = ParticipantState::kExited;
        break;
      }
      case ParticipantState::kCompleted:
        if (!DriveToEnd(&act, activity, id, &p, /*close=*/false).ok()) {
          all_ok = false;
        }
        break;
      default:
        break;  // exited / faulted / already ended
    }
  }
  act.outcome =
      all_ok ? ActivityOutcome::kCompensated : ActivityOutcome::kMixed;
  return act.outcome;
}

Result<ParticipantState> BusinessActivityCoordinator::StateOf(
    ActivityId activity, ParticipantId participant) const {
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  auto pit = it->second.participants.find(participant);
  if (pit == it->second.participants.end()) {
    return Status::NotFound("unknown participant " + participant.ToString());
  }
  return pit->second.state;
}

Result<ActivityOutcome> BusinessActivityCoordinator::OutcomeOf(
    ActivityId activity) const {
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  return it->second.outcome;
}

size_t BusinessActivityCoordinator::ParticipantCount(
    ActivityId activity) const {
  auto it = activities_.find(activity);
  return it == activities_.end() ? 0 : it->second.participants.size();
}

bool BusinessActivityCoordinator::HasFault(ActivityId activity) const {
  auto it = activities_.find(activity);
  return it != activities_.end() && it->second.faulted;
}

// ---------------------------------------------------------------------

BusinessActivityParticipant::BusinessActivityParticipant(
    std::string endpoint, Transport* transport, Callbacks callbacks)
    : endpoint_(std::move(endpoint)),
      transport_(transport),
      callbacks_(std::move(callbacks)) {
  transport_->Register(endpoint_, [this](const Envelope& env) {
    return HandleOrder(env);
  });
}

BusinessActivityParticipant::~BusinessActivityParticipant() {
  transport_->Unregister(endpoint_);
}

void BusinessActivityParticipant::Enlist(
    const std::string& coordinator_endpoint, ActivityId activity,
    ParticipantId id) {
  coordinator_ = coordinator_endpoint;
  activity_ = activity;
  id_ = id;
}

Result<Envelope> BusinessActivityParticipant::HandleOrder(
    const Envelope& envelope) {
  if (!envelope.action || envelope.action->service != kService) {
    return Status::InvalidArgument("not a wsba protocol message");
  }
  const std::string& kind = envelope.action->operation;
  if (kind == "close") {
    Status st = callbacks_.on_close ? callbacks_.on_close() : Status::OK();
    return Ack(transport_, envelope, st.ok(), st.ok() ? "" : st.ToString());
  }
  if (kind == "compensate") {
    Status st = callbacks_.on_compensate ? callbacks_.on_compensate()
                                         : Status::OK();
    return Ack(transport_, envelope, st.ok(), st.ok() ? "" : st.ToString());
  }
  if (kind == "cancel") {
    if (callbacks_.on_cancel) callbacks_.on_cancel();
    return Ack(transport_, envelope, true);
  }
  return Ack(transport_, envelope, false, "unknown order '" + kind + "'");
}

Status BusinessActivityParticipant::Signal(const std::string& kind,
                                           const std::string& detail) {
  if (coordinator_.empty()) {
    return Status::FailedPrecondition("participant not enlisted");
  }
  Envelope env = ProtocolMessage(transport_, endpoint_, coordinator_, kind,
                                 activity_, id_, detail);
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, transport_->Send(env));
  if (!reply.action_result || !reply.action_result->ok) {
    return Status::FailedPrecondition(
        "coordinator refused '" + kind + "': " +
        (reply.action_result ? reply.action_result->error : "no result"));
  }
  return Status::OK();
}

Status BusinessActivityParticipant::SignalCompleted() {
  return Signal("completed", "");
}
Status BusinessActivityParticipant::SignalExit() { return Signal("exit", ""); }
Status BusinessActivityParticipant::SignalFault(const std::string& reason) {
  return Signal("fault", reason);
}

}  // namespace promises
