#include "wsba/business_activity.h"

#include <optional>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace promises {

namespace {

// Protocol messages ride as <action> bodies with service "wsba".
constexpr char kService[] = "wsba";

// Retry-after hint returned to a get_outcome query while the activity
// is still undecided: the coordinator genuinely has nothing to report,
// so pace the participant's re-query instead of letting it spin.
constexpr int64_t kUndecidedRetryAfterMs = 10;

struct WsbaMetrics {
  Counter* activities;
  Counter* registrations;
  Counter* signals;
  Counter* duplicate_signals;
  Counter* decisions_close;
  Counter* decisions_cancel;
  Counter* outcomes_closed;
  Counter* outcomes_compensated;
  Counter* outcomes_mixed;
  Counter* order_retransmissions;
  Counter* recovered_activities;
  Counter* presumed_aborts;
  Counter* outcome_queries;
  Counter* order_dedup;
  Gauge* open_activities;

  static WsbaMetrics& Get() {
    static WsbaMetrics m = [] {
      auto& reg = MetricsRegistry::Global();
      WsbaMetrics x;
      x.activities = reg.GetCounter("promises_wsba_activities_total");
      x.registrations = reg.GetCounter("promises_wsba_registrations_total");
      x.signals = reg.GetCounter("promises_wsba_signals_total");
      x.duplicate_signals =
          reg.GetCounter("promises_wsba_duplicate_signals_total");
      x.decisions_close =
          reg.GetCounter("promises_wsba_decisions_close_total");
      x.decisions_cancel =
          reg.GetCounter("promises_wsba_decisions_cancel_total");
      x.outcomes_closed = reg.GetCounter("promises_wsba_outcomes_closed_total");
      x.outcomes_compensated =
          reg.GetCounter("promises_wsba_outcomes_compensated_total");
      x.outcomes_mixed = reg.GetCounter("promises_wsba_outcomes_mixed_total");
      x.order_retransmissions =
          reg.GetCounter("promises_wsba_order_retransmissions_total");
      x.recovered_activities =
          reg.GetCounter("promises_wsba_recovered_activities_total");
      x.presumed_aborts = reg.GetCounter("promises_wsba_presumed_aborts_total");
      x.outcome_queries = reg.GetCounter("promises_wsba_outcome_queries_total");
      x.order_dedup = reg.GetCounter("promises_wsba_order_dedup_total");
      x.open_activities = reg.GetGauge("promises_wsba_open_activities");
      return x;
    }();
    return m;
  }
};

// Public coordinator/participant entry points are trace roots when no
// ambient context exists (direct API use) and children otherwise
// (driven from a traced workload).
void BeginOpSpan(std::optional<ScopedSpan>& span, std::string_view name) {
  if (CurrentTraceContext() != nullptr) {
    span.emplace(name);
  } else {
    span.emplace(Tracer::Global().StartTrace(), name);
  }
}

Envelope ProtocolMessage(Transport* transport, const std::string& from,
                         const std::string& to, const std::string& kind,
                         ActivityId activity, ParticipantId participant,
                         const std::string& detail = "") {
  Envelope env;
  env.message_id = transport->NextMessageId();
  env.from = from;
  env.to = to;
  ActionBody action;
  action.service = kService;
  action.operation = kind;
  action.params["activity"] = Value(static_cast<int64_t>(activity.value()));
  action.params["participant"] =
      Value(static_cast<int64_t>(participant.value()));
  if (!detail.empty()) action.params["detail"] = Value(detail);
  env.action = std::move(action);
  return env;
}

Envelope Ack(Transport* transport, const Envelope& in, bool ok,
             const std::string& error = "",
             std::map<std::string, Value> outputs = {}) {
  Envelope reply;
  reply.message_id = transport->NextMessageId();
  reply.from = in.to;
  reply.to = in.from;
  ActionResultBody result;
  result.ok = ok;
  result.error = error;
  result.outputs = std::move(outputs);
  reply.action_result = std::move(result);
  return reply;
}

// Log fields are '|'-separated, so endpoints must stay out of the
// delimiter alphabet (the payload itself must also stay one line for
// the oplog record framing).
bool LoggableEndpoint(const std::string& endpoint) {
  return endpoint.find('|') == std::string::npos &&
         endpoint.find('\n') == std::string::npos;
}

uint64_t FieldId(const std::string& field) {
  Result<int64_t> v = ParseInt64(field);
  return v.ok() ? static_cast<uint64_t>(*v) : 0;
}

}  // namespace

std::string_view ParticipantStateToString(ParticipantState s) {
  switch (s) {
    case ParticipantState::kActive: return "active";
    case ParticipantState::kCompleted: return "completed";
    case ParticipantState::kClosing: return "closing";
    case ParticipantState::kCompensating: return "compensating";
    case ParticipantState::kCancelling: return "cancelling";
    case ParticipantState::kEnded: return "ended";
    case ParticipantState::kExited: return "exited";
    case ParticipantState::kFaulted: return "faulted";
  }
  return "unknown";
}

std::string_view ActivityOutcomeToString(ActivityOutcome o) {
  switch (o) {
    case ActivityOutcome::kOpen: return "open";
    case ActivityOutcome::kClosed: return "closed";
    case ActivityOutcome::kCompensated: return "compensated";
    case ActivityOutcome::kMixed: return "mixed";
  }
  return "unknown";
}

std::string_view ActivityDecisionToString(ActivityDecision d) {
  switch (d) {
    case ActivityDecision::kNone: return "none";
    case ActivityDecision::kClose: return "close";
    case ActivityDecision::kCancel: return "cancel";
  }
  return "unknown";
}

// ---- Coordinator -----------------------------------------------------

BusinessActivityCoordinator::BusinessActivityCoordinator(
    std::string endpoint, Transport* transport, CoordinatorOptions options)
    : endpoint_(std::move(endpoint)),
      transport_(transport),
      options_(options),
      retry_rng_(options.retry_seed) {
  if (options_.clock == nullptr) {
    owned_clock_ = std::make_unique<SystemClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = options_.clock;
  }
  if (options_.retry.clock == nullptr) options_.retry.clock = clock_;
  transport_->Register(endpoint_, [this](const Envelope& env) {
    return HandleSignal(env);
  });
}

BusinessActivityCoordinator::~BusinessActivityCoordinator() {
  // A crashed coordinator died without unregistering; by the time its
  // corpse is destroyed a recovered twin may own the endpoint, and
  // unregistering here would silently unplug it.
  bool crashed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    crashed = crashed_;
  }
  if (!crashed) transport_->Unregister(endpoint_);
}

void BusinessActivityCoordinator::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
}

Status BusinessActivityCoordinator::AppendRecord(const std::string& payload,
                                                 bool durable) {
  if (options_.log == nullptr) return Status::OK();
  Result<uint64_t> seq =
      options_.log->AppendOperation(clock_, payload, /*promise_id=*/0);
  if (!seq.ok()) return seq.status();
  if (durable) return options_.log->WaitDurable(*seq);
  return Status::OK();
}

bool BusinessActivityCoordinator::CrashAt(const char* point) {
  if (options_.crash_points == nullptr) return false;
  if (!options_.crash_points->AtCrashPoint(point)) return false;
  crashed_ = true;
  return true;
}

bool BusinessActivityCoordinator::crashed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crashed_;
}

uint64_t BusinessActivityCoordinator::retransmissions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retransmissions_;
}

ActivityId BusinessActivityCoordinator::CreateActivity() {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-create");
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return ActivityId();  // "no id": coordinator is dead.
  ActivityId id = activity_ids_.Next();
  if (!AppendRecord("ba|create|" + std::to_string(id.value()),
                    /*durable=*/false)
           .ok()) {
    return ActivityId();
  }
  activities_[id] = Activity{};
  WsbaMetrics::Get().activities->Increment();
  WsbaMetrics::Get().open_activities->Add(1);
  return id;
}

Result<ParticipantId> BusinessActivityCoordinator::Register(
    ActivityId activity, const std::string& participant_endpoint) {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-register");
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return Status::Unavailable("coordinator crashed");
  if (!LoggableEndpoint(participant_endpoint)) {
    return Status::InvalidArgument("endpoint contains log delimiters");
  }
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  if (it->second.outcome != ActivityOutcome::kOpen ||
      it->second.decision != ActivityDecision::kNone) {
    return Status::FailedPrecondition("activity " + activity.ToString() +
                                      " already ended");
  }
  // A duplicated Register delivery must not enlist a twin: the same
  // endpoint re-registering gets its existing enlistment back.
  for (const auto& [existing_id, p] : it->second.participants) {
    if (p.endpoint == participant_endpoint) {
      WsbaMetrics::Get().duplicate_signals->Increment();
      return existing_id;
    }
  }
  ParticipantId id = participant_ids_.Next();
  PROMISES_RETURN_IF_ERROR(AppendRecord(
      "ba|register|" + std::to_string(activity.value()) + "|" +
          std::to_string(id.value()) + "|" + participant_endpoint,
      /*durable=*/false));
  it->second.participants[id] =
      Participant{participant_endpoint, ParticipantState::kActive};
  WsbaMetrics::Get().registrations->Increment();
  return id;
}

Result<Envelope> BusinessActivityCoordinator::HandleSignal(
    const Envelope& envelope) {
  if (!envelope.action || envelope.action->service != kService) {
    return Status::InvalidArgument("not a wsba protocol message");
  }
  const ActionBody& action = *envelope.action;
  auto aid = action.params.find("activity");
  if (aid == action.params.end()) {
    return Status::InvalidArgument("wsba message missing activity id");
  }
  ActivityId activity(static_cast<uint64_t>(aid->second.as_int()));
  const std::string& kind = action.operation;

  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return Status::Unavailable("coordinator crashed");

  // Timeout path: a participant asking for the durable outcome. An
  // activity this coordinator has never heard of is reported unknown —
  // under presumed abort the participant treats that as Cancel.
  if (kind == "get_outcome") {
    WsbaMetrics::Get().outcome_queries->Increment();
    auto ait = activities_.find(activity);
    std::map<std::string, Value> outputs;
    if (ait == activities_.end()) {
      outputs["known"] = Value(false);
      outputs["decision"] = Value("none");
    } else {
      outputs["known"] = Value(true);
      outputs["decision"] =
          Value(std::string(ActivityDecisionToString(ait->second.decision)));
      if (ait->second.decision == ActivityDecision::kNone) {
        outputs["retry_after_ms"] = Value(kUndecidedRetryAfterMs);
      }
    }
    return Ack(transport_, envelope, true, "", std::move(outputs));
  }

  auto pid = action.params.find("participant");
  if (pid == action.params.end()) {
    return Status::InvalidArgument("wsba message missing participant id");
  }
  ParticipantId participant(static_cast<uint64_t>(pid->second.as_int()));

  auto ait = activities_.find(activity);
  if (ait == activities_.end()) {
    return Ack(transport_, envelope, false,
               "unknown activity " + activity.ToString());
  }
  auto it = ait->second.participants.find(participant);
  if (it == ait->second.participants.end()) {
    return Ack(transport_, envelope, false,
               "unknown participant " + participant.ToString());
  }
  Participant& p = it->second;
  WsbaMetrics::Get().signals->Increment();

  // Signals are deduplicated, not rejected, when the participant is
  // already in the signalled state: retransmitted signals (lost acks,
  // duplicated deliveries) must converge, not fault the activity.
  auto log_signal = [&]() {
    return AppendRecord("ba|signal|" + std::to_string(activity.value()) +
                            "|" + std::to_string(participant.value()) + "|" +
                            kind,
                        /*durable=*/false);
  };
  if (kind == "completed") {
    if (p.state == ParticipantState::kCompleted) {
      WsbaMetrics::Get().duplicate_signals->Increment();
      return Ack(transport_, envelope, true);
    }
    if (p.state != ParticipantState::kActive) {
      return Ack(transport_, envelope, false,
                 "completed in state " +
                     std::string(ParticipantStateToString(p.state)));
    }
    Status logged = log_signal();
    if (!logged.ok()) {
      return Ack(transport_, envelope, false, logged.ToString());
    }
    p.state = ParticipantState::kCompleted;
    return Ack(transport_, envelope, true);
  }
  if (kind == "exit") {
    if (p.state == ParticipantState::kExited) {
      WsbaMetrics::Get().duplicate_signals->Increment();
      return Ack(transport_, envelope, true);
    }
    if (p.state != ParticipantState::kActive) {
      return Ack(transport_, envelope, false,
                 "exit in state " +
                     std::string(ParticipantStateToString(p.state)));
    }
    Status logged = log_signal();
    if (!logged.ok()) {
      return Ack(transport_, envelope, false, logged.ToString());
    }
    p.state = ParticipantState::kExited;
    return Ack(transport_, envelope, true);
  }
  if (kind == "fault") {
    if (p.state == ParticipantState::kFaulted) {
      WsbaMetrics::Get().duplicate_signals->Increment();
      return Ack(transport_, envelope, true);
    }
    if (p.state != ParticipantState::kActive &&
        p.state != ParticipantState::kCompleted) {
      return Ack(transport_, envelope, false,
                 "fault in state " +
                     std::string(ParticipantStateToString(p.state)));
    }
    Status logged = log_signal();
    if (!logged.ok()) {
      return Ack(transport_, envelope, false, logged.ToString());
    }
    p.state = ParticipantState::kFaulted;
    ait->second.faulted = true;
    return Ack(transport_, envelope, true);
  }
  return Ack(transport_, envelope, false, "unknown signal '" + kind + "'");
}

Result<ActivityOutcome> BusinessActivityCoordinator::DecideLocked(
    ActivityId id, Activity* activity, ActivityDecision decision) {
  if (CrashAt("wsba-pre-decision")) {
    // Died before the decision reached the log: recovery sees an
    // undecided activity and presumes abort.
    return Status::Unavailable("coordinator crashed before decision");
  }
  {
    ScopedSpan log_span("wsba-decision-log");
    // Write-ahead: the decision must be durable before ANY outcome
    // order leaves, or a crash after a sent Close could recover into a
    // presumed abort that compensates a closed participant.
    Status logged = AppendRecord(
        "ba|decision|" + std::to_string(id.value()) + "|" +
            std::string(ActivityDecisionToString(decision)),
        /*durable=*/true);
    if (!logged.ok()) {
      log_span.set_status("error");
      return logged;
    }
  }
  activity->decision = decision;
  if (decision == ActivityDecision::kClose) {
    WsbaMetrics::Get().decisions_close->Increment();
  } else {
    WsbaMetrics::Get().decisions_cancel->Increment();
  }
  if (CrashAt("wsba-post-decision")) {
    // Died with a durable decision but no orders sent: recovery
    // re-drives to exactly this outcome.
    return Status::Unavailable("coordinator crashed after decision");
  }
  return DriveOutcomeLocked(id, activity);
}

Result<ActivityOutcome> BusinessActivityCoordinator::DriveOutcomeLocked(
    ActivityId id, Activity* activity) {
  bool all_reachable = true;
  for (auto& [pid, p] : activity->participants) {
    std::string order_kind;
    ParticipantState in_flight;
    switch (p.state) {
      case ParticipantState::kCompleted:
      case ParticipantState::kClosing:
      case ParticipantState::kCompensating:
        if (activity->decision == ActivityDecision::kClose) {
          order_kind = "close";
          in_flight = ParticipantState::kClosing;
        } else {
          order_kind = "compensate";
          in_flight = ParticipantState::kCompensating;
        }
        break;
      case ParticipantState::kActive:
      case ParticipantState::kCancelling:
        // Still-active participants only exist under a cancel decision
        // (close refuses while anyone is active): nothing completed,
        // nothing to undo.
        order_kind = "cancel";
        in_flight = ParticipantState::kCancelling;
        break;
      default:
        continue;  // ended / exited / faulted
    }
    if (CrashAt("wsba-pre-notify")) {
      return Status::Unavailable("coordinator crashed before notify");
    }
    p.state = in_flight;
    Envelope order = ProtocolMessage(transport_, endpoint_, p.endpoint,
                                     order_kind, id, pid);
    Result<Envelope> reply = Status::Unavailable("not sent");
    {
      ScopedSpan notify_span("wsba-notify");
      // Identical envelope on every attempt: the participant dedups
      // per activity, so a lost ack retransmit cannot double-run the
      // compensation.
      uint64_t retries = 0;
      reply = CallWithRetry(
          options_.retry, &retry_rng_,
          [&] { return transport_->Send(order); }, &retries,
          [&] { transport_->NoteRetry(p.endpoint); });
      retransmissions_ += retries;
      if (retries > 0) {
        WsbaMetrics::Get().order_retransmissions->Increment(retries);
      }
      if (!reply.ok()) notify_span.set_status("unreachable");
    }
    if (!reply.ok()) {
      // Unreachable through the retry budget: leave the participant
      // in-flight for a later ReDrive — faulting it here would turn a
      // transient partition into a permanent mixed outcome.
      all_reachable = false;
      continue;
    }
    if (!reply->action_result || !reply->action_result->ok) {
      p.state = ParticipantState::kFaulted;
      p.order_failed = true;
      activity->faulted = true;
      (void)AppendRecord("ba|acked|" + std::to_string(id.value()) + "|" +
                             std::to_string(pid.value()) + "|failed",
                         /*durable=*/false);
      continue;
    }
    p.state = ParticipantState::kEnded;
    (void)AppendRecord("ba|acked|" + std::to_string(id.value()) + "|" +
                           std::to_string(pid.value()) + "|" + order_kind,
                       /*durable=*/false);
    if (CrashAt("wsba-post-notify")) {
      return Status::Unavailable("coordinator crashed after notify");
    }
  }
  if (!all_reachable) {
    return Status::Unavailable(
        "participants unreachable; decision durable, re-drive later");
  }

  bool any_failed = false;
  for (const auto& [pid, p] : activity->participants) {
    (void)pid;
    if (p.order_failed) any_failed = true;
  }
  ActivityOutcome outcome;
  if (any_failed) {
    outcome = ActivityOutcome::kMixed;
  } else if (activity->decision == ActivityDecision::kClose) {
    outcome = ActivityOutcome::kClosed;
  } else {
    outcome = ActivityOutcome::kCompensated;
  }
  if (CrashAt("wsba-pre-ended")) {
    return Status::Unavailable("coordinator crashed before ended record");
  }
  PROMISES_RETURN_IF_ERROR(AppendRecord(
      "ba|ended|" + std::to_string(id.value()) + "|" +
          std::string(ActivityOutcomeToString(outcome)),
      /*durable=*/false));
  activity->outcome = outcome;
  WsbaMetrics::Get().open_activities->Sub(1);
  switch (outcome) {
    case ActivityOutcome::kClosed:
      WsbaMetrics::Get().outcomes_closed->Increment();
      break;
    case ActivityOutcome::kCompensated:
      WsbaMetrics::Get().outcomes_compensated->Increment();
      break;
    case ActivityOutcome::kMixed:
      WsbaMetrics::Get().outcomes_mixed->Increment();
      break;
    case ActivityOutcome::kOpen:
      break;
  }
  return outcome;
}

Result<ActivityOutcome> BusinessActivityCoordinator::CloseActivity(
    ActivityId activity) {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-close");
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return Status::Unavailable("coordinator crashed");
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  Activity& act = it->second;
  if (act.outcome != ActivityOutcome::kOpen) return act.outcome;
  if (act.decision == ActivityDecision::kCancel) {
    return Status::FailedPrecondition(
        "activity already decided cancel; re-drive instead");
  }
  if (act.decision == ActivityDecision::kClose) {
    return DriveOutcomeLocked(activity, &act);
  }
  if (act.faulted) {
    return Status::FailedPrecondition(
        "activity has faulted participants; cancel it instead");
  }
  for (auto& [id, p] : act.participants) {
    if (p.state == ParticipantState::kActive) {
      return Status::FailedPrecondition(
          "participant " + id.ToString() +
          " is still active; it must complete or exit before close");
    }
  }
  return DecideLocked(activity, &act, ActivityDecision::kClose);
}

Result<ActivityOutcome> BusinessActivityCoordinator::CancelActivity(
    ActivityId activity) {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-cancel");
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return Status::Unavailable("coordinator crashed");
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  Activity& act = it->second;
  if (act.outcome != ActivityOutcome::kOpen) return act.outcome;
  if (act.decision == ActivityDecision::kClose) {
    return Status::FailedPrecondition(
        "activity already decided close; re-drive instead");
  }
  if (act.decision == ActivityDecision::kCancel) {
    return DriveOutcomeLocked(activity, &act);
  }
  return DecideLocked(activity, &act, ActivityDecision::kCancel);
}

Result<ActivityOutcome> BusinessActivityCoordinator::ReDrive(
    ActivityId activity) {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-redrive");
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return Status::Unavailable("coordinator crashed");
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  Activity& act = it->second;
  if (act.outcome != ActivityOutcome::kOpen) return act.outcome;
  if (act.decision == ActivityDecision::kNone) {
    return Status::FailedPrecondition(
        "no durable decision to re-drive; close or cancel it");
  }
  return DriveOutcomeLocked(activity, &act);
}

std::vector<ActivityId> BusinessActivityCoordinator::UnresolvedActivities()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ActivityId> out;
  for (const auto& [id, act] : activities_) {
    if (act.outcome == ActivityOutcome::kOpen) out.push_back(id);
  }
  return out;
}

Result<ParticipantState> BusinessActivityCoordinator::StateOf(
    ActivityId activity, ParticipantId participant) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  auto pit = it->second.participants.find(participant);
  if (pit == it->second.participants.end()) {
    return Status::NotFound("unknown participant " + participant.ToString());
  }
  return pit->second.state;
}

Result<ActivityOutcome> BusinessActivityCoordinator::OutcomeOf(
    ActivityId activity) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  return it->second.outcome;
}

Result<ActivityDecision> BusinessActivityCoordinator::DecisionOf(
    ActivityId activity) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = activities_.find(activity);
  if (it == activities_.end()) {
    return Status::NotFound("unknown activity " + activity.ToString());
  }
  return it->second.decision;
}

size_t BusinessActivityCoordinator::ParticipantCount(
    ActivityId activity) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = activities_.find(activity);
  return it == activities_.end() ? 0 : it->second.participants.size();
}

bool BusinessActivityCoordinator::HasFault(ActivityId activity) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = activities_.find(activity);
  return it != activities_.end() && it->second.faulted;
}

void BusinessActivityCoordinator::LoadRecoveredRecords(
    const std::vector<LogRecord>& records) {
  uint64_t max_activity = 0;
  uint64_t max_participant = 0;
  for (const LogRecord& record : records) {
    std::vector<std::string> f = Split(record.payload, '|');
    if (f.size() < 3 || f[0] != "ba") continue;
    const std::string& op = f[1];
    ActivityId aid(FieldId(f[2]));
    if (!aid.valid()) continue;
    max_activity = std::max(max_activity, aid.value());
    if (op == "create") {
      activities_[aid] = Activity{};
      WsbaMetrics::Get().open_activities->Add(1);
      continue;
    }
    auto ait = activities_.find(aid);
    if (ait == activities_.end()) continue;
    Activity& act = ait->second;
    if (op == "register" && f.size() >= 5) {
      ParticipantId pid(FieldId(f[3]));
      if (!pid.valid()) continue;
      max_participant = std::max(max_participant, pid.value());
      act.participants[pid] = Participant{f[4], ParticipantState::kActive};
    } else if (op == "signal" && f.size() >= 5) {
      auto pit = act.participants.find(ParticipantId(FieldId(f[3])));
      if (pit == act.participants.end()) continue;
      if (f[4] == "completed") {
        pit->second.state = ParticipantState::kCompleted;
      } else if (f[4] == "exit") {
        pit->second.state = ParticipantState::kExited;
      } else if (f[4] == "fault") {
        pit->second.state = ParticipantState::kFaulted;
        act.faulted = true;
      }
    } else if (op == "decision" && f.size() >= 4) {
      act.decision = f[3] == "close" ? ActivityDecision::kClose
                                     : ActivityDecision::kCancel;
    } else if (op == "acked" && f.size() >= 5) {
      auto pit = act.participants.find(ParticipantId(FieldId(f[3])));
      if (pit == act.participants.end()) continue;
      if (f[4] == "failed") {
        pit->second.state = ParticipantState::kFaulted;
        pit->second.order_failed = true;
        act.faulted = true;
      } else {
        pit->second.state = ParticipantState::kEnded;
      }
    } else if (op == "ended" && f.size() >= 4) {
      ActivityOutcome outcome = ActivityOutcome::kOpen;
      if (f[3] == "closed") outcome = ActivityOutcome::kClosed;
      else if (f[3] == "compensated") outcome = ActivityOutcome::kCompensated;
      else if (f[3] == "mixed") outcome = ActivityOutcome::kMixed;
      if (outcome != ActivityOutcome::kOpen &&
          act.outcome == ActivityOutcome::kOpen) {
        act.outcome = outcome;
        WsbaMetrics::Get().open_activities->Sub(1);
      }
    }
  }
  // Pin past the replayed maxima so new ids never collide with
  // recovered ones.
  activity_ids_.Pin(max_activity + 1);
  participant_ids_.Pin(max_participant + 1);
}

CoordinatorRecovery BusinessActivityCoordinator::ReDriveUnresolvedLocked() {
  CoordinatorRecovery recovery;
  recovery.activities = activities_.size();
  for (auto& [id, act] : activities_) {
    if (act.outcome != ActivityOutcome::kOpen) {
      ++recovery.already_ended;
      continue;
    }
    const bool undecided = act.decision == ActivityDecision::kNone;
    Result<ActivityOutcome> driven =
        undecided
            // Presumed abort: no durable decision means no Close was
            // ever sent, so Cancel is always safe.
            ? DecideLocked(id, &act, ActivityDecision::kCancel)
            : DriveOutcomeLocked(id, &act);
    if (!driven.ok()) recovery.complete = false;
    if (undecided) {
      ++recovery.presumed_abort;
      WsbaMetrics::Get().presumed_aborts->Increment();
    } else {
      ++recovery.redriven;
    }
    if (crashed_) break;  // a crash point fired during recovery itself
  }
  return recovery;
}

Result<CoordinatorRecovery> RecoverCoordinator(
    BusinessActivityCoordinator* coordinator, const std::string& log_path) {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-recover");
  LogScanStats stats;
  PROMISES_ASSIGN_OR_RETURN(
      std::vector<LogRecord> records,
      OperationLog::ReadForRecovery(log_path, &stats,
                                    /*allow_mid_log_corruption=*/false));
  std::lock_guard<std::mutex> lk(coordinator->mu_);
  if (!coordinator->activities_.empty()) {
    return Status::FailedPrecondition(
        "recover into a fresh coordinator, not one already serving");
  }
  coordinator->LoadRecoveredRecords(records);
  CoordinatorRecovery recovery = coordinator->ReDriveUnresolvedLocked();
  WsbaMetrics::Get().recovered_activities->Increment(recovery.activities);
  return recovery;
}

// ---- Participant -----------------------------------------------------

BusinessActivityParticipant::BusinessActivityParticipant(
    std::string endpoint, Transport* transport, Callbacks callbacks,
    ParticipantOptions options)
    : endpoint_(std::move(endpoint)),
      transport_(transport),
      callbacks_(std::move(callbacks)),
      options_(options),
      retry_rng_(options.retry_seed) {
  if (options_.clock == nullptr) {
    owned_clock_ = std::make_unique<SystemClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = options_.clock;
  }
  if (options_.retry.clock == nullptr) options_.retry.clock = clock_;
  transport_->Register(endpoint_, [this](const Envelope& env) {
    return HandleOrder(env);
  });
}

BusinessActivityParticipant::~BusinessActivityParticipant() {
  transport_->Unregister(endpoint_);
}

Status BusinessActivityParticipant::AppendRecord(const std::string& payload) {
  if (options_.log == nullptr) return Status::OK();
  PROMISES_ASSIGN_OR_RETURN(
      uint64_t seq,
      options_.log->AppendOperation(clock_, payload, /*promise_id=*/0));
  return options_.log->WaitDurable(seq);
}

void BusinessActivityParticipant::Enlist(
    const std::string& coordinator_endpoint, ActivityId activity,
    ParticipantId id) {
  std::lock_guard<std::mutex> lk(mu_);
  Enlistment& e = enlistments_[activity.value()];
  e.id = id;
  e.coordinator = coordinator_endpoint;
  current_ = activity;
  (void)AppendRecord("bp|enlist|" + endpoint_ + "|" +
                     std::to_string(activity.value()) + "|" +
                     std::to_string(id.value()) + "|" + coordinator_endpoint);
}

Status BusinessActivityParticipant::Signal(ActivityId activity,
                                           const std::string& kind,
                                           const std::string& detail) {
  std::string coordinator;
  ParticipantId id;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = enlistments_.find(activity.value());
    if (it == enlistments_.end()) {
      return Status::FailedPrecondition("participant not enlisted");
    }
    coordinator = it->second.coordinator;
    id = it->second.id;
    if (kind == "completed") it->second.completed = true;
  }
  if (kind == "completed") {
    // Write-ahead vote: the durable completed record is what tells a
    // restarted participant its work still needs undoing, so it must
    // hit the log before the coordinator can learn of the completion.
    PROMISES_RETURN_IF_ERROR(AppendRecord(
        "bp|completed|" + endpoint_ + "|" + std::to_string(activity.value())));
  }
  WsbaMetrics::Get().signals->Increment();
  Envelope env = ProtocolMessage(transport_, endpoint_, coordinator, kind,
                                 activity, id, detail);
  // mu_ is NOT held across the send: the coordinator may concurrently
  // hold its own lock while ordering this participant, and the
  // in-process transport runs handlers on the caller's thread.
  Result<Envelope> reply = CallWithRetry(
      options_.retry, &retry_rng_, [&] { return transport_->Send(env); },
      /*retries=*/nullptr, [&] { transport_->NoteRetry(coordinator); });
  PROMISES_RETURN_IF_ERROR(reply.status());
  if (!reply->action_result || !reply->action_result->ok) {
    return Status::FailedPrecondition(
        "coordinator refused '" + kind + "': " +
        (reply->action_result ? reply->action_result->error : "no result"));
  }
  return Status::OK();
}

Status BusinessActivityParticipant::SignalCompleted() {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-complete");
  ActivityId target;
  {
    std::lock_guard<std::mutex> lk(mu_);
    target = current_;
  }
  return Signal(target, "completed", "");
}

Status BusinessActivityParticipant::SignalCompleted(ActivityId activity) {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-complete");
  return Signal(activity, "completed", "");
}

Status BusinessActivityParticipant::SignalExit() {
  ActivityId target;
  {
    std::lock_guard<std::mutex> lk(mu_);
    target = current_;
  }
  return Signal(target, "exit", "");
}

Status BusinessActivityParticipant::SignalFault(const std::string& reason) {
  ActivityId target;
  {
    std::lock_guard<std::mutex> lk(mu_);
    target = current_;
  }
  return Signal(target, "fault", reason);
}

Status BusinessActivityParticipant::ApplyOrderLocked(
    ActivityId activity, Enlistment* enlistment, const std::string& kind) {
  // Cancel of an enlistment that already completed means the
  // coordinator decided abort after our vote: the work exists and must
  // be undone, so the cancel is executed as a compensate.
  std::string effective = kind;
  if (kind == "cancel" && enlistment->completed) effective = "compensate";

  Status st = Status::OK();
  if (effective == "close") {
    if (callbacks_.on_close) st = callbacks_.on_close();
  } else if (effective == "compensate") {
    if (callbacks_.on_compensate) st = callbacks_.on_compensate();
  } else {  // cancel of never-completed work
    if (callbacks_.on_cancel) callbacks_.on_cancel();
  }
  if (!st.ok()) return st;
  // Durable before the ack: once the coordinator hears "done" it will
  // never re-send, so losing this record to a crash would strand a
  // retransmitted order with no dedup memory and re-run the callback.
  PROMISES_RETURN_IF_ERROR(
      AppendRecord("bp|done|" + endpoint_ + "|" +
                   std::to_string(activity.value()) + "|" + effective));
  enlistment->executed = effective;
  return Status::OK();
}

Result<Envelope> BusinessActivityParticipant::HandleOrder(
    const Envelope& envelope) {
  if (!envelope.action || envelope.action->service != kService) {
    return Status::InvalidArgument("not a wsba protocol message");
  }
  const ActionBody& action = *envelope.action;
  const std::string& kind = action.operation;
  if (kind != "close" && kind != "compensate" && kind != "cancel") {
    return Ack(transport_, envelope, false, "unknown order '" + kind + "'");
  }
  auto aid = action.params.find("activity");
  if (aid == action.params.end()) {
    return Status::InvalidArgument("wsba order missing activity id");
  }
  ActivityId activity(static_cast<uint64_t>(aid->second.as_int()));

  std::lock_guard<std::mutex> lk(mu_);
  auto it = enlistments_.find(activity.value());
  if (it == enlistments_.end()) {
    if (kind == "close") {
      // A Close can only follow our own Completed signal, which can
      // only follow a durable enlistment — an unknown activity here is
      // a protocol error, not an amnesiac restart.
      return Ack(transport_, envelope, false,
                 "close for unknown activity " + activity.ToString());
    }
    // Presumed abort from the participant's side: no durable
    // enlistment means no completed work, so there is nothing to undo
    // and the cancel/compensate can be acked as done.
    return Ack(transport_, envelope, true);
  }
  Enlistment& e = it->second;
  std::string effective = kind;
  if (kind == "cancel" && e.completed) effective = "compensate";
  if (!e.executed.empty()) {
    if (e.executed == effective) {
      // Retransmitted order (lost ack, duplicated delivery, re-drive
      // after coordinator crash): ack without re-running the callback.
      WsbaMetrics::Get().order_dedup->Increment();
      return Ack(transport_, envelope, true);
    }
    return Ack(transport_, envelope, false,
               "conflicting order '" + kind + "' after '" + e.executed + "'");
  }
  Status st = ApplyOrderLocked(activity, &e, kind);
  return Ack(transport_, envelope, st.ok(), st.ok() ? "" : st.ToString());
}

Result<ActivityOutcome> BusinessActivityParticipant::QueryOutcome() {
  ActivityId target;
  {
    std::lock_guard<std::mutex> lk(mu_);
    target = current_;
  }
  return QueryOutcome(target);
}

Result<ActivityOutcome> BusinessActivityParticipant::QueryOutcome(
    ActivityId activity) {
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "wsba-outcome-query");
  std::string coordinator;
  ParticipantId id;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = enlistments_.find(activity.value());
    if (it == enlistments_.end()) {
      return Status::FailedPrecondition("participant not enlisted");
    }
    coordinator = it->second.coordinator;
    id = it->second.id;
  }
  Envelope env = ProtocolMessage(transport_, endpoint_, coordinator,
                                 "get_outcome", activity, id);
  Result<Envelope> reply = CallWithRetry(
      options_.retry, &retry_rng_, [&] { return transport_->Send(env); },
      /*retries=*/nullptr, [&] { transport_->NoteRetry(coordinator); });
  PROMISES_RETURN_IF_ERROR(reply.status());
  if (!reply->action_result || !reply->action_result->ok) {
    return Status::Internal("get_outcome refused: " +
                            (reply->action_result ? reply->action_result->error
                                                  : "no result"));
  }
  const auto& outputs = reply->action_result->outputs;
  auto known_it = outputs.find("known");
  auto decision_it = outputs.find("decision");
  bool known = known_it != outputs.end() && known_it->second.as_bool();
  std::string decision =
      decision_it != outputs.end() ? decision_it->second.as_string() : "none";

  std::lock_guard<std::mutex> lk(mu_);
  auto it = enlistments_.find(activity.value());
  if (it == enlistments_.end()) {
    return Status::FailedPrecondition("participant not enlisted");
  }
  Enlistment& e = it->second;
  if (!known || decision == "cancel") {
    // Unknown activity = the coordinator never durably decided =
    // presumed abort. Same local action as an explicit cancel.
    if (e.executed.empty()) {
      PROMISES_RETURN_IF_ERROR(ApplyOrderLocked(activity, &e, "cancel"));
    }
    return ActivityOutcome::kCompensated;
  }
  if (decision == "close") {
    if (e.executed.empty()) {
      PROMISES_RETURN_IF_ERROR(ApplyOrderLocked(activity, &e, "close"));
    }
    return ActivityOutcome::kClosed;
  }
  // Undecided: still open; re-query after the coordinator's
  // retry_after_ms hint.
  return ActivityOutcome::kOpen;
}

std::string BusinessActivityParticipant::ExecutedOutcome(
    ActivityId activity) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = enlistments_.find(activity.value());
  return it == enlistments_.end() ? "" : it->second.executed;
}

Status RecoverParticipant(BusinessActivityParticipant* participant,
                          const std::string& log_path) {
  LogScanStats stats;
  PROMISES_ASSIGN_OR_RETURN(
      std::vector<LogRecord> records,
      OperationLog::ReadForRecovery(log_path, &stats,
                                    /*allow_mid_log_corruption=*/false));
  std::lock_guard<std::mutex> lk(participant->mu_);
  for (const LogRecord& record : records) {
    std::vector<std::string> f = Split(record.payload, '|');
    if (f.size() < 4 || f[0] != "bp" || f[2] != participant->endpoint_) {
      continue;
    }
    const std::string& op = f[1];
    if (op == "enlist" && f.size() >= 6) {
      uint64_t activity = FieldId(f[3]);
      if (activity == 0) continue;
      BusinessActivityParticipant::Enlistment& e =
          participant->enlistments_[activity];
      e.id = ParticipantId(FieldId(f[4]));
      e.coordinator = f[5];
      participant->current_ = ActivityId(activity);
    } else if (op == "completed") {
      auto it = participant->enlistments_.find(FieldId(f[3]));
      if (it != participant->enlistments_.end()) it->second.completed = true;
    } else if (op == "done" && f.size() >= 5) {
      auto it = participant->enlistments_.find(FieldId(f[3]));
      if (it != participant->enlistments_.end()) it->second.executed = f[4];
    }
  }
  return Status::OK();
}

}  // namespace promises
