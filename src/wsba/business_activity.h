// WS-BusinessActivity-style coordination (§10: "We also will integrate
// the processing of promises with other frameworks for service-oriented
// messaging, including the transaction support found in standards like
// WS-BusinessActivity").
//
// Implements the BusinessAgreementWithParticipantCompletion protocol
// over the library's transport: a coordinator scopes an activity,
// participants register and later signal Completed / Exit / Fault; at
// the end the coordinator drives every completed participant to Close
// (outcome confirmed) or Compensate (outcome undone). Unlike atomic
// transactions, participants act immediately and undo semantically —
// the saga model service-based applications actually use, and the
// natural frame around a set of promises: compensation releases them.
//
// Participant state machine (coordinator's view):
//
//            Register
//               v
//   +-------- Active ----Exit----> Exited
//   |           |   |
//   | Fault     |   Completed
//   v           |      |
// Faulted <-----+      v
//   (others get     Completed --Close------> Closing --Closed----> Ended
//    compensated)       |
//                        +-----Compensate--> Compensating
//                                              --Compensated-----> Ended

#ifndef PROMISES_WSBA_BUSINESS_ACTIVITY_H_
#define PROMISES_WSBA_BUSINESS_ACTIVITY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "protocol/transport.h"

namespace promises {

struct ActivityIdTag { static constexpr const char* kPrefix = "activity"; };
struct ParticipantIdTag {
  static constexpr const char* kPrefix = "participant";
};
/// Scopes one business activity (the CoordinationContext id).
using ActivityId = TypedId<ActivityIdTag>;
/// One enlistment within an activity.
using ParticipantId = TypedId<ParticipantIdTag>;

enum class ParticipantState {
  kActive,        ///< Registered, still working.
  kCompleted,     ///< Work done; compensation available.
  kClosing,       ///< Close sent, awaiting Closed.
  kCompensating,  ///< Compensate sent, awaiting Compensated.
  kEnded,         ///< Closed or Compensated acknowledged.
  kExited,        ///< Left the activity without work to undo.
  kFaulted,       ///< Reported failure; cannot complete or compensate.
};

std::string_view ParticipantStateToString(ParticipantState s);

enum class ActivityOutcome {
  kOpen,         ///< Still running.
  kClosed,       ///< All participants confirmed.
  kCompensated,  ///< All completed participants undone.
  kMixed,        ///< Some acknowledgement failed; needs intervention.
};

std::string_view ActivityOutcomeToString(ActivityOutcome o);

/// Coordinator role: creates activities, tracks participant states,
/// drives the close/compensate fan-out.
class BusinessActivityCoordinator {
 public:
  /// Registers itself on `transport` under `endpoint` to receive
  /// participant signals (Completed / Exit / Fault).
  BusinessActivityCoordinator(std::string endpoint, Transport* transport);
  ~BusinessActivityCoordinator();

  const std::string& endpoint() const { return endpoint_; }

  /// Starts a new activity scope.
  ActivityId CreateActivity();

  /// Enlists the participant listening at `participant_endpoint`.
  Result<ParticipantId> Register(ActivityId activity,
                                 const std::string& participant_endpoint);

  /// Ends the activity successfully: every kCompleted participant is
  /// driven to Close. Active participants still working make the close
  /// fail with kFailedPrecondition (complete or exit first).
  Result<ActivityOutcome> CloseActivity(ActivityId activity);

  /// Ends the activity by undoing it: every kCompleted participant is
  /// driven to Compensate; still-active participants are cancelled
  /// (treated as exited — they had not completed any work to undo).
  Result<ActivityOutcome> CancelActivity(ActivityId activity);

  /// State queries (coordinator's view).
  Result<ParticipantState> StateOf(ActivityId activity,
                                   ParticipantId participant) const;
  Result<ActivityOutcome> OutcomeOf(ActivityId activity) const;
  size_t ParticipantCount(ActivityId activity) const;

  /// True when any participant of `activity` reported Fault; the usual
  /// reaction is CancelActivity.
  bool HasFault(ActivityId activity) const;

 private:
  struct Participant {
    std::string endpoint;
    ParticipantState state = ParticipantState::kActive;
  };
  struct Activity {
    std::map<ParticipantId, Participant> participants;
    ActivityOutcome outcome = ActivityOutcome::kOpen;
    bool faulted = false;
  };

  /// Handles Completed / Exit / Fault signals from participants.
  Result<Envelope> HandleSignal(const Envelope& envelope);

  /// Sends Close or Compensate and processes the acknowledgement.
  Status DriveToEnd(Activity* activity, ActivityId activity_id,
                    ParticipantId id, Participant* participant,
                    bool close);

  std::string endpoint_;
  Transport* transport_;
  IdGenerator<ActivityId> activity_ids_;
  IdGenerator<ParticipantId> participant_ids_;
  std::map<ActivityId, Activity> activities_;
};

/// Participant role: owns the work's confirm/undo callbacks and answers
/// the coordinator's protocol messages.
class BusinessActivityParticipant {
 public:
  struct Callbacks {
    /// Outcome confirmed; release resources kept for compensation.
    std::function<Status()> on_close;
    /// Outcome revoked; undo the completed work.
    std::function<Status()> on_compensate;
    /// Activity cancelled while still active (nothing completed).
    std::function<void()> on_cancel;
  };

  BusinessActivityParticipant(std::string endpoint, Transport* transport,
                              Callbacks callbacks);
  ~BusinessActivityParticipant();

  const std::string& endpoint() const { return endpoint_; }

  /// Binds this participant to its enlistment (obtained out of band
  /// from the coordinator's Register result).
  void Enlist(const std::string& coordinator_endpoint, ActivityId activity,
              ParticipantId id);

  /// Signals the coordinator that this participant's work is done and
  /// compensation is available.
  Status SignalCompleted();
  /// Signals that this participant has nothing to do in the activity.
  Status SignalExit();
  /// Signals that this participant failed and cannot complete.
  Status SignalFault(const std::string& reason);

 private:
  Result<Envelope> HandleOrder(const Envelope& envelope);
  Status Signal(const std::string& kind, const std::string& detail);

  std::string endpoint_;
  Transport* transport_;
  Callbacks callbacks_;
  std::string coordinator_;
  ActivityId activity_;
  ParticipantId id_;
};

}  // namespace promises

#endif  // PROMISES_WSBA_BUSINESS_ACTIVITY_H_
