// WS-BusinessActivity-style coordination (§10: "We also will integrate
// the processing of promises with other frameworks for service-oriented
// messaging, including the transaction support found in standards like
// WS-BusinessActivity").
//
// Implements the BusinessAgreementWithParticipantCompletion protocol
// over the library's transport: a coordinator scopes an activity,
// participants register and later signal Completed / Exit / Fault; at
// the end the coordinator drives every completed participant to Close
// (outcome confirmed) or Compensate (outcome undone). Unlike atomic
// transactions, participants act immediately and undo semantically —
// the saga model service-based applications actually use, and the
// natural frame around a set of promises: compensation releases them.
//
// Crash tolerance (DESIGN.md §11). The coordinator is a write-ahead
// state machine over the shared OperationLog substrate:
//
//   * every state transition (create, register, participant signal,
//     the close/cancel *decision*, per-participant outcome acks, end)
//     is appended to a durable decision log, and the decision record
//     is made durable (group-commit WaitDurable) BEFORE any outcome
//     order leaves the coordinator;
//   * recovery (RecoverCoordinator) replays the decision log into a
//     fresh coordinator and re-drives unresolved activities: an
//     activity with a durable decision is driven to that outcome, an
//     activity without one is *presumed aborted* and cancelled — safe
//     precisely because no Close can have been sent without a durable
//     close decision preceding it;
//   * outcome orders are retransmitted with RetryPolicy backoff and
//     participants deduplicate them per activity, so re-driving after
//     a crash (or a lost ack) never double-runs a compensation;
//   * participants write their own enlistment/completion/outcome
//     records ahead of acting, and after coordinator silence re-query
//     the outcome (get_outcome) — an unknown activity means presumed
//     abort: undo if completed, forget otherwise.
//
// Injected crash points (FaultInjector::AtCrashPoint) mark the
// coordinator's crash-consistency boundaries — "wsba-pre-decision",
// "wsba-post-decision", "wsba-pre-notify", "wsba-post-notify",
// "wsba-pre-ended" — so the recovery tests can kill the coordinator in
// every window of the outcome fan-out and prove the twin world
// converges to one consistent outcome.
//
// Participant state machine (coordinator's view):
//
//            Register
//               v
//   +-------- Active ----Exit----> Exited
//   |           |   |      ^
//   | Fault     |   |      +--Cancelled--- Cancelling
//   v           |   Completed                  ^
// Faulted <-----+      |                       | (cancel of a
//   (others get        v                       |  never-completed
//    compensated)   Completed --Close------> Closing --Closed----> Ended
//                       |
//                        +-----Compensate--> Compensating
//                                              --Compensated-----> Ended

#ifndef PROMISES_WSBA_BUSINESS_ACTIVITY_H_
#define PROMISES_WSBA_BUSINESS_ACTIVITY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/oplog.h"
#include "protocol/fault_injector.h"
#include "protocol/retry_policy.h"
#include "protocol/transport.h"

namespace promises {

struct ActivityIdTag { static constexpr const char* kPrefix = "activity"; };
struct ParticipantIdTag {
  static constexpr const char* kPrefix = "participant";
};
/// Scopes one business activity (the CoordinationContext id).
using ActivityId = TypedId<ActivityIdTag>;
/// One enlistment within an activity.
using ParticipantId = TypedId<ParticipantIdTag>;

enum class ParticipantState {
  kActive,        ///< Registered, still working.
  kCompleted,     ///< Work done; compensation available.
  kClosing,       ///< Close sent, awaiting Closed.
  kCompensating,  ///< Compensate sent, awaiting Compensated.
  kCancelling,    ///< Cancel sent to a still-active participant.
  kEnded,         ///< Closed or Compensated acknowledged.
  kExited,        ///< Left the activity without work to undo.
  kFaulted,       ///< Reported failure; cannot complete or compensate.
};

std::string_view ParticipantStateToString(ParticipantState s);

enum class ActivityOutcome {
  kOpen,         ///< Still running (or decided but not fully acked).
  kClosed,       ///< All participants confirmed.
  kCompensated,  ///< All completed participants undone.
  kMixed,        ///< Some acknowledgement failed; needs intervention.
};

std::string_view ActivityOutcomeToString(ActivityOutcome o);

/// The durable outcome decision. Write-ahead: the record carrying it
/// hits the log before any outcome order is sent, so recovery can
/// presume abort for anything undecided.
enum class ActivityDecision { kNone, kClose, kCancel };

std::string_view ActivityDecisionToString(ActivityDecision d);

/// Crash-tolerance knobs for the coordinator. All pointers are
/// non-owning and optional: a default-constructed options struct gives
/// the legacy purely in-memory coordinator.
struct CoordinatorOptions {
  /// Durable decision log. Must be Open()ed by the owner (the torn-tail
  /// scan on Open is what gives presumed abort its teeth) and outlive
  /// the coordinator. Null = volatile coordinator.
  OperationLog* log = nullptr;
  /// Timestamps log records and paces order retransmission backoff.
  /// Null = an internal real-time clock.
  Clock* clock = nullptr;
  /// Outcome-order retransmission: Close/Compensate/Cancel orders are
  /// re-sent with this policy (identical envelope; participants dedup
  /// per activity). Exhausted retries leave the participant unresolved
  /// for a later ReDrive instead of faulting it.
  RetryPolicy retry{/*max_attempts=*/4, /*deadline_ms=*/5'000,
                    /*initial_backoff_ms=*/1, /*backoff_multiplier=*/2.0,
                    /*max_backoff_ms=*/16, /*jitter=*/0.25};
  uint64_t retry_seed = 42;
  /// Crash-point source (AtCrashPoint at the boundaries listed in the
  /// file comment). A fired point flips the coordinator into the
  /// crashed state: every later call fails kUnavailable until a twin
  /// coordinator is recovered from the log.
  FaultInjector* crash_points = nullptr;
};

/// What RecoverCoordinator found and did.
struct CoordinatorRecovery {
  size_t activities = 0;      ///< Activities reconstructed from the log.
  size_t already_ended = 0;   ///< Had a durable ended record; untouched.
  size_t redriven = 0;        ///< Durable decision re-driven to outcome.
  size_t presumed_abort = 0;  ///< No decision; cancelled (presumed abort).
  /// False when a re-drive left participants unresolved (unreachable
  /// after retries); call ReDrive again when the transport heals.
  bool complete = true;
};

/// Coordinator role: creates activities, tracks participant states,
/// drives the close/compensate fan-out. Thread-safe: one coordinator
/// may serve concurrent activities.
class BusinessActivityCoordinator {
 public:
  /// Registers itself on `transport` under `endpoint` to receive
  /// participant signals (Completed / Exit / Fault / GetOutcome).
  BusinessActivityCoordinator(std::string endpoint, Transport* transport,
                              CoordinatorOptions options = {});
  ~BusinessActivityCoordinator();

  const std::string& endpoint() const { return endpoint_; }

  /// Starts a new activity scope (durably logged before it is usable).
  ActivityId CreateActivity();

  /// Enlists the participant listening at `participant_endpoint`.
  /// Idempotent per endpoint: re-registering an endpoint already
  /// enlisted in `activity` (a duplicated Register delivery) returns
  /// the existing enlistment instead of creating a twin.
  Result<ParticipantId> Register(ActivityId activity,
                                 const std::string& participant_endpoint);

  /// Ends the activity successfully: the close decision is made
  /// durable, then every kCompleted participant is driven to Close.
  /// Active participants still working make the close fail with
  /// kFailedPrecondition (complete or exit first). Participants
  /// unreachable after retries leave the activity undecided-looking
  /// (kOpen) with the decision durably recorded; returns kUnavailable —
  /// ReDrive when the transport heals.
  Result<ActivityOutcome> CloseActivity(ActivityId activity);

  /// Ends the activity by undoing it: the cancel decision is made
  /// durable, then every kCompleted participant is driven to
  /// Compensate and still-active participants are cancelled.
  Result<ActivityOutcome> CancelActivity(ActivityId activity);

  /// Re-runs the outcome fan-out for an activity whose decision is
  /// durable but whose participants were not all acked (coordinator
  /// crash mid-drive, participants unreachable). Idempotent:
  /// participants already acked are skipped, the rest get their order
  /// retransmitted.
  Result<ActivityOutcome> ReDrive(ActivityId activity);

  /// Activities with a state the protocol still owes work to: decided
  /// but not fully acked, or undecided with enlistments.
  std::vector<ActivityId> UnresolvedActivities() const;

  /// State queries (coordinator's view).
  Result<ParticipantState> StateOf(ActivityId activity,
                                   ParticipantId participant) const;
  Result<ActivityOutcome> OutcomeOf(ActivityId activity) const;
  Result<ActivityDecision> DecisionOf(ActivityId activity) const;
  size_t ParticipantCount(ActivityId activity) const;

  /// True when any participant of `activity` reported Fault; the usual
  /// reaction is CancelActivity.
  bool HasFault(ActivityId activity) const;

  /// True once an injected crash point fired: the coordinator is
  /// "dead" (every call fails kUnavailable) until a twin is recovered
  /// from the decision log.
  bool crashed() const;

  /// Simulated SIGKILL from outside: marks the coordinator crashed
  /// (every call fails kUnavailable) without firing a crash point. A
  /// crashed coordinator's destructor does NOT unregister its
  /// transport endpoint — a killed process never gets to — so a
  /// recovered twin's own Register (which replaces any prior handler)
  /// is not clobbered when the corpse is finally destroyed.
  void SimulateCrash();

  /// Coordinator-order retransmissions performed so far.
  uint64_t retransmissions() const;

 private:
  friend Result<CoordinatorRecovery> RecoverCoordinator(
      BusinessActivityCoordinator* coordinator, const std::string& log_path);

  struct Participant {
    std::string endpoint;
    ParticipantState state = ParticipantState::kActive;
    /// Ack ok=false during the drive (distinct from a pre-decision
    /// Fault signal): makes the final outcome kMixed.
    bool order_failed = false;
  };
  struct Activity {
    std::map<ParticipantId, Participant> participants;
    ActivityOutcome outcome = ActivityOutcome::kOpen;
    ActivityDecision decision = ActivityDecision::kNone;
    bool faulted = false;
  };

  /// Handles Completed / Exit / Fault / GetOutcome from participants.
  Result<Envelope> HandleSignal(const Envelope& envelope);

  /// Appends one decision-log record; `durable` waits for the group
  /// ack. No-op without a log.
  Status AppendRecord(const std::string& payload, bool durable);

  /// True when an armed crash point fired; flips crashed_.
  bool CrashAt(const char* point);

  /// The write-ahead decision + outcome fan-out. mu_ held.
  Result<ActivityOutcome> DecideLocked(ActivityId id, Activity* activity,
                                       ActivityDecision decision);
  /// Sends every pending order (with retransmission), logs acks and,
  /// once nothing is pending, the ended record. mu_ held.
  Result<ActivityOutcome> DriveOutcomeLocked(ActivityId id,
                                             Activity* activity);
  /// Replays decision-log records into activities_ (fresh coordinator).
  void LoadRecoveredRecords(const std::vector<LogRecord>& records);
  /// Drives every unresolved activity (presumed abort for undecided).
  CoordinatorRecovery ReDriveUnresolvedLocked();

  std::string endpoint_;
  Transport* transport_;
  CoordinatorOptions options_;
  std::unique_ptr<Clock> owned_clock_;  ///< When options.clock is null.
  Clock* clock_;                        ///< Never null.
  Rng retry_rng_;

  mutable std::mutex mu_;
  bool crashed_ = false;
  uint64_t retransmissions_ = 0;
  IdGenerator<ActivityId> activity_ids_;
  IdGenerator<ParticipantId> participant_ids_;
  std::map<ActivityId, Activity> activities_;
};

/// Rebuilds a crashed coordinator from its decision log: replays the
/// records at `log_path` into `coordinator` (which must be freshly
/// constructed, with its options.log already Open()ed on that same
/// path so appends continue where the log left off), then re-drives
/// every unresolved activity — durable decisions to their outcome,
/// undecided activities to Cancel (presumed abort). Call before the
/// coordinator serves new traffic.
Result<CoordinatorRecovery> RecoverCoordinator(
    BusinessActivityCoordinator* coordinator, const std::string& log_path);

/// Participant-side durability knobs. Non-owning, all optional.
struct ParticipantOptions {
  /// Enlistment/vote/outcome log. May be shared by many participants
  /// (records carry the participant endpoint); must outlive them.
  OperationLog* log = nullptr;
  Clock* clock = nullptr;
  /// Backoff for signals and outcome queries toward the coordinator.
  RetryPolicy retry{/*max_attempts=*/4, /*deadline_ms=*/5'000,
                    /*initial_backoff_ms=*/1, /*backoff_multiplier=*/2.0,
                    /*max_backoff_ms=*/16, /*jitter=*/0.25};
  uint64_t retry_seed = 43;
};

/// Participant role: owns the work's confirm/undo callbacks and answers
/// the coordinator's protocol messages. Orders are deduplicated per
/// activity (a retransmitted Close/Compensate acks without re-running
/// the callback) and the dedup state survives restart via the options
/// log, so coordinator retries across a participant crash stay
/// exactly-once. Thread-safe.
class BusinessActivityParticipant {
 public:
  struct Callbacks {
    /// Outcome confirmed; release resources kept for compensation.
    std::function<Status()> on_close;
    /// Outcome revoked; undo the completed work.
    std::function<Status()> on_compensate;
    /// Activity cancelled while still active (nothing completed).
    std::function<void()> on_cancel;
  };

  BusinessActivityParticipant(std::string endpoint, Transport* transport,
                              Callbacks callbacks,
                              ParticipantOptions options = {});
  ~BusinessActivityParticipant();

  const std::string& endpoint() const { return endpoint_; }

  /// Binds this participant to an enlistment (obtained out of band
  /// from the coordinator's Register result) and durably records it.
  /// A participant may hold several enlistments; the most recent one
  /// is the target of the no-argument Signal*/QueryOutcome calls.
  void Enlist(const std::string& coordinator_endpoint, ActivityId activity,
              ParticipantId id);

  /// Signals the coordinator that this participant's work is done and
  /// compensation is available. The completed vote is logged ahead of
  /// the signal, so a restarted participant still knows its work needs
  /// undoing. Retries with the options policy (coordinator-side
  /// signals are idempotent).
  Status SignalCompleted();
  Status SignalCompleted(ActivityId activity);
  /// Signals that this participant has nothing to do in the activity.
  Status SignalExit();
  /// Signals that this participant failed and cannot complete.
  Status SignalFault(const std::string& reason);

  /// Timeout path: after coordinator silence, asks it for the
  /// activity's outcome and applies the answer locally (running the
  /// close/compensate/cancel callback at most once). A coordinator
  /// that does not know the activity means presumed abort: undo if
  /// completed, forget otherwise. Returns the outcome applied, kOpen
  /// when the activity is still undecided (re-query after the
  /// coordinator's retry_after_ms hint), or the transport error when
  /// the coordinator stayed unreachable through the retry budget.
  Result<ActivityOutcome> QueryOutcome();
  Result<ActivityOutcome> QueryOutcome(ActivityId activity);

  /// The outcome order this participant executed for `activity`
  /// ("close", "compensate", "cancel"), or "" when none yet.
  std::string ExecutedOutcome(ActivityId activity) const;

 private:
  friend Status RecoverParticipant(BusinessActivityParticipant* participant,
                                   const std::string& log_path);

  struct Enlistment {
    ParticipantId id;
    std::string coordinator;
    bool completed = false;  ///< Durable vote: work done, undo possible.
    std::string executed;    ///< "", "close", "compensate", "cancel".
  };

  Result<Envelope> HandleOrder(const Envelope& envelope);
  Status Signal(ActivityId activity, const std::string& kind,
                const std::string& detail);
  /// Runs the callback for `kind` (with cancel-of-completed mapped to
  /// compensate), logs the executed record and stamps the enlistment.
  /// mu_ held. Returns the callback's status.
  Status ApplyOrderLocked(ActivityId activity, Enlistment* enlistment,
                          const std::string& kind);
  Status AppendRecord(const std::string& payload);

  std::string endpoint_;
  Transport* transport_;
  Callbacks callbacks_;
  ParticipantOptions options_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;
  Rng retry_rng_;

  mutable std::mutex mu_;
  std::map<uint64_t, Enlistment> enlistments_;  ///< Keyed by activity value.
  ActivityId current_;  ///< Most recent Enlist target.
};

/// Restores a restarted participant's durable protocol state from the
/// log at `log_path`: enlistments, completed votes and already-executed
/// outcomes (filtered to this participant's endpoint), so retransmitted
/// orders ack idempotently instead of re-running callbacks. Call right
/// after constructing the replacement participant.
Status RecoverParticipant(BusinessActivityParticipant* participant,
                          const std::string& log_path);

}  // namespace promises

#endif  // PROMISES_WSBA_BUSINESS_ACTIVITY_H_
