#include "txn/lock_manager.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace promises {

bool LockManager::Compatible(const LockState& ls, TxnId txn, LockMode mode) {
  for (const auto& [holder, held_mode] : ls.holders) {
    if (holder == txn) continue;  // Own holds never conflict here.
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

std::map<TxnId, LockMode> LockManager::SnapshotHolders(
    const std::string& key) const {
  const Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lk(stripe.mu);
  auto it = stripe.table.find(key);
  if (it == stripe.table.end()) return {};
  return it->second.holders;
}

bool LockManager::WouldDeadlockLocked(TxnId waiter, const std::string& key,
                                      LockMode mode) const {
  // DFS over the wait-for graph: waiter -> holders of `key` that block
  // it -> keys those holders wait on -> ... A path back to `waiter`
  // means granting the wait would close a cycle. Holder sets are
  // snapshotted one stripe at a time; waiting_on_ is stable because the
  // caller holds wait_mu_.
  std::vector<TxnId> stack;
  std::set<TxnId> seen;
  for (const auto& [holder, held_mode] : SnapshotHolders(key)) {
    if (holder == waiter) continue;
    bool blocks =
        mode == LockMode::kExclusive || held_mode == LockMode::kExclusive;
    if (blocks && seen.insert(holder).second) stack.push_back(holder);
  }
  while (!stack.empty()) {
    TxnId t = stack.back();
    stack.pop_back();
    if (t == waiter) return true;
    auto wit = waiting_on_.find(t);
    if (wit == waiting_on_.end()) continue;
    // t is blocked; anything currently holding the key t waits on, in a
    // conflicting way, is downstream in the wait-for graph. We treat
    // every holder of that key as a potential blocker (conservative:
    // may flag a rare false cycle, never misses a real one).
    for (const auto& [holder, held_mode] : SnapshotHolders(wit->second)) {
      (void)held_mode;
      if (holder == t) continue;
      if (seen.insert(holder).second) stack.push_back(holder);
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, const std::string& key, LockMode mode,
                            DurationMs timeout_ms) {
  Stripe& stripe = StripeFor(key);
  std::unique_lock<std::mutex> lk(stripe.mu);
  LockState& ls = stripe.table[key];

  auto self = ls.holders.find(txn);
  if (self != ls.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // Already strong enough.
    }
    // S -> X upgrade: wait until we are the only holder.
    stats_.upgrades.fetch_add(1, std::memory_order_relaxed);
  }

  auto grantable = [&] { return Compatible(ls, txn, mode); };

  if (!grantable()) {
    // Only the blocking path gets a span: uncontended acquisitions are
    // the common case and must stay free of tracing cost; a wait is
    // exactly the latency a trace reader wants to see attributed.
    ScopedSpan wait_span("lock-wait");
    static Counter* waits_total =
        MetricsRegistry::Global().GetCounter("promises_lock_waits_total");
    static Counter* deadlocks_total = MetricsRegistry::Global().GetCounter(
        "promises_lock_deadlocks_total");
    // Per-stripe wait-time histograms: the epoch work (DESIGN.md §14)
    // needs to show which stripes the per-op path serializes on, so
    // each stripe exports its own distribution rather than one blended
    // one. Registered once, indexed by the same hash as StripeFor.
    static const std::array<Histogram*, kStripeCount> stripe_wait_us = [] {
      std::array<Histogram*, kStripeCount> h{};
      for (size_t i = 0; i < kStripeCount; ++i) {
        char name[48];
        std::snprintf(name, sizeof(name),
                      "promises_lock_wait_stripe_%02zu_us", i);
        h[i] = MetricsRegistry::Global().GetHistogram(name);
      }
      return h;
    }();
    Histogram* stripe_hist =
        stripe_wait_us[std::hash<std::string>{}(key) % kStripeCount];
    const auto wait_start = std::chrono::steady_clock::now();
    auto observe_wait = [&] {
      stripe_hist->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - wait_start)
                               .count());
    };
    waits_total->Increment();
    stats_.waits.fetch_add(1, std::memory_order_relaxed);
    // Pin the entry so it cannot be erased while the stripe mutex is
    // dropped for deadlock detection.
    ++ls.waiters;
    lk.unlock();
    bool deadlock;
    {
      // Detection and registration happen in one wait_mu_ critical
      // section: of two requests that would close a cycle, whichever
      // runs second is guaranteed to see the first's registration.
      std::lock_guard<std::mutex> wlk(wait_mu_);
      deadlock = WouldDeadlockLocked(txn, key, mode);
      if (!deadlock) waiting_on_[txn] = key;
    }
    lk.lock();
    if (deadlock) {
      wait_span.set_status("deadlock");
      observe_wait();
      deadlocks_total->Increment();
      stats_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      --ls.waiters;
      if (ls.holders.empty() && ls.waiters == 0) stripe.table.erase(key);
      return Status::Deadlock("lock on '" + key + "' would deadlock " +
                              txn.ToString());
    }
    bool ok = true;
    if (timeout_ms < 0) {
      ls.cv.wait(lk, grantable);
    } else {
      ok = ls.cv.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                          grantable);
    }
    --ls.waiters;
    observe_wait();
    if (!ok) {
      wait_span.set_status("timeout");
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      if (ls.holders.empty() && ls.waiters == 0) stripe.table.erase(key);
      lk.unlock();
      std::lock_guard<std::mutex> wlk(wait_mu_);
      waiting_on_.erase(txn);
      return Status::Timeout("lock wait on '" + key + "' timed out");
    }
    // Claim while still holding the stripe mutex so no later waiter can
    // steal the grant, then retire the registry entry. Until the erase
    // lands, detection may see a stale "waiting" edge for this txn —
    // that only makes it more conservative.
    ls.holders[txn] = mode;
    stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    std::lock_guard<std::mutex> wlk(wait_mu_);
    waiting_on_.erase(txn);
    return Status::OK();
  }

  ls.holders[txn] = mode;
  stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void LockManager::Release(TxnId txn, const std::string& key) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lk(stripe.mu);
  auto it = stripe.table.find(key);
  if (it == stripe.table.end()) return;
  it->second.holders.erase(txn);
  if (it->second.holders.empty() && it->second.waiters == 0) {
    stripe.table.erase(it);
  } else {
    it->second.cv.notify_all();
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lk(stripe.mu);
    for (auto it = stripe.table.begin(); it != stripe.table.end();) {
      it->second.holders.erase(txn);
      if (it->second.holders.empty() && it->second.waiters == 0) {
        it = stripe.table.erase(it);
      } else {
        it->second.cv.notify_all();
        ++it;
      }
    }
  }
}

size_t LockManager::HeldCount(TxnId txn) const {
  size_t n = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lk(stripe.mu);
    for (const auto& [key, ls] : stripe.table) {
      (void)key;
      if (ls.holders.count(txn)) ++n;
    }
  }
  return n;
}

bool LockManager::Holds(TxnId txn, const std::string& key,
                        LockMode mode) const {
  const Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lk(stripe.mu);
  auto it = stripe.table.find(key);
  if (it == stripe.table.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kShared || h->second == LockMode::kExclusive;
}

std::vector<std::string> LockManager::ExclusiveKeysOf(TxnId txn) const {
  std::vector<std::string> keys;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lk(stripe.mu);
    for (const auto& [key, ls] : stripe.table) {
      auto h = ls.holders.find(txn);
      if (h != ls.holders.end() && h->second == LockMode::kExclusive) {
        keys.push_back(key);
      }
    }
  }
  return keys;
}

LockManagerStats LockManager::stats() const {
  LockManagerStats s;
  s.acquisitions = stats_.acquisitions.load(std::memory_order_relaxed);
  s.waits = stats_.waits.load(std::memory_order_relaxed);
  s.deadlocks = stats_.deadlocks.load(std::memory_order_relaxed);
  s.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
  s.upgrades = stats_.upgrades.load(std::memory_order_relaxed);
  return s;
}

void LockManager::ResetStats() {
  stats_.acquisitions.store(0, std::memory_order_relaxed);
  stats_.waits.store(0, std::memory_order_relaxed);
  stats_.deadlocks.store(0, std::memory_order_relaxed);
  stats_.timeouts.store(0, std::memory_order_relaxed);
  stats_.upgrades.store(0, std::memory_order_relaxed);
}

}  // namespace promises
