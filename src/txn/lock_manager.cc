#include "txn/lock_manager.h"

#include <chrono>

namespace promises {

bool LockManager::CompatibleLocked(const LockState& ls, TxnId txn,
                                   LockMode mode) const {
  for (const auto& [holder, held_mode] : ls.holders) {
    if (holder == txn) continue;  // Own holds never conflict here.
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::WouldDeadlockLocked(TxnId waiter, const std::string& key,
                                      LockMode mode) {
  // DFS over the wait-for graph: waiter -> holders of `key` that block
  // it -> keys those holders wait on -> ... A path back to `waiter`
  // means granting the wait would close a cycle.
  std::vector<TxnId> stack;
  std::set<TxnId> seen;
  auto push_blockers = [&](const std::string& k, TxnId w, LockMode m) {
    auto it = table_.find(k);
    if (it == table_.end()) return;
    for (const auto& [holder, held_mode] : it->second.holders) {
      if (holder == w) continue;
      bool blocks =
          m == LockMode::kExclusive || held_mode == LockMode::kExclusive;
      if (blocks && seen.insert(holder).second) stack.push_back(holder);
    }
  };
  push_blockers(key, waiter, mode);
  while (!stack.empty()) {
    TxnId t = stack.back();
    stack.pop_back();
    if (t == waiter) return true;
    auto wit = waiting_on_.find(t);
    if (wit == waiting_on_.end()) continue;
    // t is blocked; anything currently holding the key t waits on, in a
    // conflicting way, is downstream in the wait-for graph. We treat
    // every holder of that key as a potential blocker (conservative:
    // may flag a rare false cycle, never misses a real one).
    auto it = table_.find(wit->second);
    if (it == table_.end()) continue;
    for (const auto& [holder, held_mode] : it->second.holders) {
      (void)held_mode;
      if (holder == t) continue;
      if (seen.insert(holder).second) stack.push_back(holder);
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, const std::string& key, LockMode mode,
                            DurationMs timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  LockState& ls = table_[key];

  auto self = ls.holders.find(txn);
  if (self != ls.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // Already strong enough.
    }
    // S -> X upgrade: wait until we are the only holder.
    ++stats_.upgrades;
  }

  auto grantable = [&] {
    return CompatibleLocked(ls, txn, mode);
  };

  if (!grantable()) {
    ++stats_.waits;
    if (WouldDeadlockLocked(txn, key, mode)) {
      ++stats_.deadlocks;
      return Status::Deadlock("lock on '" + key + "' would deadlock " +
                              txn.ToString());
    }
    waiting_on_[txn] = key;
    ++ls.waiters;
    bool ok = true;
    if (timeout_ms < 0) {
      ls.cv.wait(lk, grantable);
    } else {
      ok = ls.cv.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                          grantable);
    }
    --ls.waiters;
    waiting_on_.erase(txn);
    if (!ok) {
      ++stats_.timeouts;
      if (ls.holders.empty() && ls.waiters == 0) table_.erase(key);
      return Status::Timeout("lock wait on '" + key + "' timed out");
    }
  }

  ls.holders[txn] = mode;
  ++stats_.acquisitions;
  return Status::OK();
}

void LockManager::Release(TxnId txn, const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return;
  it->second.holders.erase(txn);
  if (it->second.holders.empty() && it->second.waiters == 0) {
    table_.erase(it);
  } else {
    it->second.cv.notify_all();
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.holders.erase(txn);
    if (it->second.holders.empty() && it->second.waiters == 0) {
      it = table_.erase(it);
    } else {
      it->second.cv.notify_all();
      ++it;
    }
  }
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [key, ls] : table_) {
    (void)key;
    if (ls.holders.count(txn)) ++n;
  }
  return n;
}

bool LockManager::Holds(TxnId txn, const std::string& key,
                        LockMode mode) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kShared || h->second == LockMode::kExclusive;
}

LockManagerStats LockManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void LockManager::ResetStats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = LockManagerStats{};
}

}  // namespace promises
