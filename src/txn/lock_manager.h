// Two-phase-locking lock manager.
//
// Plays two roles in the reproduction:
//  1. Substrate for §8's per-request local ACID transactions: every
//     promise operation (grant / action+check / release / update) runs
//     under short locks so the promise table and resource state stay
//     mutually consistent.
//  2. Baseline for §9: "traditional lock-based isolation" that holds
//     locks across a long-running operation. The deadlock counters it
//     exposes are what experiment E6 measures against the paper's claim
//     that promises reject immediately instead of blocking.
//
// Internally the key space is hash-partitioned into kStripeCount
// stripes, each with its own mutex and table, so acquisitions on
// unrelated keys never contend on a manager-wide mutex. Only the
// wait-for graph (deadlock detection and the waiting_on_ registry)
// remains global; it is touched only when a request actually blocks.
//
// Mutex order: wait_mu_ -> (one stripe mutex at a time). No code path
// holds two stripe mutexes at once, and no path takes wait_mu_ while
// holding a stripe mutex.

#ifndef PROMISES_TXN_LOCK_MANAGER_H_
#define PROMISES_TXN_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"

namespace promises {

/// Lock compatibility: any number of kShared holders, or one kExclusive.
enum class LockMode { kShared, kExclusive };

/// Counters exposed for experiment E6.
struct LockManagerStats {
  uint64_t acquisitions = 0;
  uint64_t waits = 0;        ///< Requests that had to block.
  uint64_t deadlocks = 0;    ///< Requests aborted by cycle detection.
  uint64_t timeouts = 0;     ///< Requests aborted by wait budget.
  uint64_t upgrades = 0;     ///< S->X upgrades performed.
};

/// Table-driven, striped lock manager with wait-for-graph deadlock
/// detection.
///
/// Keys are opaque strings; the resource layer uses "pool:<class>" and
/// "inst:<class>/<id>" keys, the promise manager uses a "pm:<name>"
/// root intention key plus "pm:<name>/c:<class>" stripes. Deadlock
/// detection runs at block time: if adding the waiter's wait-for edges
/// closes a cycle the request is refused with kDeadlock, implementing
/// immediate-abort rather than victim selection (the simplest policy;
/// the caller rolls back and may retry). Detection is conservative: it
/// may flag a rare false cycle (e.g. through a just-granted waiter
/// whose registry entry is still being retired), never misses a real
/// one.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `key` in `mode` for `txn`, blocking up to `timeout_ms`
  /// (-1 means wait forever). Re-entrant: a txn already holding the key
  /// in the same or stronger mode succeeds immediately; holding kShared
  /// and requesting kExclusive performs an upgrade.
  Status Acquire(TxnId txn, const std::string& key, LockMode mode,
                 DurationMs timeout_ms = -1);

  /// Releases one key held by `txn`. Missing locks are ignored.
  void Release(TxnId txn, const std::string& key);

  /// Releases everything `txn` holds (commit / rollback).
  void ReleaseAll(TxnId txn);

  /// Number of keys currently held by `txn`.
  size_t HeldCount(TxnId txn) const;

  /// True if `txn` holds `key` in a mode at least as strong as `mode`.
  bool Holds(TxnId txn, const std::string& key, LockMode mode) const;

  /// All keys `txn` currently holds in kExclusive mode. Used by the
  /// promise manager to discover which resource classes an action
  /// wrote (verification scope), so the snapshot only needs to be
  /// consistent per stripe.
  std::vector<std::string> ExclusiveKeysOf(TxnId txn) const;

  LockManagerStats stats() const;
  void ResetStats();

 private:
  static constexpr size_t kStripeCount = 16;

  struct LockState {
    // Holders and their modes. Multiple kShared or exactly one
    // kExclusive entry.
    std::map<TxnId, LockMode> holders;
    std::condition_variable cv;
    int waiters = 0;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, LockState> table;
  };

  Stripe& StripeFor(const std::string& key) {
    return stripes_[std::hash<std::string>{}(key) % kStripeCount];
  }
  const Stripe& StripeFor(const std::string& key) const {
    return stripes_[std::hash<std::string>{}(key) % kStripeCount];
  }

  static bool Compatible(const LockState& ls, TxnId txn, LockMode mode);
  // Copies the holder map of `key` under its stripe mutex. Safe to call
  // while holding wait_mu_ (wait_mu_ -> stripe order).
  std::map<TxnId, LockMode> SnapshotHolders(const std::string& key) const;
  // True if granting `waiter`'s blocked request on `key` would close a
  // wait-for cycle. Caller holds wait_mu_.
  bool WouldDeadlockLocked(TxnId waiter, const std::string& key,
                           LockMode mode) const;

  Stripe stripes_[kStripeCount];

  // Wait-for graph state. Touched only on the blocking path.
  mutable std::mutex wait_mu_;
  // txn -> key it is currently blocked on (at most one per thread/txn).
  std::unordered_map<TxnId, std::string> waiting_on_;

  struct AtomicStats {
    std::atomic<uint64_t> acquisitions{0};
    std::atomic<uint64_t> waits{0};
    std::atomic<uint64_t> deadlocks{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> upgrades{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace promises

#endif  // PROMISES_TXN_LOCK_MANAGER_H_
