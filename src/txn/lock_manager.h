// Two-phase-locking lock manager.
//
// Plays two roles in the reproduction:
//  1. Substrate for §8's per-request local ACID transactions: every
//     promise operation (grant / action+check / release / update) runs
//     under short locks so the promise table and resource state stay
//     mutually consistent.
//  2. Baseline for §9: "traditional lock-based isolation" that holds
//     locks across a long-running operation. The deadlock counters it
//     exposes are what experiment E6 measures against the paper's claim
//     that promises reject immediately instead of blocking.

#ifndef PROMISES_TXN_LOCK_MANAGER_H_
#define PROMISES_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"

namespace promises {

/// Lock compatibility: any number of kShared holders, or one kExclusive.
enum class LockMode { kShared, kExclusive };

/// Counters exposed for experiment E6.
struct LockManagerStats {
  uint64_t acquisitions = 0;
  uint64_t waits = 0;        ///< Requests that had to block.
  uint64_t deadlocks = 0;    ///< Requests aborted by cycle detection.
  uint64_t timeouts = 0;     ///< Requests aborted by wait budget.
  uint64_t upgrades = 0;     ///< S->X upgrades performed.
};

/// Table-driven lock manager with wait-for-graph deadlock detection.
///
/// Keys are opaque strings; the resource layer uses "pool:<class>" and
/// "inst:<class>/<id>" keys, the promise manager locks "promise-table".
/// Deadlock detection runs at block time: if adding the waiter's
/// wait-for edges closes a cycle the request is refused with kDeadlock,
/// implementing immediate-abort rather than victim selection (the
/// simplest policy; the caller rolls back and may retry).
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `key` in `mode` for `txn`, blocking up to `timeout_ms`
  /// (-1 means wait forever). Re-entrant: a txn already holding the key
  /// in the same or stronger mode succeeds immediately; holding kShared
  /// and requesting kExclusive performs an upgrade.
  Status Acquire(TxnId txn, const std::string& key, LockMode mode,
                 DurationMs timeout_ms = -1);

  /// Releases one key held by `txn`. Missing locks are ignored.
  void Release(TxnId txn, const std::string& key);

  /// Releases everything `txn` holds (commit / rollback).
  void ReleaseAll(TxnId txn);

  /// Number of keys currently held by `txn`.
  size_t HeldCount(TxnId txn) const;

  /// True if `txn` holds `key` in a mode at least as strong as `mode`.
  bool Holds(TxnId txn, const std::string& key, LockMode mode) const;

  LockManagerStats stats() const;
  void ResetStats();

 private:
  struct LockState {
    // Holders and their modes. Multiple kShared or exactly one
    // kExclusive entry.
    std::map<TxnId, LockMode> holders;
    std::condition_variable cv;
    int waiters = 0;
  };

  bool CompatibleLocked(const LockState& ls, TxnId txn, LockMode mode) const;
  // True if txn can reach any of `targets` through wait-for edges.
  bool WouldDeadlockLocked(TxnId waiter, const std::string& key,
                           LockMode mode);

  mutable std::mutex mu_;
  std::unordered_map<std::string, LockState> table_;
  // txn -> key it is currently blocked on (at most one per thread/txn).
  std::unordered_map<TxnId, std::string> waiting_on_;
  LockManagerStats stats_;
};

}  // namespace promises

#endif  // PROMISES_TXN_LOCK_MANAGER_H_
