// Undo-log based local transactions.
//
// §8: "The solution we adopted here was to wrap each promise operation
// in a transaction... committed or rolled back just before the result
// of the request is returned to the client. Note that the transaction
// is local to a trust domain and short-duration."
//
// A Transaction accumulates undo closures as state is mutated; Commit
// discards them, Rollback replays them in reverse order. Locks taken on
// behalf of the transaction are released at completion (strict 2PL).

#ifndef PROMISES_TXN_TRANSACTION_H_
#define PROMISES_TXN_TRANSACTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "txn/lock_manager.h"

namespace promises {

enum class TxnState { kActive, kCommitted, kAborted };

/// One unit of atomic work against the resource store + promise table.
class Transaction {
 public:
  Transaction(TxnId id, LockManager* locks, DurationMs lock_timeout_ms)
      : id_(id), locks_(locks), lock_timeout_ms_(lock_timeout_ms) {}
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }

  /// Acquires `key` in `mode` through the owning LockManager. Locks are
  /// held until Commit/Rollback (strict two-phase locking).
  ///
  /// Pre-serialized transactions (see BeginPreSerialized) never touch
  /// the LockManager: an external scheduler has already guaranteed this
  /// transaction runs without conflicting concurrent access, so Lock
  /// only records the key locally (for write-set verification) and
  /// returns OK.
  Status Lock(const std::string& key, LockMode mode);

  /// True when the transaction runs under an external serialization
  /// guarantee and bypasses the LockManager entirely.
  bool pre_serialized() const { return pre_serialized_; }

  /// Keys Lock()ed in kExclusive mode. For ordinary transactions this
  /// mirrors LockManager::ExclusiveKeysOf; for pre-serialized ones it
  /// is the only record of the write set.
  const std::vector<std::string>& ExclusiveKeys() const {
    return exclusive_keys_;
  }

  /// Registers a closure that reverses a mutation just performed.
  /// Closures run in reverse registration order on Rollback.
  void PushUndo(std::function<void()> undo);

  /// Number of undo entries recorded so far; used with RollbackTo for
  /// partial rollback (statement-level atomicity inside an operation).
  size_t UndoDepth() const { return undo_log_.size(); }

  /// Rolls back mutations recorded after `depth` without ending the
  /// transaction. Locks are retained.
  void RollbackTo(size_t depth);

  /// Makes all mutations durable (drops the undo log) and releases
  /// locks. Idempotent once the transaction is complete.
  Status Commit();

  /// Reverses all mutations and releases locks.
  Status Rollback();

 private:
  friend class TransactionManager;

  TxnId id_;
  LockManager* locks_;
  DurationMs lock_timeout_ms_;
  TxnState state_ = TxnState::kActive;
  bool pre_serialized_ = false;
  std::vector<std::function<void()>> undo_log_;
  std::vector<std::string> exclusive_keys_;
};

/// Issues transaction ids and constructs transactions bound to a shared
/// LockManager.
class TransactionManager {
 public:
  explicit TransactionManager(DurationMs lock_timeout_ms = 5000)
      : lock_timeout_ms_(lock_timeout_ms) {}

  /// Starts a new transaction. The caller owns the returned object and
  /// must Commit or Rollback it (the destructor rolls back as a
  /// safety net).
  std::unique_ptr<Transaction> Begin();

  /// Starts a transaction that bypasses the LockManager. The caller
  /// asserts an external serialization guarantee: nothing else touches
  /// the keys this transaction will Lock() while it is active (epoch
  /// partitions provide exactly that). Lock() records exclusive keys
  /// locally and always succeeds; undo/commit semantics are unchanged.
  std::unique_ptr<Transaction> BeginPreSerialized();

  LockManager& lock_manager() { return locks_; }
  const LockManager& lock_manager() const { return locks_; }

  uint64_t begun() const { return begun_.load(std::memory_order_relaxed); }

 private:
  LockManager locks_;
  IdGenerator<TxnId> ids_;
  DurationMs lock_timeout_ms_;
  std::atomic<uint64_t> begun_{0};
};

}  // namespace promises

#endif  // PROMISES_TXN_TRANSACTION_H_
