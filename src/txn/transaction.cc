#include "txn/transaction.h"

#include <memory>

namespace promises {

Transaction::~Transaction() {
  if (state_ == TxnState::kActive) {
    // Safety net: an abandoned transaction must not leave partial state
    // or stranded locks behind.
    Rollback();
  }
}

Status Transaction::Lock(const std::string& key, LockMode mode) {
  if (!active()) {
    return Status::FailedPrecondition("transaction is not active");
  }
  if (pre_serialized_) {
    // The epoch scheduler already serialized this transaction against
    // every conflicting one; only the write set needs recording.
    if (mode == LockMode::kExclusive) {
      exclusive_keys_.push_back(key);
    }
    return Status::OK();
  }
  Status s = locks_->Acquire(id_, key, mode, lock_timeout_ms_);
  if (s.ok() && mode == LockMode::kExclusive) {
    exclusive_keys_.push_back(key);
  }
  return s;
}

void Transaction::PushUndo(std::function<void()> undo) {
  undo_log_.push_back(std::move(undo));
}

void Transaction::RollbackTo(size_t depth) {
  while (undo_log_.size() > depth) {
    undo_log_.back()();
    undo_log_.pop_back();
  }
}

Status Transaction::Commit() {
  if (!active()) {
    return Status::FailedPrecondition("transaction already completed");
  }
  undo_log_.clear();
  state_ = TxnState::kCommitted;
  if (!pre_serialized_) {
    locks_->ReleaseAll(id_);
  }
  return Status::OK();
}

Status Transaction::Rollback() {
  if (!active()) {
    return Status::FailedPrecondition("transaction already completed");
  }
  RollbackTo(0);
  state_ = TxnState::kAborted;
  if (!pre_serialized_) {
    locks_->ReleaseAll(id_);
  }
  return Status::OK();
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  begun_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<Transaction>(ids_.Next(), &locks_,
                                       lock_timeout_ms_);
}

std::unique_ptr<Transaction> TransactionManager::BeginPreSerialized() {
  begun_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(ids_.Next(), &locks_,
                                           lock_timeout_ms_);
  txn->pre_serialized_ = true;
  return txn;
}

}  // namespace promises
