// Dapper-style end-to-end request tracing.
//
// Every client call starts a trace: a 128-bit trace id shared by every
// piece of work done on behalf of that request, plus a tree of spans
// (span id / parent span id) marking where the time went. The context
// rides the protocol envelope as a <trace> header element, so it
// crosses the in-process Transport, the TCP wire, the promise
// manager's Handle path and the resource layer exactly like the
// payload does; inside one thread it also propagates ambiently (a
// thread-local span stack), so deep layers — the 2PL lock manager, the
// oplog, the resource manager — can attach child spans without
// signature changes.
//
// Cost model: sampling is decided once, at the root (StartTrace). An
// unsampled context makes every downstream ScopedSpan a no-op — no
// clock reads, no buffer writes, just a flag test — so tracing at
// sampling=0 is cheap enough to leave compiled into the hot path (the
// bench_scaling overhead gate holds it under 2%). Sampled spans go to
// a lock-free per-thread SPSC ring; a bounded collector harvests the
// rings, counts drops instead of growing, and feeds the JSON/text
// exporters and the per-phase latency aggregation the benches emit.

#ifndef PROMISES_OBS_TRACE_H_
#define PROMISES_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace promises {

/// Propagated per-request context: who this work belongs to (trace id)
/// and which span it is nested under. Copied by value across hops.
struct TraceContext {
  uint64_t trace_hi = 0;  ///< 128-bit trace id, high half.
  uint64_t trace_lo = 0;  ///< 128-bit trace id, low half.
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
  /// 32 lowercase hex chars (no separator).
  std::string TraceIdHex() const;
};

/// Fixed-point hex helpers for the wire format (<trace> attributes).
std::string FormatHex64(uint64_t v);
/// Parses up to 16 hex chars; false on empty/invalid input.
bool ParseHex64(std::string_view s, uint64_t* out);
/// Parses a 32-hex-char 128-bit trace id; false on bad input.
bool ParseTraceIdHex(std::string_view s, uint64_t* hi, uint64_t* lo);

/// One completed span. Durations are steady-clock microseconds.
struct Span {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;    ///< Phase tag: "queue-wait", "lock-acquire", ...
  std::string status;  ///< "ok" or a terminal cause ("shed-deadline", ...).
  int64_t start_us = 0;
  int64_t end_us = 0;

  int64_t duration_us() const { return end_us - start_us; }
};

/// Single-producer/single-consumer bounded span ring. The owning
/// thread pushes; the collector (any thread, serialized by its own
/// mutex) drains. Overflow drops the span and bumps a counter —
/// tracing never blocks or allocates unboundedly on the hot path.
class SpanBuffer {
 public:
  explicit SpanBuffer(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        slots_(capacity == 0 ? 1 : capacity) {}

  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  /// Producer side. Returns false (and counts a drop) when full.
  bool TryPush(Span span) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head % capacity_] = std::move(span);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: moves every pending span into `out`.
  size_t DrainInto(std::vector<Span>* out) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    for (uint64_t i = tail; i != head; ++i) {
      out->push_back(std::move(slots_[i % capacity_]));
    }
    tail_.store(head, std::memory_order_release);
    return static_cast<size_t>(head - tail);
  }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  std::vector<Span> slots_;
  std::atomic<uint64_t> head_{0};  ///< Next write (producer-owned).
  std::atomic<uint64_t> tail_{0};  ///< Next read (consumer-owned).
  std::atomic<uint64_t> dropped_{0};
};

/// Process-wide bounded span sink. Each recording thread owns one
/// SpanBuffer (registered on first use, never freed — thread_local
/// pointers into the registry must stay valid for the process
/// lifetime); Drain() harvests every ring into a bounded store.
class SpanCollector {
 public:
  static constexpr size_t kDefaultPerThreadCapacity = 4096;
  static constexpr size_t kDefaultMaxSpans = 1 << 16;

  static SpanCollector& Global();

  /// The calling thread's ring (registers it on first use).
  SpanBuffer* BufferForThisThread();

  /// Harvests all rings into the bounded store and returns a copy of
  /// everything collected so far (oldest first).
  std::vector<Span> Collected();

  /// Harvests and returns everything, clearing the store.
  std::vector<Span> Drain();

  /// Store bound: spans beyond it are dropped (counted). Applies on
  /// the next harvest.
  void set_max_spans(size_t n);

  /// Spans lost to ring overflow plus store overflow.
  uint64_t dropped() const;

  size_t collected_size();

  /// Clears the store and the drop counters (rings stay registered).
  void Reset();

 private:
  void HarvestLocked();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanBuffer>> buffers_;
  std::vector<Span> store_;
  size_t max_spans_ = kDefaultMaxSpans;
  uint64_t store_dropped_ = 0;
  uint64_t drained_ring_drops_ = 0;
};

/// Sampling decisions and id generation. One global instance; the
/// sampling rate is the only mutable knob and is read with a relaxed
/// atomic load on every root decision.
class Tracer {
 public:
  static Tracer& Global();

  /// Fraction of root calls that are traced, in [0, 1]. 0 disables.
  void set_sampling(double rate);
  double sampling() const;

  /// Roots a new trace. When the sampling decision says no, the
  /// returned context is invalid/unsampled and every span under it is
  /// a no-op.
  TraceContext StartTrace();

  /// Child context: same trace, fresh span id, parented under `parent`.
  static TraceContext ChildOf(const TraceContext& parent);

  /// Fresh span id (thread-local generator, never 0).
  static uint64_t NextSpanId();

 private:
  std::atomic<double> sampling_{0.0};
};

/// Current ambient trace context of this thread (innermost live
/// ScopedSpan), or nullptr. Lower layers parent off this without
/// plumbing the context through call signatures.
const TraceContext* CurrentTraceContext();

/// Records a fully-built span into the global collector (used for
/// spans whose lifetime does not fit a scope, e.g. queue-wait measured
/// across threads). No-op unless `span`'s trace was sampled — callers
/// check the context's sampled flag.
void RecordSpan(Span span);

/// Steady-clock microseconds (span timestamps).
int64_t TraceNowUs();

/// RAII span. Starts on construction, records on destruction. The
/// span's own context becomes this thread's ambient context for the
/// duration, so nested ScopedSpans chain automatically.
class ScopedSpan {
 public:
  /// Child of `parent` (explicit cross-thread / cross-hop parenting).
  ScopedSpan(const TraceContext& parent, std::string_view name);

  /// Child of the thread's ambient context; no-op when there is none
  /// or it is unsampled.
  explicit ScopedSpan(std::string_view name);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Terminal status tag ("ok" when never set).
  void set_status(std::string_view status);

  /// This span's context (parent for explicit children).
  const TraceContext& context() const { return ctx_; }
  bool sampled() const { return ctx_.sampled; }

 private:
  void Begin(const TraceContext* parent, std::string_view name);

  TraceContext ctx_;
  const TraceContext* prev_ambient_ = nullptr;
  std::string name_;
  std::string status_;
  int64_t start_us_ = 0;
};

// ---- Exporters -------------------------------------------------------

/// All spans as one JSON document: {"spans":[{...}, ...]}.
std::string ExportSpansJson(const std::vector<Span>& spans);

/// Human-readable span forest: one line per span, children indented
/// under their parent, ordered by start time.
std::string ExportSpansText(const std::vector<Span>& spans);

/// Per-phase (span name) latency aggregation.
struct PhaseStat {
  std::string name;
  uint64_t count = 0;
  double mean_us = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
};

std::vector<PhaseStat> AggregatePhases(const std::vector<Span>& spans);

/// Formatted phase-latency table (one row per phase).
std::string FormatPhaseTable(const std::vector<PhaseStat>& phases);

/// Phases as a JSON object: {"queue-wait": {"count":..,"mean_us":..,
/// "p50_us":..,"p99_us":..}, ...} — embedded into BENCH_*.json.
std::string PhaseLatencyJson(const std::vector<PhaseStat>& phases,
                             const std::string& indent);

}  // namespace promises

#endif  // PROMISES_OBS_TRACE_H_
