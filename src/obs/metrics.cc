#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace promises {
namespace {

std::vector<int64_t> DefaultBoundsUs() {
  // 1-2-5 per decade from 1us to 5s; +inf is implicit.
  return {1,      2,      5,      10,      20,      50,      100,
          200,    500,    1000,   2000,    5000,    10000,   20000,
          50000,  100000, 200000, 500000,  1000000, 2000000, 5000000};
}

std::atomic<size_t> next_shard_slot{0};

}  // namespace

size_t Counter::ShardIndex() {
  // One slot per thread, assigned round-robin on first use; threads
  // beyond kShards share slots, which only costs contention, never
  // correctness.
  thread_local size_t slot =
      next_shard_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

// ---- Histogram -------------------------------------------------------

Histogram::Histogram() : Histogram(DefaultBoundsUs()) {}

Histogram::Histogram(std::vector<int64_t> bucket_bounds_us)
    : bounds_(std::move(bucket_bounds_us)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

void Histogram::Observe(int64_t value_us) {
  // Prometheus le semantics: first bucket whose bound >= value;
  // anything above every bound lands in the trailing +inf slot.
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value_us) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_us, std::memory_order_relaxed);
}

uint64_t Histogram::CumulativeCount(size_t bucket_index) const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bucket_index && i < buckets_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::MeanUs() const {
  uint64_t n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum_us()) / static_cast<double>(n);
}

int64_t Histogram::ApproxPercentileUs(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  double target = p / 100.0 * static_cast<double>(n);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative + in_bucket) >= target &&
        in_bucket > 0) {
      int64_t lo = i == 0 ? 0 : bounds_[i - 1];
      // +inf bucket: report its lower bound — no upper edge to
      // interpolate toward.
      if (i == bounds_.size()) return lo;
      int64_t hi = bounds_[i];
      double frac = (target - static_cast<double>(cumulative)) /
                    static_cast<double>(in_bucket);
      return lo + static_cast<int64_t>(
                      frac * static_cast<double>(hi - lo));
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

void Histogram::ResetForTesting() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---- LatencyRecorder -------------------------------------------------

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (&other == this || other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double LatencyRecorder::MeanUs() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (int64_t s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

int64_t LatencyRecorder::PercentileUs(double p) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t idx = static_cast<size_t>(std::llround(rank));
  idx = std::min(idx, samples_.size() - 1);
  return samples_[idx];
}

void LatencyRecorder::PublishTo(Histogram* histogram) const {
  for (int64_t s : samples_) histogram->Observe(s);
}

// ---- Snapshot --------------------------------------------------------

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

// ---- MetricsRegistry -------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, std::vector<int64_t> bucket_bounds_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bucket_bounds_us));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.bounds_us = histogram->bounds();
    data.cumulative.reserve(data.bounds_us.size() + 1);
    for (size_t i = 0; i <= data.bounds_us.size(); ++i) {
      data.cumulative.push_back(histogram->CumulativeCount(i));
    }
    data.count = histogram->count();
    data.sum_us = histogram->sum_us();
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

std::string MetricsRegistry::FormatPrometheus() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    for (size_t i = 0; i < h.bounds_us.size(); ++i) {
      out += h.name + "_bucket{le=\"" + std::to_string(h.bounds_us[i]) +
             "\"} " + std::to_string(h.cumulative[i]) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " +
           std::to_string(h.cumulative.back()) + "\n";
    out += h.name + "_sum " + std::to_string(h.sum_us) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTesting();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTesting();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTesting();
}

}  // namespace promises
