// Unified process-wide metrics: counters, gauges and fixed-bucket
// histograms behind one registry with a Prometheus-text snapshot
// surface.
//
// Hot-path cost is a single atomic op: counters are sharded across
// cache-line-aligned slots (a thread_local slot index picks the
// shard, so concurrent writers do not bounce one cache line), gauges
// are a single atomic, and histograms do one relaxed fetch_add on the
// bucket plus sum/count. Instruments are registered by name once
// (call sites cache the returned pointer in a function-local static);
// instruments live for the process lifetime, so cached pointers never
// dangle even across ResetForTesting(), which zeroes values but frees
// nothing.
//
// LatencyRecorder also lives here now (it started in sim/metrics):
// it keeps exact samples for the benches' precise percentiles, and
// PublishTo() folds a recorder into a registry histogram so workload
// latencies appear in the same FormatPrometheus() output as every
// other series.

#ifndef PROMISES_OBS_METRICS_H_
#define PROMISES_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace promises {

/// Monotone counter, sharded to keep concurrent increments off one
/// cache line.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Increment(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void ResetForTesting() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// Up/down instantaneous value (queue depths, in-flight counts).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTesting() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram (default bounds: 1us..5s, roughly 1-2-5 per
/// decade, plus +inf). Observe is wait-free: one bucket fetch_add plus
/// sum/count.
class Histogram {
 public:
  Histogram();
  explicit Histogram(std::vector<int64_t> bucket_bounds_us);

  void Observe(int64_t value_us);

  /// Upper bounds, exclusive of the implicit +inf bucket.
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Cumulative count at or below bounds()[i]; index bounds().size()
  /// is the +inf bucket (== count()).
  uint64_t CumulativeCount(size_t bucket_index) const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum_us() const { return sum_.load(std::memory_order_relaxed); }
  double MeanUs() const;
  /// Percentile estimate by linear interpolation inside the bucket;
  /// p in [0,100]. Exact values need LatencyRecorder.
  int64_t ApproxPercentileUs(double p) const;

  void ResetForTesting();

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Exact-sample latency recorder. Not thread-safe: record per worker,
/// then Merge into one recorder on the coordinating thread.
class LatencyRecorder {
 public:
  void Record(int64_t us) {
    samples_.push_back(us);
    // A percentile query may have left the vector flagged sorted; the
    // appended sample invalidates that.
    sorted_ = false;
  }

  /// Appends other's samples. Merging an empty recorder is a no-op
  /// that preserves the destination's sorted_ flag — the historical
  /// bug was clearing it here, forcing a useless re-sort on the next
  /// percentile query after empty-source merges interleaved with
  /// reads. Self-merge is also a no-op.
  void Merge(const LatencyRecorder& other);

  size_t count() const { return samples_.size(); }
  double MeanUs() const;
  /// p in [0,100]; sorts on demand.
  int64_t PercentileUs(double p) const;

  /// Folds every sample into a registry histogram.
  void PublishTo(Histogram* histogram) const;

  /// Test hook: whether the sample vector is currently flagged sorted.
  bool sorted_for_testing() const { return sorted_; }

 private:
  mutable std::vector<int64_t> samples_;
  mutable bool sorted_ = false;
};

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::vector<int64_t> bounds_us;
    std::vector<uint64_t> cumulative;  ///< Per bound, then +inf last.
    uint64_t count = 0;
    int64_t sum_us = 0;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;

  uint64_t CounterValue(const std::string& name) const;
};

/// Name -> instrument registry. Get* registers on first use and
/// always returns the same pointer for a name; instruments are never
/// freed. Names follow Prometheus conventions
/// (promises_transport_messages_total, ...).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bucket_bounds_us);

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format (counters as _total, gauges,
  /// histograms as _bucket/_sum/_count with le labels).
  std::string FormatPrometheus() const;

  /// Zeroes every instrument's value; pointers stay valid.
  void ResetForTesting();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace promises

#endif  // PROMISES_OBS_METRICS_H_
