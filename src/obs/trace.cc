#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <sstream>

namespace promises {
namespace {

// Thread-local producer state. The buffer pointer is registered with
// the global collector on first use and stays valid forever (the
// collector never frees buffers), so a detached thread exiting is
// safe: its ring simply stops receiving pushes.
thread_local SpanBuffer* tl_span_buffer = nullptr;
thread_local const TraceContext* tl_ambient_ctx = nullptr;

uint64_t MixSeed() {
  // Per-thread seed: address entropy + a global counter + random_device
  // where available. Ids only need uniqueness, not unpredictability.
  static std::atomic<uint64_t> counter{0x9e3779b97f4a7c15ULL};
  uint64_t z = counter.fetch_add(0x9e3779b97f4a7c15ULL,
                                 std::memory_order_relaxed);
  z ^= reinterpret_cast<uintptr_t>(&tl_span_buffer);
  z ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// SplitMix64 step — fast, full-period, fine for id generation.
uint64_t NextRandom64() {
  thread_local uint64_t state = MixSeed();
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string FormatHex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

bool ParseHex64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

bool ParseTraceIdHex(std::string_view s, uint64_t* hi, uint64_t* lo) {
  if (s.size() != 32) return false;
  return ParseHex64(s.substr(0, 16), hi) && ParseHex64(s.substr(16), lo);
}

std::string TraceContext::TraceIdHex() const {
  return FormatHex64(trace_hi) + FormatHex64(trace_lo);
}

// ---- SpanCollector ---------------------------------------------------

SpanCollector& SpanCollector::Global() {
  static SpanCollector* collector = new SpanCollector();
  return *collector;
}

SpanBuffer* SpanCollector::BufferForThisThread() {
  if (tl_span_buffer == nullptr) {
    auto buffer = std::make_unique<SpanBuffer>(kDefaultPerThreadCapacity);
    tl_span_buffer = buffer.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(buffer));
  }
  return tl_span_buffer;
}

void SpanCollector::HarvestLocked() {
  std::vector<Span> pending;
  for (auto& buffer : buffers_) {
    buffer->DrainInto(&pending);
  }
  for (auto& span : pending) {
    if (store_.size() >= max_spans_) {
      ++store_dropped_;
    } else {
      store_.push_back(std::move(span));
    }
  }
}

std::vector<Span> SpanCollector::Collected() {
  std::lock_guard<std::mutex> lock(mu_);
  HarvestLocked();
  return store_;
}

std::vector<Span> SpanCollector::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  HarvestLocked();
  std::vector<Span> out;
  out.swap(store_);
  return out;
}

void SpanCollector::set_max_spans(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_spans_ = n == 0 ? 1 : n;
}

uint64_t SpanCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t ring_drops = drained_ring_drops_;
  for (const auto& buffer : buffers_) {
    ring_drops += buffer->dropped();
  }
  return ring_drops + store_dropped_;
}

size_t SpanCollector::collected_size() {
  std::lock_guard<std::mutex> lock(mu_);
  HarvestLocked();
  return store_.size();
}

void SpanCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Drain the rings so stale spans from a previous run do not leak
  // into the next one; buffers themselves stay registered because
  // thread_local pointers still reference them.
  std::vector<Span> discard;
  for (auto& buffer : buffers_) {
    buffer->DrainInto(&discard);
  }
  store_.clear();
  store_dropped_ = 0;
  // Ring drop counters cannot be reset without racing producers, so
  // snapshot them as a baseline instead of zeroing.
  drained_ring_drops_ = 0;
  uint64_t ring_drops = 0;
  for (const auto& buffer : buffers_) {
    ring_drops += buffer->dropped();
  }
  drained_ring_drops_ = -ring_drops;  // dropped() adds them back.
}

// ---- Tracer ----------------------------------------------------------

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_sampling(double rate) {
  if (rate < 0) rate = 0;
  if (rate > 1) rate = 1;
  sampling_.store(rate, std::memory_order_relaxed);
}

double Tracer::sampling() const {
  return sampling_.load(std::memory_order_relaxed);
}

TraceContext Tracer::StartTrace() {
  double rate = sampling_.load(std::memory_order_relaxed);
  if (rate <= 0) return TraceContext{};
  if (rate < 1) {
    // 53-bit uniform in [0,1) from the id generator.
    double u = static_cast<double>(NextRandom64() >> 11) * 0x1.0p-53;
    if (u >= rate) return TraceContext{};
  }
  TraceContext ctx;
  ctx.trace_hi = NextRandom64();
  ctx.trace_lo = NextRandom64() | 1;  // Never all-zero.
  ctx.span_id = NextSpanId();
  ctx.parent_span_id = 0;
  ctx.sampled = true;
  return ctx;
}

TraceContext Tracer::ChildOf(const TraceContext& parent) {
  TraceContext ctx = parent;
  ctx.parent_span_id = parent.span_id;
  ctx.span_id = NextSpanId();
  return ctx;
}

uint64_t Tracer::NextSpanId() {
  uint64_t id = NextRandom64();
  return id == 0 ? 1 : id;
}

// ---- Ambient context + recording ------------------------------------

const TraceContext* CurrentTraceContext() { return tl_ambient_ctx; }

void RecordSpan(Span span) {
  SpanCollector::Global().BufferForThisThread()->TryPush(std::move(span));
}

int64_t TraceNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScopedSpan::ScopedSpan(const TraceContext& parent, std::string_view name) {
  Begin(&parent, name);
}

ScopedSpan::ScopedSpan(std::string_view name) {
  Begin(tl_ambient_ctx, name);
}

void ScopedSpan::Begin(const TraceContext* parent, std::string_view name) {
  if (parent == nullptr || !parent->sampled) {
    return;  // ctx_ stays unsampled; destructor is a no-op.
  }
  ctx_ = Tracer::ChildOf(*parent);
  name_.assign(name);
  start_us_ = TraceNowUs();
  prev_ambient_ = tl_ambient_ctx;
  tl_ambient_ctx = &ctx_;
}

ScopedSpan::~ScopedSpan() {
  if (!ctx_.sampled) return;
  tl_ambient_ctx = prev_ambient_;
  Span span;
  span.trace_hi = ctx_.trace_hi;
  span.trace_lo = ctx_.trace_lo;
  span.span_id = ctx_.span_id;
  span.parent_span_id = ctx_.parent_span_id;
  span.name = std::move(name_);
  span.status = status_.empty() ? "ok" : std::move(status_);
  span.start_us = start_us_;
  span.end_us = TraceNowUs();
  RecordSpan(std::move(span));
}

void ScopedSpan::set_status(std::string_view status) {
  if (!ctx_.sampled) return;
  status_.assign(status);
}

// ---- Exporters -------------------------------------------------------

std::string ExportSpansJson(const std::vector<Span>& spans) {
  std::string out = "{\"spans\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"trace_id\":\"";
    out += FormatHex64(s.trace_hi) + FormatHex64(s.trace_lo);
    out += "\",\"span_id\":\"" + FormatHex64(s.span_id);
    out += "\",\"parent_span_id\":\"" + FormatHex64(s.parent_span_id);
    out += "\",\"name\":\"";
    AppendJsonEscaped(&out, s.name);
    out += "\",\"status\":\"";
    AppendJsonEscaped(&out, s.status);
    out += "\",\"start_us\":" + std::to_string(s.start_us);
    out += ",\"duration_us\":" + std::to_string(s.duration_us());
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string ExportSpansText(const std::vector<Span>& spans) {
  // Index children under parents; roots are spans whose parent is 0 or
  // absent from this batch (e.g. the parent overflowed a ring).
  std::map<uint64_t, std::vector<size_t>> children;
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) {
    by_id[spans[i].span_id] = i;
  }
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    uint64_t parent = spans[i].parent_span_id;
    if (parent != 0 && by_id.count(parent)) {
      children[parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  auto by_start = [&spans](size_t a, size_t b) {
    return spans[a].start_us < spans[b].start_us;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(), by_start);
  }

  std::string out;
  // Iterative DFS so a deep (or cyclic, if ids ever collide) forest
  // cannot blow the stack.
  std::vector<std::pair<size_t, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  size_t emitted = 0;
  while (!stack.empty() && emitted <= spans.size()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    ++emitted;
    const Span& s = spans[idx];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += s.name;
    out += " [" + std::to_string(s.duration_us()) + "us]";
    if (s.status != "ok") out += " status=" + s.status;
    out += " trace=" + FormatHex64(s.trace_hi) + FormatHex64(s.trace_lo);
    out += " span=" + FormatHex64(s.span_id);
    out += "\n";
    auto kids = children.find(s.span_id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.emplace_back(*it, depth + 1);
      }
    }
  }
  return out;
}

std::vector<PhaseStat> AggregatePhases(const std::vector<Span>& spans) {
  std::map<std::string, std::vector<int64_t>> by_phase;
  for (const Span& s : spans) {
    by_phase[s.name].push_back(s.duration_us());
  }
  std::vector<PhaseStat> out;
  out.reserve(by_phase.size());
  for (auto& [name, durations] : by_phase) {
    std::sort(durations.begin(), durations.end());
    PhaseStat stat;
    stat.name = name;
    stat.count = durations.size();
    double sum = 0;
    for (int64_t d : durations) sum += static_cast<double>(d);
    stat.mean_us = sum / static_cast<double>(durations.size());
    auto pct = [&durations](double p) {
      size_t idx = static_cast<size_t>(p * static_cast<double>(
                                               durations.size() - 1));
      return durations[idx];
    };
    stat.p50_us = pct(0.50);
    stat.p99_us = pct(0.99);
    out.push_back(std::move(stat));
  }
  return out;
}

std::string FormatPhaseTable(const std::vector<PhaseStat>& phases) {
  std::ostringstream out;
  out << "phase                  count      mean_us      p50_us      p99_us\n";
  for (const PhaseStat& p : phases) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-20s %8llu %12.1f %11lld %11lld\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.count),
                  p.mean_us, static_cast<long long>(p.p50_us),
                  static_cast<long long>(p.p99_us));
    out << line;
  }
  return out.str();
}

std::string PhaseLatencyJson(const std::vector<PhaseStat>& phases,
                             const std::string& indent) {
  std::string out = "{";
  bool first = true;
  for (const PhaseStat& p : phases) {
    if (!first) out += ",";
    first = false;
    out += "\n" + indent + "  \"";
    AppendJsonEscaped(&out, p.name);
    out += "\": {\"count\": " + std::to_string(p.count);
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.1f", p.mean_us);
    out += std::string(", \"mean_us\": ") + mean;
    out += ", \"p50_us\": " + std::to_string(p.p50_us);
    out += ", \"p99_us\": " + std::to_string(p.p99_us);
    out += "}";
  }
  out += phases.empty() ? "}" : "\n" + indent + "}";
  return out;
}

}  // namespace promises
