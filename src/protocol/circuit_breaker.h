// Client-side circuit breaker layered over the retry policy.
//
// A RetryPolicy alone amplifies load against a saturated server: every
// shed reply triggers another attempt. The breaker turns a streak of
// overload signals (kResourceExhausted sheds, kUnavailable transport
// failures) into local fast-failures, so a struggling server sees the
// client's traffic drop to a trickle of probes until it recovers —
// Promise-theoretically, the client stops asking for commitments the
// service has declined to make.
//
// State machine (classic three-state):
//
//   closed ──(threshold consecutive overload failures)──> open
//   open   ──(cooldown elapsed, next Admit)────────────> half-open
//   half-open ──(probe succeeds × half_open_probes)────> closed
//   half-open ──(probe fails)──────────────────────────> open
//
// While open, Admit fails fast with kUnavailable carrying a
// retry-after hint equal to the remaining cooldown, which the retry
// policy's hint-flooring turns into a correctly-paced wait. Cooldowns
// are jittered from a seeded Rng (concurrent clients decorrelate their
// probes) and all time flows through an injected Clock, so breaker
// schedules are deterministic under a SimulatedClock.

#ifndef PROMISES_PROTOCOL_CIRCUIT_BREAKER_H_
#define PROMISES_PROTOCOL_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string_view>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace promises {

struct CircuitBreakerConfig {
  /// Consecutive overload failures that trip the breaker.
  int failure_threshold = 5;
  /// How long the breaker stays open before allowing a probe.
  DurationMs open_cooldown_ms = 1'000;
  /// Cooldown is multiplied by a factor from [1, 1 + jitter].
  double cooldown_jitter = 0.25;
  /// Consecutive probe successes required to close from half-open.
  int half_open_probes = 1;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view BreakerStateToString(BreakerState s);

struct CircuitBreakerStats {
  uint64_t admitted = 0;       ///< Attempts allowed through.
  uint64_t fast_failures = 0;  ///< Attempts refused locally while open.
  uint64_t opens = 0;          ///< closed/half-open -> open transitions.
  uint64_t half_opens = 0;     ///< open -> half-open transitions.
  uint64_t closes = 0;         ///< half-open -> closed transitions.
  BreakerState state = BreakerState::kClosed;
};

/// Thread-safe; all methods are O(1) under one mutex.
class CircuitBreaker {
 public:
  CircuitBreaker(CircuitBreakerConfig config, Clock* clock,
                 uint64_t seed = 42);

  /// Gate one attempt. OK = go ahead (and report the outcome via
  /// RecordSuccess/RecordFailure); kUnavailable = fail fast, the
  /// breaker is open (do NOT feed this status back into
  /// RecordFailure). In half-open, only `half_open_probes` concurrent
  /// probes are admitted; the rest fail fast.
  Status Admit();

  void RecordSuccess();

  /// Reports a failed attempt. Only overload-shaped codes
  /// (kResourceExhausted, kUnavailable) advance the trip streak; a
  /// retry-after hint in the status extends the cooldown so the
  /// breaker never probes earlier than the server asked.
  void RecordFailure(const Status& status);

  BreakerState state() const;
  CircuitBreakerStats stats() const;

 private:
  /// True for the failure codes that indicate overload/unreachability.
  static bool TripEligible(const Status& status);

  /// Transitions to open and arms the cooldown. Caller holds mu_.
  void TripLocked(Timestamp now, DurationMs min_cooldown_ms);

  CircuitBreakerConfig config_;
  Clock* clock_;

  mutable std::mutex mu_;
  Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  int probes_in_flight_ = 0;
  Timestamp reopen_at_ = 0;  ///< When open: earliest half-open probe.
  CircuitBreakerStats stats_;
};

}  // namespace promises

#endif  // PROMISES_PROTOCOL_CIRCUIT_BREAKER_H_
