// Client-side retry with deadline, capped exponential backoff and
// seeded jitter.
//
// A lost request and a lost reply are indistinguishable to the caller:
// both surface as kTimeout / kUnavailable / kDeadlineExceeded. Retrying
// is therefore only safe against a receiver that deduplicates — the
// promise manager keys its idempotency table on (sender, message id),
// so a retry MUST resend the identical envelope, message id included.
// PromiseClient and the chaos harness follow that rule; CallWithRetry
// itself just re-invokes the callable it was given.
//
// Overload composition: a server that sheds a request replies
// kResourceExhausted with a retry-after hint (encoded in the status
// message — see ResourceExhaustedWithRetryAfter). The retry loop backs
// off by max(hint, computed backoff), so a saturated server's "come
// back in N ms" is honored instead of amplified. All waiting flows
// through the policy's Clock, so chaos/bench runs under a
// SimulatedClock fast-forward instead of sleeping for real.

#ifndef PROMISES_PROTOCOL_RETRY_POLICY_H_
#define PROMISES_PROTOCOL_RETRY_POLICY_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace promises {

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 5;
  /// Overall budget across attempts and backoff waits; 0 = unbounded.
  DurationMs deadline_ms = 2'000;
  DurationMs initial_backoff_ms = 5;
  double backoff_multiplier = 2.0;
  DurationMs max_backoff_ms = 100;
  /// Backoff is multiplied by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter]; keeps concurrent retriers decorrelated
  /// while staying reproducible for a seeded Rng.
  double jitter = 0.25;
  /// Time source for the deadline and every backoff wait (non-owning;
  /// nullptr = real time). Inject a SimulatedClock to make retry
  /// schedules deterministic and instantaneous.
  Clock* clock = nullptr;
};

/// Transport-level failures worth retrying — including
/// kResourceExhausted: a shed made no state change and explicitly
/// invites a (paced) retry. Everything else (rejection, validation,
/// internal errors) is final.
bool IsRetryableStatus(const Status& status);

/// Backoff for the retry that follows failed attempt number `attempt`
/// (1-based), jittered via `rng`.
DurationMs BackoffForAttempt(const RetryPolicy& policy, int attempt,
                             Rng* rng);

/// A non-OK Status carrying a machine-readable retry-after hint:
/// "<reason> [retry-after-ms=N]". The bracketed suffix is the wire
/// contract RetryAfterHintMs parses back out, letting the hint ride
/// every Status-shaped path (in-process transport, wrapped errors).
Status StatusWithRetryAfter(StatusCode code, const std::string& reason,
                            DurationMs retry_after_ms);

/// StatusWithRetryAfter with kResourceExhausted — the shape a server
/// shed reply takes.
Status ResourceExhaustedWithRetryAfter(const std::string& reason,
                                       DurationMs retry_after_ms);

/// Retry-after hint embedded in `status`'s message, or 0 when absent.
DurationMs RetryAfterHintMs(const Status& status);

/// The policy's clock, falling back to a shared real-time clock.
Clock* RetryClock(const RetryPolicy& policy);

/// Invokes `call` until it succeeds, fails terminally, or the policy is
/// exhausted. `call` must be safe to re-invoke verbatim (same message
/// id — see the file comment). Each retry bumps *retries (when
/// non-null) and invokes `on_retry` (when provided) before re-calling.
/// On exhaustion, returns kDeadlineExceeded wrapping the last error.
template <typename F, typename OnRetry>
auto CallWithRetry(const RetryPolicy& policy, Rng* rng, F&& call,
                   uint64_t* retries, OnRetry&& on_retry)
    -> decltype(call()) {
  Clock* clock = RetryClock(policy);
  Timestamp deadline = policy.deadline_ms > 0
                           ? clock->Now() + policy.deadline_ms
                           : kTimestampMax;
  Status last;
  for (int attempt = 1;; ++attempt) {
    auto result = call();
    if (result.ok()) return result;
    last = result.status();
    if (!IsRetryableStatus(last)) return result;
    if (attempt >= policy.max_attempts) break;
    // A server-supplied retry-after hint floors the computed backoff:
    // retrying sooner than the server asked would re-shed for sure.
    DurationMs backoff = std::max(BackoffForAttempt(policy, attempt, rng),
                                  RetryAfterHintMs(last));
    if (clock->Now() + backoff >= deadline) break;
    clock->SleepFor(backoff);
    if (retries != nullptr) ++*retries;
    on_retry();
  }
  return Status::DeadlineExceeded("retries exhausted after " +
                                  std::to_string(policy.max_attempts) +
                                  " attempts; last error: " +
                                  last.ToString());
}

template <typename F>
auto CallWithRetry(const RetryPolicy& policy, Rng* rng, F&& call,
                   uint64_t* retries = nullptr) -> decltype(call()) {
  return CallWithRetry(policy, rng, std::forward<F>(call), retries, [] {});
}

}  // namespace promises

#endif  // PROMISES_PROTOCOL_RETRY_POLICY_H_
