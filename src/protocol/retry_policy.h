// Client-side retry with deadline, capped exponential backoff and
// seeded jitter.
//
// A lost request and a lost reply are indistinguishable to the caller:
// both surface as kTimeout / kUnavailable / kDeadlineExceeded. Retrying
// is therefore only safe against a receiver that deduplicates — the
// promise manager keys its idempotency table on (sender, message id),
// so a retry MUST resend the identical envelope, message id included.
// PromiseClient and the chaos harness follow that rule; CallWithRetry
// itself just re-invokes the callable it was given.

#ifndef PROMISES_PROTOCOL_RETRY_POLICY_H_
#define PROMISES_PROTOCOL_RETRY_POLICY_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace promises {

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 5;
  /// Overall budget across attempts and backoff waits; 0 = unbounded.
  DurationMs deadline_ms = 2'000;
  DurationMs initial_backoff_ms = 5;
  double backoff_multiplier = 2.0;
  DurationMs max_backoff_ms = 100;
  /// Backoff is multiplied by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter]; keeps concurrent retriers decorrelated
  /// while staying reproducible for a seeded Rng.
  double jitter = 0.25;
};

/// Transport-level failures worth retrying. Everything else (rejection,
/// validation, internal errors) is final.
bool IsRetryableStatus(const Status& status);

/// Backoff for the retry that follows failed attempt number `attempt`
/// (1-based), jittered via `rng`.
DurationMs BackoffForAttempt(const RetryPolicy& policy, int attempt,
                             Rng* rng);

/// Invokes `call` until it succeeds, fails terminally, or the policy is
/// exhausted. `call` must be safe to re-invoke verbatim (same message
/// id — see the file comment). Each retry bumps *retries (when
/// non-null) and invokes `on_retry` (when provided) before re-calling.
/// On exhaustion, returns kDeadlineExceeded wrapping the last error.
template <typename F, typename OnRetry>
auto CallWithRetry(const RetryPolicy& policy, Rng* rng, F&& call,
                   uint64_t* retries, OnRetry&& on_retry)
    -> decltype(call()) {
  auto started = std::chrono::steady_clock::now();
  auto deadline =
      started + std::chrono::milliseconds(policy.deadline_ms > 0
                                              ? policy.deadline_ms
                                              : (1LL << 40));
  Status last;
  for (int attempt = 1;; ++attempt) {
    auto result = call();
    if (result.ok()) return result;
    last = result.status();
    if (!IsRetryableStatus(last)) return result;
    if (attempt >= policy.max_attempts) break;
    DurationMs backoff = BackoffForAttempt(policy, attempt, rng);
    auto resume = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(backoff);
    if (resume >= deadline) break;
    std::this_thread::sleep_until(resume);
    if (retries != nullptr) ++*retries;
    on_retry();
  }
  return Status::DeadlineExceeded("retries exhausted after " +
                                  std::to_string(policy.max_attempts) +
                                  " attempts; last error: " +
                                  last.ToString());
}

template <typename F>
auto CallWithRetry(const RetryPolicy& policy, Rng* rng, F&& call,
                   uint64_t* retries = nullptr) -> decltype(call()) {
  return CallWithRetry(policy, rng, std::forward<F>(call), retries, [] {});
}

}  // namespace promises

#endif  // PROMISES_PROTOCOL_RETRY_POLICY_H_
