#include "protocol/fault_injector.h"

namespace promises {

FaultInjector::Decision FaultInjector::Decide() {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.decisions;
  Decision d;
  // One uniform draw against cumulative bands keeps the fault classes
  // mutually exclusive and the per-class rates exactly as configured.
  double r = rng_.UniformDouble();
  if (r < config_.crash) {
    d.action = FaultAction::kCrash;
    ++counters_.crashes;
  } else if (r < config_.crash + config_.drop_request) {
    d.action = FaultAction::kDropRequest;
    ++counters_.requests_dropped;
  } else if (r < config_.crash + config_.drop_request + config_.drop_reply) {
    d.action = FaultAction::kDropReply;
    ++counters_.replies_dropped;
  } else if (r < config_.crash + config_.drop_request + config_.drop_reply +
                     config_.duplicate) {
    d.action = FaultAction::kDuplicate;
    ++counters_.duplicates;
  }
  if (config_.delay_spike > 0 && rng_.Chance(config_.delay_spike)) {
    d.delay_us = config_.delay_spike_us;
    ++counters_.delay_spikes;
  }
  return d;
}

void FaultInjector::Reset(uint64_t seed) {
  std::lock_guard<std::mutex> lk(mu_);
  rng_ = Rng(seed);
  counters_ = FaultCounters{};
}

}  // namespace promises
