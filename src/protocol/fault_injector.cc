#include "protocol/fault_injector.h"

namespace promises {

FaultInjector::Decision FaultInjector::Decide() {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.decisions;
  Decision d;
  // One uniform draw against cumulative bands keeps the fault classes
  // mutually exclusive and the per-class rates exactly as configured.
  double r = rng_.UniformDouble();
  if (r < config_.crash) {
    d.action = FaultAction::kCrash;
    ++counters_.crashes;
  } else if (r < config_.crash + config_.drop_request) {
    d.action = FaultAction::kDropRequest;
    ++counters_.requests_dropped;
  } else if (r < config_.crash + config_.drop_request + config_.drop_reply) {
    d.action = FaultAction::kDropReply;
    ++counters_.replies_dropped;
  } else if (r < config_.crash + config_.drop_request + config_.drop_reply +
                     config_.duplicate) {
    d.action = FaultAction::kDuplicate;
    ++counters_.duplicates;
  }
  if (config_.delay_spike > 0 && rng_.Chance(config_.delay_spike)) {
    d.delay_us = config_.delay_spike_us;
    ++counters_.delay_spikes;
  }
  return d;
}

void FaultInjector::InjectCrashAt(const std::string& point,
                                  uint64_t passage) {
  std::lock_guard<std::mutex> lk(mu_);
  CrashPoint& cp = crash_points_[point];
  cp.armed = passage > 0;
  cp.remaining = passage;
}

bool FaultInjector::AtCrashPoint(const std::string& point) {
  std::lock_guard<std::mutex> lk(mu_);
  CrashPoint& cp = crash_points_[point];
  ++cp.passes;
  if (!cp.armed) return false;
  if (--cp.remaining > 0) return false;
  cp.armed = false;
  ++counters_.crash_points_fired;
  return true;
}

uint64_t FaultInjector::CrashPointPasses(const std::string& point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = crash_points_.find(point);
  return it == crash_points_.end() ? 0 : it->second.passes;
}

void FaultInjector::Reset(uint64_t seed) {
  std::lock_guard<std::mutex> lk(mu_);
  rng_ = Rng(seed);
  counters_ = FaultCounters{};
  crash_points_.clear();
}

}  // namespace promises
