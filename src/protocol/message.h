// Promise protocol envelopes (§6).
//
// Clients and promise managers exchange promise-related information in
// message *headers* (<promise-request>, <promise-response>,
// <environment>, <release>) while application requests travel in the
// message *body* (<action>) — "the promise release and the application
// request form an atomic unit" (§2). A message may carry any subset of
// these parts, related or unrelated (§6), including piggybacked
// responses.

#ifndef PROMISES_PROTOCOL_MESSAGE_H_
#define PROMISES_PROTOCOL_MESSAGE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "obs/trace.h"
#include "predicate/ast.h"
#include "protocol/xml.h"
#include "resource/value.h"

namespace promises {

/// <promise-request>: asks the promise maker to guarantee a set of
/// predicates for a duration (§6). All predicates are granted
/// atomically or the request is rejected (§4). `release_on_grant`
/// carries the "optional set of promise identifiers that refer to
/// existing promises that can be released if this new promise request
/// is successfully granted" — the atomic-update primitive.
struct PromiseRequestHeader {
  RequestId request_id;
  std::vector<Predicate> predicates;
  DurationMs duration_ms = 0;
  std::vector<PromiseId> release_on_grant;
  /// §6 'pending': when true, an ungrantable request joins the maker's
  /// wait queue instead of being rejected; the response carries
  /// kPending with a ticket to poll.
  bool queue_if_unavailable = false;
};

enum class PromiseResultCode { kAccepted, kRejected, kPending };

std::string_view PromiseResultCodeToString(PromiseResultCode c);

/// <promise-response>: grant/reject outcome correlated to a request.
struct PromiseResponseHeader {
  PromiseId promise_id;                    // valid only when accepted
  PromiseResultCode result = PromiseResultCode::kRejected;
  DurationMs granted_duration_ms = 0;      // may be shorter than asked (§6)
  RequestId correlation;
  std::string reason;                      // human-readable rejection cause
  /// Wait-queue ticket when result is kPending; poll with <poll>.
  uint64_t pending_ticket = 0;
  /// §6 "accepted with the condition XX": on rejection, the strongest
  /// weaker predicate list the maker could grant instead (textual
  /// predicate-list form). Empty when no counter-offer applies.
  std::string counter_offer;
};

/// <environment>: the promises an action executes under, each with a
/// release option ("whether the associated promises should be released
/// after the request has completed", §6).
struct EnvironmentHeader {
  struct Entry {
    PromiseId promise;
    bool release_after = false;
  };
  std::vector<Entry> entries;
};

/// <release>: explicit promise release without an accompanying action.
struct ReleaseHeader {
  std::vector<PromiseId> promises;
};

/// <poll>: asks the maker to resolve a queued request's ticket. The
/// reply carries a <promise-response> with kPending (still waiting),
/// kAccepted (granted meanwhile) or kRejected (patience lapsed).
struct PollHeader {
  uint64_t ticket = 0;
};

/// <overload>: the receiver shed this request under overload instead of
/// processing it (admission queue full, per-client quota exceeded, or
/// the envelope's propagated deadline had already expired). Carries a
/// retry-after hint so well-behaved clients pace their retries instead
/// of amplifying the load.
struct OverloadHeader {
  std::string reason;            ///< "queue-full" | "quota" | "deadline".
  DurationMs retry_after_ms = 0; ///< 0 = no hint (e.g. deadline sheds).
};

/// <route>: federated-cluster routing stamp (DESIGN.md §13). The
/// sender records which shard index it planned this envelope onto and
/// the version of the shard topology it planned with; a shard
/// configured with a shard guard refuses envelopes whose stamp does
/// not match its own identity (wrong shard, or a stale/newer topology)
/// with kFailedPrecondition, so re-sharding can never silently land a
/// request on the wrong shard's books. Absent on unrouted traffic.
struct RouteHeader {
  int32_t shard = 0;             ///< Planned destination shard index.
  uint64_t topology_version = 0; ///< Topology the plan was made under.
};

/// <action>: one application request for a service.
struct ActionBody {
  std::string service;
  std::string operation;
  std::map<std::string, Value> params;
};

/// <action-result>: service reply passed back through the manager.
struct ActionResultBody {
  bool ok = false;
  std::string error;                        // status text when !ok
  std::map<std::string, Value> outputs;
};

/// One transport message: any subset of headers plus at most one body
/// part in each direction.
struct Envelope {
  MessageId message_id;
  std::string from;
  std::string to;

  /// Absolute deadline (ms in the shared Clock epoch; 0 = none). Set by
  /// the client from its per-call budget, propagated unchanged across
  /// retries and hops, and checked server-side before any work: a
  /// request whose deadline has passed is shed without touching the
  /// promise manager's lock stripes — the client has already given up.
  Timestamp deadline = 0;

  /// Distributed-tracing context (<trace> header element): the trace
  /// id is stamped once by the client and reused verbatim across
  /// retries; the span id is the sender's attempt span, which the
  /// receiver parents its own spans under. Absent (or unsampled) when
  /// the request was not selected for tracing — absent contexts cost
  /// nothing on the wire or in the receiver.
  std::optional<TraceContext> trace;

  std::optional<PromiseRequestHeader> promise_request;
  std::optional<PromiseResponseHeader> promise_response;
  std::optional<EnvironmentHeader> environment;
  std::optional<ReleaseHeader> release;
  std::optional<PollHeader> poll;
  std::optional<OverloadHeader> overload;
  std::optional<RouteHeader> route;
  std::optional<ActionBody> action;
  std::optional<ActionResultBody> action_result;

  /// Error-status view of an <overload> reply: kResourceExhausted with
  /// the retry-after hint encoded (see RetryAfterHintMs), or OK when
  /// the envelope carries no overload header. Lets every client path
  /// (in-process status, TCP reply envelope) surface sheds uniformly.
  Status ShedStatus() const;

  /// Serializes to a SOAP-style <envelope><header>…</header><body>…
  /// </body></envelope> document.
  std::string ToXml(bool pretty = false) const;

  /// Parses a document produced by ToXml (predicates are re-parsed from
  /// their textual form).
  static Result<Envelope> FromXml(std::string_view xml);
};

}  // namespace promises

#endif  // PROMISES_PROTOCOL_MESSAGE_H_
