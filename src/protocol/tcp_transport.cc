#include "protocol/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "protocol/retry_policy.h"

namespace promises {

namespace {

using SteadyClock = std::chrono::steady_clock;

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Clock* RealClock() {
  static SystemClock clock;
  return &clock;
}

/// Milliseconds left until `deadline`, clamped at 0. A default
/// (epoch) deadline means "unbounded" and reports a negative value,
/// which poll() treats as infinite.
int RemainingMs(SteadyClock::time_point deadline) {
  if (deadline == SteadyClock::time_point{}) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(std::min<int64_t>(
                                     left.count(), 1'000'000));
}

Status WriteAll(int fd, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, char* data, size_t len,
               SteadyClock::time_point deadline) {
  size_t got = 0;
  while (got < len) {
    if (deadline != SteadyClock::time_point{}) {
      int wait_ms = RemainingMs(deadline);
      if (wait_ms == 0) {
        return Status::DeadlineExceeded("recv deadline exceeded");
      }
      pollfd pfd{fd, POLLIN, 0};
      int pr = ::poll(&pfd, 1, wait_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return Errno("poll");
      }
      if (pr == 0) {
        return Status::DeadlineExceeded("recv deadline exceeded");
      }
    }
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      return Status::Unavailable("connection closed");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

SteadyClock::time_point DeadlineFromTimeout(int64_t timeout_ms) {
  if (timeout_ms <= 0) return SteadyClock::time_point{};
  return SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
}

/// Reply envelope for a shed request: same message id back to the
/// sender, overload header attached, nothing else — the cheapest
/// possible "no".
Envelope OverloadReply(const Envelope& request, OverloadHeader header) {
  Envelope reply;
  reply.message_id = request.message_id;
  reply.from = request.to;
  reply.to = request.from;
  reply.overload = std::move(header);
  return reply;
}

/// Failure reply used for malformed frames and handler errors.
Envelope FailureReply(const std::string& to, const std::string& error) {
  Envelope fail;
  fail.message_id = MessageId(1);
  fail.to = to;
  ActionResultBody r;
  r.ok = false;
  r.error = error;
  fail.action_result = std::move(r);
  return fail;
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  char header[8];
  uint64_t len = payload.size();
  for (int i = 7; i >= 0; --i) {
    header[i] = static_cast<char>(len & 0xff);
    len >>= 8;
  }
  PROMISES_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd, int64_t timeout_ms) {
  SteadyClock::time_point deadline = DeadlineFromTimeout(timeout_ms);
  char header[8];
  PROMISES_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header), deadline));
  uint64_t len = 0;
  for (char c : header) {
    len = (len << 8) | static_cast<unsigned char>(c);
  }
  constexpr uint64_t kMaxFrame = 64ull << 20;  // 64 MiB sanity cap
  if (len > kMaxFrame) {
    return Status::InvalidArgument("oversized frame (" +
                                   std::to_string(len) + " bytes)");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    PROMISES_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len, deadline));
  }
  return payload;
}

TcpEndpointServer::Connection::~Connection() { ::close(fd); }

TcpEndpointServer::~TcpEndpointServer() { Stop(); }

Status TcpEndpointServer::Start(uint16_t port, EndpointHandler handler) {
  return Start(port, std::move(handler), TcpServerOptions{});
}

Status TcpEndpointServer::Start(uint16_t port, EndpointHandler handler,
                                TcpServerOptions options) {
  if (listen_fd_.load() >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  handler_ = std::move(handler);
  options_ = options;
  if (options_.workers == 0) options_.workers = 1;
  clock_ = options_.clock != nullptr ? options_.clock : RealClock();
  admission_ =
      std::make_unique<AdmissionController>(options_.admission, clock_);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(fd, 64) < 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  stopping_ = false;
  draining_ = false;
  requests_ = 0;
  if (options_.begin_in_warmup) admission_->BeginWarmup();
  listen_fd_.store(fd);
  worker_threads_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.background_start) {
    Status st = options_.background_start();
    if (!st.ok()) {
      // The service refused to come up; serving without it would
      // silently drop the maintenance the owner asked for.
      Stop();
      return st;
    }
  }
  return Status::OK();
}

void TcpEndpointServer::Stop() { StopInternal(options_.drain_ms); }

bool TcpEndpointServer::StopGraceful(DurationMs drain_deadline_ms) {
  return StopInternal(drain_deadline_ms);
}

bool TcpEndpointServer::StopInternal(DurationMs drain_ms) {
  int fd = listen_fd_.exchange(-1);
  if (fd < 0) return true;
  if (options_.background_stop) options_.background_stop();

  bool drained = true;
  if (drain_ms > 0) {
    // Graceful drain: the listener closes first (no new connections),
    // readers stay up so in-flight replies still reach their clients
    // but answer any *new* frame with a "draining" shed, and the
    // workers get up to drain_ms of wall clock to finish the admitted
    // backlog. Wall clock on purpose: the injected clock may be
    // simulated/frozen while the workers run in real time.
    draining_.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    if (accept_thread_.joinable()) accept_thread_.join();
    std::unique_lock<std::mutex> lk(queue_mu_);
    drained = drain_cv_.wait_for(
        lk, std::chrono::milliseconds(drain_ms),
        [this] { return queue_.empty() && in_flight_ == 0; });
  }

  stopping_ = true;
  if (drain_ms <= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    if (accept_thread_.joinable()) accept_thread_.join();
  }

  // Unblock every reader parked in recv() on a live connection.
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& [id, conn] : reader_conns_) {
      if (conn) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }

  // Wake the pool; workers observe stopping_ and exit without touching
  // the remaining backlog (queued requests are discarded — their
  // clients time out exactly as if the server had crashed).
  queue_cv_.notify_all();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_.clear();
  }

  std::map<uint64_t, std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    readers.swap(readers_);
    reader_conns_.clear();
  }
  for (auto& [id, t] : readers) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    finished_readers_.clear();
  }
  draining_.store(false, std::memory_order_release);
  return drained;
}

OverloadStats TcpEndpointServer::overload_stats() const {
  return admission_ != nullptr ? admission_->stats() : OverloadStats{};
}

size_t TcpEndpointServer::queue_depth() const {
  std::lock_guard<std::mutex> lk(queue_mu_);
  return queue_.size();
}

size_t TcpEndpointServer::live_connections() {
  std::lock_guard<std::mutex> lk(conns_mu_);
  ReapFinishedLocked();
  return readers_.size();
}

void TcpEndpointServer::ReapFinishedLocked() {
  for (uint64_t id : finished_readers_) {
    auto it = readers_.find(id);
    if (it == readers_.end()) continue;  // already swept by Stop()
    if (it->second.joinable()) it->second.join();
    readers_.erase(it);
    reader_conns_.erase(id);
  }
  finished_readers_.clear();
}

void TcpEndpointServer::AcceptLoop() {
  while (!stopping_) {
    int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lk(conns_mu_);
    ReapFinishedLocked();
    uint64_t id = next_conn_id_++;
    reader_conns_[id] = conn;
    readers_.emplace(id, std::thread([this, conn, id]() mutable {
                       ServeConnection(std::move(conn), id);
                     }));
  }
}

void TcpEndpointServer::ServeConnection(std::shared_ptr<Connection> conn,
                                        uint64_t id) {
  while (!stopping_) {
    Result<std::string> request_xml = ReadFrame(conn->fd);
    if (!request_xml.ok()) break;  // peer closed or died

    // The injector rules on each inbound frame. Faults here behave
    // like a real lossy middlebox: the client only ever observes a
    // missing reply (its deadline) or a dead connection.
    int deliveries = 1;
    bool send_reply = true;
    FaultInjector* injector = fault_injector_.load(std::memory_order_acquire);
    if (injector != nullptr) {
      FaultInjector::Decision d = injector->Decide();
      if (d.delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
      }
      bool crashed = false;
      switch (d.action) {
        case FaultAction::kDeliver:
          break;
        case FaultAction::kCrash:
          crashed = true;  // connection dies mid-conversation
          break;
        case FaultAction::kDropRequest:
          continue;  // frame read off the wire, never processed
        case FaultAction::kDropReply:
          send_reply = false;
          break;
        case FaultAction::kDuplicate:
          deliveries = 2;
          break;
      }
      if (crashed) {
        ::shutdown(conn->fd, SHUT_RDWR);
        break;
      }
    }

    Result<Envelope> request = Envelope::FromXml(*request_xml);
    if (!request.ok()) {
      // Malformed request: answer with a failure result envelope.
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (send_reply) {
        SendReply(*conn, FailureReply("", "malformed envelope: " +
                                              request.status().ToString()));
      }
      continue;
    }

    // Graceful drain in progress: the in-flight backlog is finishing
    // but no new work is accepted — shed with a hint so the client's
    // retry lands on the restarted server.
    if (draining_.load(std::memory_order_acquire)) {
      if (send_reply) {
        SendReply(*conn,
                  OverloadReply(*request,
                                OverloadHeader{
                                    "draining",
                                    options_.admission.retry_after_hint_ms}));
      }
      continue;
    }

    // Admission before any work is queued: the reader answers sheds on
    // the spot, so overload costs one envelope, never a worker. The
    // depth read and the enqueue are not atomic — concurrent readers
    // may overshoot the bound by at most the reader count, which is
    // fine for a shed threshold.
    const bool traced = request->trace && request->trace->sampled;
    AdmissionController::Decision decision;
    {
      // Terminal span on shed, so turned-away attempts still appear in
      // the client's trace tree.
      ScopedSpan admission_span(traced ? *request->trace : TraceContext{},
                                "admission");
      decision =
          admission_->Admit(request->from, queue_depth(), request->deadline);
      if (!decision.admitted()) {
        admission_span.set_status("shed-" +
                                  std::string(decision.reason_string()));
      }
    }
    if (!decision.admitted()) {
      if (send_reply) {
        SendReply(*conn, OverloadReply(*request, decision.ToHeader()));
      }
      continue;
    }

    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      queue_.push_back(Work{conn, *std::move(request), send_reply,
                            deliveries, traced ? TraceNowUs() : 0});
    }
    queue_cv_.notify_one();
  }
  // Announce completion; the next reap joins this thread.
  std::lock_guard<std::mutex> lk(conns_mu_);
  finished_readers_.push_back(id);
}

void TcpEndpointServer::WorkerLoop() {
  while (true) {
    Work work;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // backlog is discarded on Stop
      work = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    ProcessWork(work);
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      --in_flight_;
    }
    // A graceful stop may be waiting for the backlog to hit zero.
    drain_cv_.notify_all();
  }
}

void TcpEndpointServer::ProcessWork(Work& work) {
  // Queue-wait span, measured across threads: begun at enqueue on
  // the reader, closed here on the worker. Recorded manually because
  // no one scope covers both ends.
  const bool traced =
      work.enqueued_us != 0 && work.request.trace &&
      work.request.trace->sampled;
  const bool expired = options_.shed_expired &&
                       admission_->DeadlineExpired(work.request.deadline);
  if (traced) {
    Span wait;
    wait.trace_hi = work.request.trace->trace_hi;
    wait.trace_lo = work.request.trace->trace_lo;
    wait.span_id = Tracer::NextSpanId();
    wait.parent_span_id = work.request.trace->span_id;
    wait.name = "queue-wait";
    // Terminal when the request died waiting: the shed below is the
    // queue wait's outcome, not a separate phase.
    wait.status = expired ? "shed-deadline" : "ok";
    wait.start_us = work.enqueued_us;
    wait.end_us = TraceNowUs();
    RecordSpan(std::move(wait));
  }

  // Dequeue-time deadline re-check: the request was admitted live but
  // may have died waiting for a worker. Running the handler now would
  // burn capacity on a reply nobody reads.
  if (expired) {
    admission_->NoteDeadlineShed();
    if (work.send_reply) {
      SendReply(*work.conn,
                OverloadReply(work.request, OverloadHeader{"deadline", 0}));
    }
    return;
  }

  Result<Envelope> reply = [&] {
    // Worker-side handler span: covers the handler itself (for a
    // bridged PromiseManager the manager's own phases nest under the
    // same parent via the envelope context).
    ScopedSpan handler_span(traced ? *work.request.trace : TraceContext{},
                            "handler");
    Result<Envelope> r = handler_(work.request);
    for (int extra = 1; extra < work.deliveries; ++extra) {
      r = handler_(work.request);
    }
    if (!r.ok()) handler_span.set_status("error");
    return r;
  }();
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!work.send_reply) return;
  // Reply span: serializing and writing the response frame back to
  // the client's socket.
  ScopedSpan reply_span(traced ? *work.request.trace : TraceContext{},
                        "reply");
  if (!reply.ok()) {
    reply_span.set_status("error");
    if (IsRetryableStatus(reply.status())) {
      // A transient handler refusal (e.g. the idempotency layer's
      // "duplicate of an in-flight request") must stay retryable on the
      // wire. Wrapping it in a definitive action-failure reply would
      // make the client stop retrying and count the order failed while
      // the original attempt goes on to commit — a fabricated outcome
      // the exactly-once audit flags as over-consumption.
      SendReply(*work.conn,
                OverloadReply(work.request,
                              OverloadHeader{reply.status().ToString(), 0}));
    } else {
      SendReply(*work.conn,
                FailureReply(work.request.from, reply.status().ToString()));
    }
  } else {
    SendReply(*work.conn, *reply);
  }
}

void TcpEndpointServer::SendReply(Connection& conn, const Envelope& reply) {
  std::string xml = reply.ToXml();
  std::lock_guard<std::mutex> lk(conn.write_mu);
  // A failed write means the peer is gone; the reader on this
  // connection sees the same condition and winds it down.
  (void)WriteFrame(conn.fd, xml);
}

TcpClientChannel::~TcpClientChannel() { Disconnect(); }

void TcpClientChannel::set_reconnect_backoff(ReconnectBackoffOptions options,
                                             uint64_t seed, Clock* clock) {
  backoff_enabled_ = true;
  backoff_options_ = options;
  backoff_rng_ = Rng(seed);
  backoff_clock_ = clock != nullptr ? clock : RealClock();
  failed_dials_ = 0;
  next_dial_at_ = 0;
}

Status TcpClientChannel::Connect(uint16_t port) {
  ++dial_attempts_;
  // Remember the target even when the dial fails: a later Call must be
  // able to redial a server that was down at Connect time.
  last_port_ = port;
  Status st = DialInner(port);
  if (!backoff_enabled_) return st;
  if (st.ok()) {
    failed_dials_ = 0;
    next_dial_at_ = 0;
    return st;
  }
  // Capped, jittered exponential quiet period before the next dial.
  ++failed_dials_;
  double base = static_cast<double>(backoff_options_.initial_ms) *
                std::pow(backoff_options_.multiplier,
                         static_cast<double>(failed_dials_ - 1));
  base = std::min(base, static_cast<double>(backoff_options_.max_ms));
  double spread = 1.0 + backoff_options_.jitter *
                            (2.0 * backoff_rng_.UniformDouble() - 1.0);
  DurationMs wait =
      std::max<DurationMs>(1, static_cast<DurationMs>(base * spread));
  next_dial_at_ = backoff_clock_->Now() + wait;
  return st;
}

Status TcpClientChannel::DialInner(uint16_t port) {
  Disconnect();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  if (call_timeout_ms_ > 0) {
    // Bounded connect: non-blocking connect + poll for writability.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno != EINPROGRESS) {
      Status st = Errno("connect");
      ::close(fd);
      return st;
    }
    if (rc < 0) {
      pollfd pfd{fd, POLLOUT, 0};
      int pr = ::poll(&pfd, 1, static_cast<int>(call_timeout_ms_));
      if (pr <= 0) {
        ::close(fd);
        if (pr == 0) {
          return Status::DeadlineExceeded("connect deadline exceeded");
        }
        return Errno("poll");
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      if (err != 0) {
        ::close(fd);
        errno = err;
        return Errno("connect");
      }
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) < 0) {
    Status st = Errno("connect");
    ::close(fd);
    return st;
  }

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  last_port_ = port;
  return Status::OK();
}

void TcpClientChannel::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Envelope> TcpClientChannel::Call(const Envelope& request) {
  if (fd_ < 0) {
    if (last_port_ == 0) return Status::FailedPrecondition("not connected");
    if (backoff_enabled_) {
      Timestamp now = backoff_clock_->Now();
      if (now < next_dial_at_) {
        // Inside the post-failure quiet period: fail fast without
        // touching the socket. The retry-after hint floors the
        // caller's CallWithRetry backoff, so the retry loop is paced
        // instead of amplifying the dial storm.
        return StatusWithRetryAfter(StatusCode::kUnavailable,
                                    "reconnect backoff",
                                    next_dial_at_ - now);
      }
    }
    PROMISES_RETURN_IF_ERROR(Connect(last_port_));
    ++reconnects_;
  }
  Status write_st = WriteFrame(fd_, request.ToXml());
  if (!write_st.ok()) {
    Disconnect();
    return write_st;
  }
  Result<std::string> reply_xml = ReadFrame(fd_, call_timeout_ms_);
  if (!reply_xml.ok()) {
    // A timed-out or failed read poisons the stream: the reply to this
    // request may still arrive and would corrupt the next call's
    // framing. Drop the connection; the next Call reconnects.
    Disconnect();
    return reply_xml.status();
  }
  Result<Envelope> reply = Envelope::FromXml(*reply_xml);
  if (!reply.ok()) return reply;
  Status shed = reply->ShedStatus();
  if (!shed.ok()) return shed;  // surfaced as a status, not an envelope
  return reply;
}

}  // namespace promises
