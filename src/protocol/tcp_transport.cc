#include "protocol/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace promises {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      return Status::Unavailable("connection closed");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  char header[8];
  uint64_t len = payload.size();
  for (int i = 7; i >= 0; --i) {
    header[i] = static_cast<char>(len & 0xff);
    len >>= 8;
  }
  PROMISES_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd) {
  char header[8];
  PROMISES_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header)));
  uint64_t len = 0;
  for (char c : header) {
    len = (len << 8) | static_cast<unsigned char>(c);
  }
  constexpr uint64_t kMaxFrame = 64ull << 20;  // 64 MiB sanity cap
  if (len > kMaxFrame) {
    return Status::InvalidArgument("oversized frame (" +
                                   std::to_string(len) + " bytes)");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    PROMISES_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len));
  }
  return payload;
}

TcpEndpointServer::~TcpEndpointServer() { Stop(); }

Status TcpEndpointServer::Start(uint16_t port, EndpointHandler handler) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpEndpointServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_ = true;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(threads_mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpEndpointServer::AcceptLoop() {
  while (!stopping_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lk(threads_mu_);
    connection_threads_.emplace_back(
        [this, fd] { ServeConnection(fd); });
  }
}

void TcpEndpointServer::ServeConnection(int fd) {
  while (!stopping_) {
    Result<std::string> request_xml = ReadFrame(fd);
    if (!request_xml.ok()) break;  // peer closed or died
    std::string reply_xml;
    Result<Envelope> request = Envelope::FromXml(*request_xml);
    if (!request.ok()) {
      // Malformed request: answer with a failure result envelope.
      Envelope fail;
      fail.message_id = MessageId(1);
      ActionResultBody r;
      r.ok = false;
      r.error = "malformed envelope: " + request.status().ToString();
      fail.action_result = std::move(r);
      reply_xml = fail.ToXml();
    } else {
      Result<Envelope> reply = handler_(*request);
      if (!reply.ok()) {
        Envelope fail;
        fail.message_id = MessageId(1);
        fail.to = request->from;
        ActionResultBody r;
        r.ok = false;
        r.error = reply.status().ToString();
        fail.action_result = std::move(r);
        reply_xml = fail.ToXml();
      } else {
        reply_xml = reply->ToXml();
      }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteFrame(fd, reply_xml).ok()) break;
  }
  ::close(fd);
}

TcpClientChannel::~TcpClientChannel() { Disconnect(); }

Status TcpClientChannel::Connect(uint16_t port) {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("connect");
    ::close(fd_);
    fd_ = -1;
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void TcpClientChannel::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Envelope> TcpClientChannel::Call(const Envelope& request) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  PROMISES_RETURN_IF_ERROR(WriteFrame(fd_, request.ToXml()));
  PROMISES_ASSIGN_OR_RETURN(std::string reply_xml, ReadFrame(fd_));
  return Envelope::FromXml(reply_xml);
}

}  // namespace promises
