#include "protocol/message.h"

#include "common/string_util.h"
#include "predicate/parser.h"
#include "protocol/retry_policy.h"

namespace promises {

std::string_view PromiseResultCodeToString(PromiseResultCode c) {
  switch (c) {
    case PromiseResultCode::kAccepted: return "accepted";
    case PromiseResultCode::kRejected: return "rejected";
    case PromiseResultCode::kPending: return "pending";
  }
  return "unknown";
}

namespace {

void WriteParams(const std::map<std::string, Value>& params,
                 XmlElement* parent) {
  for (const auto& [name, value] : params) {
    XmlElement* p = parent->AddChild("param");
    p->SetAttr("name", name);
    p->SetAttr("type", std::string(ValueTypeToString(value.type())));
    p->set_text(value.ToString());
  }
}

Result<std::map<std::string, Value>> ReadParams(const XmlElement& parent) {
  std::map<std::string, Value> out;
  for (const XmlElement* p : parent.Children("param")) {
    const std::string& name = p->Attr("name");
    if (name.empty()) {
      return Status::InvalidArgument("<param> missing name attribute");
    }
    const std::string& type = p->Attr("type");
    const std::string& text = p->text();
    if (type == "bool") {
      out[name] = Value(text == "true");
    } else if (type == "int") {
      PROMISES_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      out[name] = Value(v);
    } else if (type == "double") {
      PROMISES_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      out[name] = Value(v);
    } else if (type == "string") {
      out[name] = Value(text);
    } else {
      return Status::InvalidArgument("unknown param type '" + type + "'");
    }
  }
  return out;
}

Result<uint64_t> ReadIdAttr(const XmlElement& e, const std::string& attr) {
  PROMISES_ASSIGN_OR_RETURN(int64_t v, ParseInt64(e.Attr(attr)));
  if (v < 0) return Status::InvalidArgument("negative id");
  return static_cast<uint64_t>(v);
}

}  // namespace

Status Envelope::ShedStatus() const {
  if (!overload) return Status::OK();
  return ResourceExhaustedWithRetryAfter(
      "request shed by '" + from + "': " + overload->reason,
      overload->retry_after_ms);
}

std::string Envelope::ToXml(bool pretty) const {
  XmlElement root("envelope");
  root.SetAttr("message-id", std::to_string(message_id.value()));
  root.SetAttr("from", from);
  root.SetAttr("to", to);
  if (deadline != 0) root.SetAttr("deadline", std::to_string(deadline));

  XmlElement* header = root.AddChild("header");
  if (trace && trace->valid()) {
    XmlElement* tr = header->AddChild("trace");
    tr->SetAttr("trace-id", trace->TraceIdHex());
    tr->SetAttr("span-id", FormatHex64(trace->span_id));
    if (trace->parent_span_id != 0) {
      tr->SetAttr("parent-span-id", FormatHex64(trace->parent_span_id));
    }
    tr->SetAttr("sampled", trace->sampled ? "true" : "false");
  }
  if (promise_request) {
    XmlElement* pr = header->AddChild("promise-request");
    pr->SetAttr("request-id",
                std::to_string(promise_request->request_id.value()));
    pr->SetAttr("duration-ms", std::to_string(promise_request->duration_ms));
    if (promise_request->queue_if_unavailable) {
      pr->SetAttr("queue", "true");
    }
    for (const Predicate& p : promise_request->predicates) {
      XmlElement* pe = pr->AddChild("predicate");
      pe->SetAttr("resource", p.resource_class());
      pe->set_text(p.ToString());
    }
    for (PromiseId id : promise_request->release_on_grant) {
      XmlElement* rel = pr->AddChild("release-on-grant");
      rel->SetAttr("promise-id", std::to_string(id.value()));
    }
  }
  if (promise_response) {
    XmlElement* resp = header->AddChild("promise-response");
    resp->SetAttr("promise-id",
                  std::to_string(promise_response->promise_id.value()));
    resp->SetAttr("result", std::string(PromiseResultCodeToString(
                                promise_response->result)));
    resp->SetAttr("duration-ms",
                  std::to_string(promise_response->granted_duration_ms));
    resp->SetAttr("correlation",
                  std::to_string(promise_response->correlation.value()));
    if (promise_response->pending_ticket != 0) {
      resp->SetAttr("ticket",
                    std::to_string(promise_response->pending_ticket));
    }
    if (!promise_response->reason.empty()) {
      resp->AddChild("reason")->set_text(promise_response->reason);
    }
    if (!promise_response->counter_offer.empty()) {
      resp->AddChild("counter-offer")
          ->set_text(promise_response->counter_offer);
    }
  }
  if (environment) {
    XmlElement* env = header->AddChild("environment");
    for (const EnvironmentHeader::Entry& e : environment->entries) {
      XmlElement* pe = env->AddChild("promise");
      pe->SetAttr("promise-id", std::to_string(e.promise.value()));
      pe->SetAttr("release-after", e.release_after ? "true" : "false");
    }
  }
  if (release) {
    XmlElement* rel = header->AddChild("release");
    for (PromiseId id : release->promises) {
      rel->AddChild("promise")->SetAttr("promise-id",
                                        std::to_string(id.value()));
    }
  }
  if (poll) {
    header->AddChild("poll")->SetAttr("ticket",
                                      std::to_string(poll->ticket));
  }
  if (overload) {
    XmlElement* ov = header->AddChild("overload");
    ov->SetAttr("reason", overload->reason);
    if (overload->retry_after_ms > 0) {
      ov->SetAttr("retry-after-ms", std::to_string(overload->retry_after_ms));
    }
  }
  if (route) {
    XmlElement* rt = header->AddChild("route");
    rt->SetAttr("shard", std::to_string(route->shard));
    rt->SetAttr("topology-version",
                std::to_string(route->topology_version));
  }

  XmlElement* body = root.AddChild("body");
  if (action) {
    XmlElement* a = body->AddChild("action");
    a->SetAttr("service", action->service);
    a->SetAttr("operation", action->operation);
    WriteParams(action->params, a);
  }
  if (action_result) {
    XmlElement* r = body->AddChild("action-result");
    r->SetAttr("ok", action_result->ok ? "true" : "false");
    if (!action_result->error.empty()) {
      r->AddChild("error")->set_text(action_result->error);
    }
    WriteParams(action_result->outputs, r);
  }
  return root.ToString(pretty ? 0 : -1);
}

Result<Envelope> Envelope::FromXml(std::string_view xml) {
  PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseXml(xml));
  if (root->name() != "envelope") {
    return Status::InvalidArgument("root element must be <envelope>");
  }
  Envelope env;
  PROMISES_ASSIGN_OR_RETURN(uint64_t mid, ReadIdAttr(*root, "message-id"));
  env.message_id = MessageId(mid);
  env.from = root->Attr("from");
  env.to = root->Attr("to");
  if (root->HasAttr("deadline")) {
    PROMISES_ASSIGN_OR_RETURN(env.deadline,
                              ParseInt64(root->Attr("deadline")));
  }

  if (const XmlElement* header = root->Child("header")) {
    if (const XmlElement* tr = header->Child("trace")) {
      TraceContext ctx;
      if (!ParseTraceIdHex(tr->Attr("trace-id"), &ctx.trace_hi,
                           &ctx.trace_lo)) {
        return Status::InvalidArgument("bad <trace> trace-id '" +
                                       tr->Attr("trace-id") + "'");
      }
      if (!ParseHex64(tr->Attr("span-id"), &ctx.span_id)) {
        return Status::InvalidArgument("bad <trace> span-id '" +
                                       tr->Attr("span-id") + "'");
      }
      if (tr->HasAttr("parent-span-id") &&
          !ParseHex64(tr->Attr("parent-span-id"), &ctx.parent_span_id)) {
        return Status::InvalidArgument("bad <trace> parent-span-id '" +
                                       tr->Attr("parent-span-id") + "'");
      }
      ctx.sampled = tr->Attr("sampled") == "true";
      env.trace = ctx;
    }
    if (const XmlElement* pr = header->Child("promise-request")) {
      PromiseRequestHeader h;
      PROMISES_ASSIGN_OR_RETURN(uint64_t rid, ReadIdAttr(*pr, "request-id"));
      h.request_id = RequestId(rid);
      PROMISES_ASSIGN_OR_RETURN(h.duration_ms,
                                ParseInt64(pr->Attr("duration-ms")));
      h.queue_if_unavailable = pr->Attr("queue") == "true";
      for (const XmlElement* pe : pr->Children("predicate")) {
        PROMISES_ASSIGN_OR_RETURN(Predicate p, ParsePredicate(pe->text()));
        h.predicates.push_back(std::move(p));
      }
      for (const XmlElement* rel : pr->Children("release-on-grant")) {
        PROMISES_ASSIGN_OR_RETURN(uint64_t pid, ReadIdAttr(*rel, "promise-id"));
        h.release_on_grant.push_back(PromiseId(pid));
      }
      env.promise_request = std::move(h);
    }
    if (const XmlElement* resp = header->Child("promise-response")) {
      PromiseResponseHeader h;
      PROMISES_ASSIGN_OR_RETURN(uint64_t pid, ReadIdAttr(*resp, "promise-id"));
      h.promise_id = PromiseId(pid);
      const std::string& res = resp->Attr("result");
      if (res == "accepted") {
        h.result = PromiseResultCode::kAccepted;
      } else if (res == "rejected") {
        h.result = PromiseResultCode::kRejected;
      } else if (res == "pending") {
        h.result = PromiseResultCode::kPending;
      } else {
        return Status::InvalidArgument("bad promise-response result '" + res +
                                       "'");
      }
      PROMISES_ASSIGN_OR_RETURN(h.granted_duration_ms,
                                ParseInt64(resp->Attr("duration-ms")));
      PROMISES_ASSIGN_OR_RETURN(uint64_t cor, ReadIdAttr(*resp, "correlation"));
      h.correlation = RequestId(cor);
      if (resp->HasAttr("ticket")) {
        PROMISES_ASSIGN_OR_RETURN(uint64_t t, ReadIdAttr(*resp, "ticket"));
        h.pending_ticket = t;
      }
      if (const XmlElement* reason = resp->Child("reason")) {
        h.reason = reason->text();
      }
      if (const XmlElement* offer = resp->Child("counter-offer")) {
        h.counter_offer = offer->text();
      }
      env.promise_response = std::move(h);
    }
    if (const XmlElement* envh = header->Child("environment")) {
      EnvironmentHeader h;
      for (const XmlElement* pe : envh->Children("promise")) {
        PROMISES_ASSIGN_OR_RETURN(uint64_t pid, ReadIdAttr(*pe, "promise-id"));
        h.entries.push_back(
            {PromiseId(pid), pe->Attr("release-after") == "true"});
      }
      env.environment = std::move(h);
    }
    if (const XmlElement* rel = header->Child("release")) {
      ReleaseHeader h;
      for (const XmlElement* pe : rel->Children("promise")) {
        PROMISES_ASSIGN_OR_RETURN(uint64_t pid, ReadIdAttr(*pe, "promise-id"));
        h.promises.push_back(PromiseId(pid));
      }
      env.release = std::move(h);
    }
    if (const XmlElement* pe = header->Child("poll")) {
      PollHeader h;
      PROMISES_ASSIGN_OR_RETURN(h.ticket, ReadIdAttr(*pe, "ticket"));
      env.poll = std::move(h);
    }
    if (const XmlElement* ov = header->Child("overload")) {
      OverloadHeader h;
      h.reason = ov->Attr("reason");
      if (ov->HasAttr("retry-after-ms")) {
        PROMISES_ASSIGN_OR_RETURN(h.retry_after_ms,
                                  ParseInt64(ov->Attr("retry-after-ms")));
      }
      env.overload = std::move(h);
    }
    if (const XmlElement* rt = header->Child("route")) {
      RouteHeader h;
      PROMISES_ASSIGN_OR_RETURN(int64_t shard,
                                ParseInt64(rt->Attr("shard")));
      h.shard = static_cast<int32_t>(shard);
      PROMISES_ASSIGN_OR_RETURN(uint64_t tv,
                                ReadIdAttr(*rt, "topology-version"));
      h.topology_version = tv;
      env.route = std::move(h);
    }
  }

  if (const XmlElement* body = root->Child("body")) {
    if (const XmlElement* a = body->Child("action")) {
      ActionBody h;
      h.service = a->Attr("service");
      h.operation = a->Attr("operation");
      PROMISES_ASSIGN_OR_RETURN(h.params, ReadParams(*a));
      env.action = std::move(h);
    }
    if (const XmlElement* r = body->Child("action-result")) {
      ActionResultBody h;
      h.ok = r->Attr("ok") == "true";
      if (const XmlElement* e = r->Child("error")) h.error = e->text();
      PROMISES_ASSIGN_OR_RETURN(h.outputs, ReadParams(*r));
      env.action_result = std::move(h);
    }
  }
  return env;
}

}  // namespace promises
