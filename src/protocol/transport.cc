#include "protocol/transport.h"

#include <chrono>

namespace promises {

void Transport::Register(const std::string& name, EndpointHandler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  endpoints_[name] = std::move(handler);
}

void Transport::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  endpoints_.erase(name);
}

void Transport::InjectLatency() const {
  int64_t us = hop_latency_us_.load(std::memory_order_relaxed);
  if (us <= 0) return;
  auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  // Busy-wait: sleeps on a 1-core box have scheduler noise far larger
  // than the latencies being modelled.
  while (std::chrono::steady_clock::now() < until) {
  }
}

Result<Envelope> Transport::Send(const Envelope& request) {
  EndpointHandler handler;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = endpoints_.find(request.to);
    if (it == endpoints_.end()) {
      std::lock_guard<std::mutex> sk(stats_mu_);
      ++stats_.failures;
      return Status::Unavailable("no endpoint '" + request.to + "'");
    }
    handler = it->second;
  }

  InjectLatency();

  uint64_t hop_bytes = 0;
  Result<Envelope> reply = [&]() -> Result<Envelope> {
    if (!encode_on_wire_) return handler(request);
    std::string wire = request.ToXml();
    hop_bytes += wire.size();
    PROMISES_ASSIGN_OR_RETURN(Envelope decoded, Envelope::FromXml(wire));
    PROMISES_ASSIGN_OR_RETURN(Envelope response, handler(decoded));
    std::string reply_wire = response.ToXml();
    hop_bytes += reply_wire.size();
    return Envelope::FromXml(reply_wire);
  }();

  InjectLatency();

  {
    std::lock_guard<std::mutex> sk(stats_mu_);
    ++stats_.messages;
    stats_.bytes += hop_bytes;
    if (!reply.ok()) ++stats_.failures;
  }
  return reply;
}

TransportStats Transport::stats() const {
  std::lock_guard<std::mutex> sk(stats_mu_);
  return stats_;
}

void Transport::ResetStats() {
  std::lock_guard<std::mutex> sk(stats_mu_);
  stats_ = TransportStats{};
}

}  // namespace promises
