#include "protocol/transport.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace promises {
namespace {

struct TransportCounters {
  Counter* messages;
  Counter* failures;
  Counter* faults;
  Counter* retries;
  Counter* sheds;

  static const TransportCounters& Get() {
    static TransportCounters counters = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return TransportCounters{
          reg.GetCounter("promises_transport_messages_total"),
          reg.GetCounter("promises_transport_failures_total"),
          reg.GetCounter("promises_transport_faults_injected_total"),
          reg.GetCounter("promises_transport_retries_total"),
          reg.GetCounter("promises_transport_sheds_total")};
    }();
    return counters;
  }
};

}  // namespace

void Transport::Register(const std::string& name, EndpointHandler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  endpoints_[name] = std::move(handler);
}

void Transport::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  endpoints_.erase(name);
}

void Transport::set_crash_hook(CrashHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  crash_hook_ = std::move(hook);
}

void Transport::InjectLatency(int64_t extra_us) const {
  int64_t us = hop_latency_us_.load(std::memory_order_relaxed) + extra_us;
  if (us <= 0) return;
  auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  // Busy-wait: sleeps on a 1-core box have scheduler noise far larger
  // than the latencies being modelled.
  while (std::chrono::steady_clock::now() < until) {
  }
}

void Transport::RecordFault(const std::string& endpoint) {
  TransportCounters::Get().faults->Increment();
  std::lock_guard<std::mutex> sk(stats_mu_);
  ++stats_.faults_injected;
  ++stats_.per_endpoint[endpoint].faults_injected;
}

void Transport::NoteRetry(const std::string& endpoint) {
  TransportCounters::Get().retries->Increment();
  std::lock_guard<std::mutex> sk(stats_mu_);
  ++stats_.retries;
  ++stats_.per_endpoint[endpoint].retries;
}

Result<Envelope> Transport::Send(const Envelope& request) {
  EndpointHandler handler;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = endpoints_.find(request.to);
    if (it == endpoints_.end()) {
      TransportCounters::Get().failures->Increment();
      std::lock_guard<std::mutex> sk(stats_mu_);
      ++stats_.failures;
      ++stats_.per_endpoint[request.to].failures;
      return Status::Unavailable("no endpoint '" + request.to + "'");
    }
    handler = it->second;
  }

  // Rule on this delivery's fate before it touches the wire. A lost
  // request and a lost reply both surface as kTimeout: the caller
  // cannot tell them apart, which is exactly why retries need the
  // receiver-side idempotency table.
  bool drop_reply = false;
  int deliveries = 1;
  int64_t extra_delay_us = 0;
  FaultInjector* injector = fault_injector_.load(std::memory_order_acquire);
  if (injector != nullptr) {
    FaultInjector::Decision d = injector->Decide();
    extra_delay_us = d.delay_us;
    if (d.delay_us > 0) RecordFault(request.to);
    switch (d.action) {
      case FaultAction::kDeliver:
        break;
      case FaultAction::kCrash: {
        RecordFault(request.to);
        CrashHook hook;
        {
          std::lock_guard<std::mutex> lk(mu_);
          hook = crash_hook_;
        }
        if (hook) hook(request.to);
        return Status::Unavailable("injected crash of endpoint '" +
                                   request.to + "'");
      }
      case FaultAction::kDropRequest:
        RecordFault(request.to);
        InjectLatency(extra_delay_us);
        return Status::Timeout("injected request loss to '" + request.to +
                               "'");
      case FaultAction::kDropReply:
        RecordFault(request.to);
        drop_reply = true;
        break;
      case FaultAction::kDuplicate:
        RecordFault(request.to);
        deliveries = 2;
        break;
    }
  }

  InjectLatency(extra_delay_us);

  // Admission rules at the receiver's edge, after the lossy hop: a
  // dropped request never got far enough to be shed. The in-flight
  // delivery count stands in for queue depth on this queueless bus.
  AdmissionController* admission =
      admission_.load(std::memory_order_acquire);
  if (admission != nullptr) {
    // Receiver-edge admission span: terminal ("shed-<reason>") when the
    // request is turned away, so shed attempts still show in the tree.
    ScopedSpan admission_span(
        request.trace ? *request.trace : TraceContext{}, "admission");
    AdmissionController::Decision decision = admission->Admit(
        request.from,
        static_cast<size_t>(in_flight_.load(std::memory_order_relaxed)),
        request.deadline);
    if (!decision.admitted()) {
      admission_span.set_status(
          "shed-" + std::string(decision.reason_string()));
      TransportCounters::Get().sheds->Increment();
      {
        std::lock_guard<std::mutex> sk(stats_mu_);
        ++stats_.sheds;
        ++stats_.per_endpoint[request.to].sheds;
      }
      if (drop_reply) {
        // Even the shed reply is lost on this hop.
        return Status::Timeout("injected reply loss from '" + request.to +
                               "'");
      }
      return decision.ToStatus();
    }
  }

  uint64_t hop_bytes = 0;
  auto deliver_once = [&]() -> Result<Envelope> {
    if (!encode_on_wire_) return handler(request);
    std::string wire = request.ToXml();
    hop_bytes += wire.size();
    PROMISES_ASSIGN_OR_RETURN(Envelope decoded, Envelope::FromXml(wire));
    PROMISES_ASSIGN_OR_RETURN(Envelope response, handler(decoded));
    std::string reply_wire = response.ToXml();
    hop_bytes += reply_wire.size();
    return Envelope::FromXml(reply_wire);
  };

  // A duplicated delivery hands the identical envelope to the handler
  // twice, back to back, and returns the second reply — with receiver
  // dedup both replies are the same cached envelope anyway.
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  Result<Envelope> reply = deliver_once();
  for (int extra = 1; extra < deliveries; ++extra) {
    reply = deliver_once();
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);

  InjectLatency(0);

  TransportCounters::Get().messages->Increment(
      static_cast<uint64_t>(deliveries));
  if (!reply.ok()) TransportCounters::Get().failures->Increment();
  {
    std::lock_guard<std::mutex> sk(stats_mu_);
    stats_.messages += static_cast<uint64_t>(deliveries);
    stats_.bytes += hop_bytes;
    EndpointStats& ep = stats_.per_endpoint[request.to];
    ep.messages += static_cast<uint64_t>(deliveries);
    if (!reply.ok()) {
      ++stats_.failures;
      ++ep.failures;
    }
  }
  if (drop_reply && reply.ok()) {
    return Status::Timeout("injected reply loss from '" + request.to + "'");
  }
  return reply;
}

TransportStats Transport::stats() const {
  std::lock_guard<std::mutex> sk(stats_mu_);
  return stats_;
}

void Transport::ResetStats() {
  std::lock_guard<std::mutex> sk(stats_mu_);
  stats_ = TransportStats{};
}

}  // namespace promises
