// Admission control for overloaded endpoints.
//
// The paper's robustness story (§2, E6) is that a promise manager keeps
// answering "no" cheaply: an unfulfillable request is rejected
// immediately rather than queued behind work that will never finish.
// This module is the transport-level analogue. An AdmissionController
// decides, before any real work happens, whether a request is admitted
// or shed:
//
//   * queue-full — the bounded request queue is at capacity; doing the
//     work would only grow the backlog past the point where replies
//     beat client deadlines (the goodput-collapse setup);
//   * quota — the sending client exceeded its token-bucket rate and is
//     crowding out everyone else;
//   * deadline — the envelope's propagated absolute deadline has
//     already passed (checked again at dequeue time: a request can be
//     admitted live and die waiting), so the client has given up and
//     the reply would be wasted work.
//
// A shed costs one small reply envelope carrying a retry-after hint;
// it never touches the promise manager, its lock stripes, or the
// idempotency table. Shared by the TCP worker-pool server (real
// bounded queue) and the in-process Transport (in-flight gauge as the
// queue depth), so chaos schedules and overload compose.

#ifndef PROMISES_PROTOCOL_ADMISSION_H_
#define PROMISES_PROTOCOL_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "protocol/message.h"

namespace promises {

struct AdmissionOptions {
  /// Requests allowed to wait (the bounded queue); 0 disables the
  /// queue-full check (unbounded legacy behavior).
  size_t queue_capacity = 64;
  /// Per-client token bucket: sustained admits/sec; 0 disables quotas.
  double client_rate_per_sec = 0;
  /// Bucket capacity (burst allowance) when quotas are enabled.
  double client_burst = 8;
  /// Base retry-after hint for queue-full sheds (quota sheds compute
  /// the exact time until a token accrues).
  DurationMs retry_after_hint_ms = 10;
  /// Upper bound on tracked client buckets (oldest evicted beyond it).
  size_t max_tracked_clients = 1024;

  // ---- Recovery warm-up ramp (slow-start after restart) ----
  //
  // A freshly recovered server faces a reconnect thundering-herd: every
  // client that rode out the blackout retries at once, against cold
  // caches and a replaying log. BeginWarmup() arms a *global* token
  // bucket whose refill rate climbs linearly from
  // `warmup_initial_fraction * warmup_target_rps` to the full target
  // over `warmup_window_ms`; requests beyond the ramped rate are shed
  // with reason "warmup" and an exact retry-after hint. Once the
  // window elapses the gate disarms entirely (zero steady-state cost).

  /// Steady-state admission rate the ramp climbs to; 0 disables the
  /// warm-up gate (BeginWarmup becomes a no-op).
  double warmup_target_rps = 0;
  /// Ramp length: admitted rate reaches the full target this many ms
  /// after BeginWarmup.
  DurationMs warmup_window_ms = 1'000;
  /// Fraction of the target rate admitted at BeginWarmup time.
  double warmup_initial_fraction = 0.1;
};

/// Shed/admit counters (queue depth peaks are recorded by the caller
/// that owns the queue, via NoteQueueDepth).
struct OverloadStats {
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_quota = 0;
  uint64_t shed_deadline = 0;  ///< Expired at admit or dequeue time.
  uint64_t shed_warmup = 0;    ///< Beyond the post-restart ramp rate.
  uint64_t queue_peak = 0;

  uint64_t total_shed() const {
    return shed_queue_full + shed_quota + shed_deadline + shed_warmup;
  }
};

/// Thread-safe admission decider. One instance per protected endpoint
/// (or per transport); all checks are O(1) against in-memory state.
class AdmissionController {
 public:
  enum class ShedReason { kNone, kQueueFull, kQuota, kDeadline, kWarmup };

  struct Decision {
    ShedReason reason = ShedReason::kNone;
    DurationMs retry_after_ms = 0;

    bool admitted() const { return reason == ShedReason::kNone; }
    /// "queue-full" | "quota" | "deadline" | "warmup" (empty when
    /// admitted).
    std::string_view reason_string() const;
    /// kResourceExhausted with the retry-after hint encoded, for the
    /// Status-shaped (in-process) path; OK when admitted.
    Status ToStatus() const;
    /// <overload> header for the envelope-shaped (TCP) path.
    OverloadHeader ToHeader() const;
  };

  /// `clock` is non-owning and drives quota refill and deadline checks.
  AdmissionController(AdmissionOptions options, Clock* clock);

  /// Rules on one request at enqueue time. `queue_depth` is the
  /// caller's current depth (items waiting, not yet being served);
  /// `deadline` is the envelope's absolute deadline (0 = none).
  /// Checks run cheapest-first: deadline, queue bound, quota — a quota
  /// token is only consumed when the request is actually admitted.
  Decision Admit(const std::string& client, size_t queue_depth,
                 Timestamp deadline);

  /// True when `deadline` (0 = none) has passed — the dequeue-time
  /// re-check. Call NoteDeadlineShed when acting on it.
  bool DeadlineExpired(Timestamp deadline) const {
    return deadline != 0 && clock_->Now() >= deadline;
  }

  /// Records a request shed at dequeue time because its deadline
  /// lapsed while queued.
  void NoteDeadlineShed();

  /// Records an observed queue depth (peak tracking).
  void NoteQueueDepth(size_t depth);

  /// Arms the recovery warm-up ramp: from now until warmup_window_ms
  /// from now, admits are additionally gated by a global token bucket
  /// whose rate climbs linearly from warmup_initial_fraction to 1.0 of
  /// warmup_target_rps. No-op when warmup_target_rps <= 0.
  void BeginWarmup();

  /// True while the warm-up gate is armed (window not yet elapsed).
  bool warming_up() const;

  OverloadStats stats() const;

 private:
  struct Bucket {
    double tokens = 0;
    Timestamp last_refill = 0;
  };

  /// Ramped admission rate at absolute time `now` (warmup armed).
  double WarmupRateAtLocked(Timestamp now) const;

  AdmissionOptions options_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  OverloadStats stats_;

  // Warm-up ramp state (armed by BeginWarmup, disarmed when the window
  // elapses so steady state never pays for the check beyond one bool).
  bool warmup_active_ = false;
  Timestamp warmup_started_ = 0;
  Timestamp warmup_last_refill_ = 0;
  double warmup_tokens_ = 0;
};

}  // namespace promises

#endif  // PROMISES_PROTOCOL_ADMISSION_H_
