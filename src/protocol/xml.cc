#include "protocol/xml.h"

#include <cctype>

#include "common/string_util.h"

namespace promises {

const std::string& XmlElement::Attr(const std::string& key) const {
  static const std::string kEmpty;
  auto it = attrs_.find(key);
  return it == attrs_.end() ? kEmpty : it->second;
}

XmlElement* XmlElement::AddChild(std::string name) {
  children_.push_back(std::make_unique<XmlElement>(std::move(name)));
  return children_.back().get();
}

const XmlElement* XmlElement::Child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::Children(
    std::string_view name) const {
  std::vector<const XmlElement*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

void XmlElement::Write(std::string* out, int indent) const {
  std::string pad = indent >= 0 ? std::string(indent * 2, ' ') : "";
  std::string nl = indent >= 0 ? "\n" : "";
  *out += pad + "<" + name_;
  for (const auto& [k, v] : attrs_) {
    *out += " " + k + "=\"" + XmlEscape(v) + "\"";
  }
  if (text_.empty() && children_.empty()) {
    *out += "/>" + nl;
    return;
  }
  *out += ">";
  if (!text_.empty()) *out += XmlEscape(text_);
  if (!children_.empty()) {
    *out += nl;
    for (const auto& c : children_) {
      c->Write(out, indent >= 0 ? indent + 1 : -1);
    }
    *out += pad;
  }
  *out += "</" + name_ + ">" + nl;
}

std::string XmlElement::ToString(int indent) const {
  std::string out;
  Write(&out, indent);
  return out;
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : in_(input) {}

  Result<std::unique_ptr<XmlElement>> Run() {
    SkipProlog();
    PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root,
                              ParseElement());
    SkipSpaceAndComments();
    if (pos_ != in_.size()) {
      return Err("trailing content after root element");
    }
    return root;
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < in_.size()) {
      if (std::isspace(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      } else if (in_.compare(pos_, 4, "<!--") == 0) {
        size_t end = in_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? in_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  void SkipProlog() {
    SkipSpaceAndComments();
    if (in_.compare(pos_, 5, "<?xml") == 0) {
      size_t end = in_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? in_.size() : end + 2;
    }
    SkipSpaceAndComments();
  }

  bool IsNameChar(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_' || c == ':' || c == '.';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    if (pos_ == start) return Err("expected name");
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> Unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Err("unterminated entity");
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out += '&';
      } else if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else {
        return Err("unknown entity '&" + std::string(ent) + ";'");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<std::unique_ptr<XmlElement>> ParseElement() {
    if (pos_ >= in_.size() || in_[pos_] != '<') return Err("expected '<'");
    ++pos_;
    PROMISES_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto elem = std::make_unique<XmlElement>(name);

    // Attributes.
    while (true) {
      while (pos_ < in_.size() &&
             std::isspace(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
      if (pos_ >= in_.size()) return Err("unterminated start tag");
      if (in_[pos_] == '/') {
        if (pos_ + 1 >= in_.size() || in_[pos_ + 1] != '>') {
          return Err("malformed self-closing tag");
        }
        pos_ += 2;
        return elem;
      }
      if (in_[pos_] == '>') {
        ++pos_;
        break;
      }
      PROMISES_ASSIGN_OR_RETURN(std::string key, ParseName());
      if (pos_ >= in_.size() || in_[pos_] != '=') {
        return Err("expected '=' after attribute name");
      }
      ++pos_;
      if (pos_ >= in_.size() || (in_[pos_] != '"' && in_[pos_] != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = in_[pos_++];
      size_t start = pos_;
      while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
      if (pos_ >= in_.size()) return Err("unterminated attribute value");
      PROMISES_ASSIGN_OR_RETURN(
          std::string value, Unescape(in_.substr(start, pos_ - start)));
      ++pos_;
      elem->SetAttr(key, std::move(value));
    }

    // Content: text, children, comments, then the end tag.
    std::string text;
    while (true) {
      if (pos_ >= in_.size()) return Err("unterminated element <" + name + ">");
      if (in_[pos_] == '<') {
        if (in_.compare(pos_, 4, "<!--") == 0) {
          size_t end = in_.find("-->", pos_ + 4);
          if (end == std::string_view::npos) return Err("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '/') {
          pos_ += 2;
          PROMISES_ASSIGN_OR_RETURN(std::string end_name, ParseName());
          if (end_name != name) {
            return Err("mismatched end tag </" + end_name + "> for <" + name +
                       ">");
          }
          if (pos_ >= in_.size() || in_[pos_] != '>') {
            return Err("malformed end tag");
          }
          ++pos_;
          PROMISES_ASSIGN_OR_RETURN(std::string unescaped, Unescape(text));
          elem->set_text(std::string(Trim(unescaped)));
          return elem;
        }
        PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                                  ParseElement());
        // Transfer ownership into the tree.
        elem->AdoptChild(std::move(child));
        continue;
      }
      text += in_[pos_++];
    }
  }

  Status Err(std::string msg) const {
    return Status::InvalidArgument("xml parse error at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::move(msg));
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view input) {
  return XmlParser(input).Run();
}

}  // namespace promises
