// TCP transport: the §6 protocol over a real socket.
//
// The in-process Transport substitutes the paper's web-service
// middleware for most experiments; this module closes the remaining
// gap by carrying the same XML envelopes over loopback TCP with a
// length-prefixed framing, so the protocol stack is exercised against
// an actual wire (serialization, framing, partial reads, connection
// errors, stalled peers).
//
// Model: one TcpEndpointServer hosts a handler (typically a
// PromiseManager's Handle, bridged through the in-process transport);
// TcpClientChannel issues synchronous request/response calls. Frames
// are "<8-byte big-endian length><xml bytes>".
//
// Threading/overload model: the accept loop hands each connection to a
// lightweight reader thread that only parses frames and rules on
// admission; admitted requests go onto a bounded queue drained by a
// fixed worker pool that runs the handler. A request the
// AdmissionController sheds (queue full, per-client quota, propagated
// deadline already dead) is answered immediately from the reader with
// an <overload> reply carrying a retry-after hint — it never occupies
// a worker, so a saturated server keeps saying "no" cheaply instead of
// collapsing into a backlog of work nobody is waiting for. Workers
// re-check the envelope deadline at dequeue time: a request admitted
// live can die waiting, and running it then would be pure waste.
//
// Failure model: the client channel takes a per-call deadline
// (poll-bounded reads surfacing kDeadlineExceeded; the half-read
// stream is poisoned, so the channel disconnects and transparently
// reconnects on the next Call). The server accepts a FaultInjector:
// a dropped request is read and discarded, a dropped reply is
// processed but never written (both stall the client into its
// deadline), a duplicate runs the handler twice, and a crash closes
// the connection mid-conversation.

#ifndef PROMISES_PROTOCOL_TCP_TRANSPORT_H_
#define PROMISES_PROTOCOL_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "protocol/admission.h"
#include "protocol/fault_injector.h"
#include "protocol/message.h"
#include "protocol/transport.h"

namespace promises {

/// Server-side overload knobs. The defaults keep small tests happy
/// (ample queue, no quota) while still bounding the backlog.
struct TcpServerOptions {
  /// Fixed worker pool draining the request queue.
  size_t workers = 4;
  /// Admission policy (queue bound, per-client quota, hints).
  AdmissionOptions admission;
  /// Drives deadline checks and quota refill (non-owning; nullptr =
  /// shared real clock). Tests inject the clock their clients stamp
  /// deadlines from.
  Clock* clock = nullptr;
  /// Re-check the envelope deadline when a worker dequeues the request
  /// and shed it if it lapsed while queued. Disable to reproduce the
  /// legacy collapse mode where the server burns workers on requests
  /// whose clients have already given up.
  bool shed_expired = true;
  /// Drain budget applied by Stop(): with a positive value, Stop
  /// behaves like StopGraceful(drain_ms) — queued and in-flight
  /// requests finish (new frames are shed with reason "draining")
  /// before sockets close. 0 keeps the legacy hard stop that discards
  /// the backlog.
  DurationMs drain_ms = 0;
  /// Arm the admission controller's recovery warm-up ramp the moment
  /// the server starts (see AdmissionOptions::warmup_target_rps) —
  /// used by restart supervisors bringing a recovered node back up
  /// into a reconnect herd.
  bool begin_in_warmup = false;
  /// Background-service hooks bound to the server's lifetime. The
  /// protocol layer cannot depend on core, so owners wire periodic
  /// maintenance — e.g. a CheckpointWriter cadence over the manager
  /// this server fronts — through these: `background_start` runs after
  /// the listener is up (a failure aborts Start and tears the listener
  /// back down); `background_stop` runs first thing in Stop, before
  /// the worker pool drains.
  std::function<Status()> background_start;
  std::function<void()> background_stop;
};

/// Hosts an EndpointHandler on a loopback TCP port behind a bounded
/// request queue, a fixed worker pool and an admission controller.
class TcpEndpointServer {
 public:
  TcpEndpointServer() = default;
  ~TcpEndpointServer();
  TcpEndpointServer(const TcpEndpointServer&) = delete;
  TcpEndpointServer& operator=(const TcpEndpointServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks a free port) and starts accepting
  /// with default options.
  Status Start(uint16_t port, EndpointHandler handler);

  /// As above with explicit worker-pool/admission options.
  Status Start(uint16_t port, EndpointHandler handler,
               TcpServerOptions options);

  /// Stops the server. With options.drain_ms == 0 this is the hard
  /// stop: accepting ends, every reader and worker is unblocked and
  /// joined, and queued-but-unserved requests are discarded. With a
  /// positive options.drain_ms it delegates to StopGraceful.
  void Stop();

  /// Graceful stop: closes the listener, then gives workers up to
  /// `drain_deadline_ms` (wall clock) to finish every queued and
  /// in-flight request — readers keep their connections alive so
  /// replies still reach waiting clients, answering any *new* frame
  /// with an <overload reason="draining"> shed — before tearing the
  /// rest down. Returns true when the backlog fully drained, false
  /// when the deadline hit and leftovers were discarded.
  bool StopGraceful(DurationMs drain_deadline_ms);

  /// Attaches a fault injector consulted once per inbound frame
  /// (non-owning; nullptr detaches). Set before Start or between calls.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// Port actually bound (valid after Start).
  uint16_t port() const { return port_; }

  /// Requests actually processed by the handler (sheds excluded).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Admission/shed counters (zeroed struct before Start).
  OverloadStats overload_stats() const;

  /// Requests admitted and waiting for a worker right now.
  size_t queue_depth() const;

  /// Connections with a live reader thread. Finished readers are
  /// reaped (joined) on the way — a long-lived server holds O(live)
  /// threads, not O(ever-accepted).
  size_t live_connections();

 private:
  /// One accepted socket. The fd stays open until the last reference
  /// drops (reader + any queued work items), so workers never write to
  /// a recycled descriptor; Stop() shuts the socket down to unblock
  /// the reader without closing it out from under in-flight replies.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    const int fd;
    std::mutex write_mu;  ///< Serializes reply frames on this socket.
  };

  /// An admitted request waiting for (or held by) a worker.
  struct Work {
    std::shared_ptr<Connection> conn;
    Envelope request;
    bool send_reply = true;  ///< false when the injector drops the reply.
    int deliveries = 1;      ///< 2 when the injector duplicates.
    /// Enqueue timestamp (TraceNowUs) for the cross-thread queue-wait
    /// span; 0 when the request is untraced.
    int64_t enqueued_us = 0;
  };

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Connection> conn, uint64_t id);
  void WorkerLoop();
  /// Runs one dequeued request through deadline re-check, handler and
  /// reply (the per-item body of WorkerLoop).
  void ProcessWork(Work& work);
  /// Shared teardown behind Stop/StopGraceful; `drain_ms` > 0 inserts
  /// the drain phase. Returns false when the drain deadline lapsed.
  bool StopInternal(DurationMs drain_ms);
  /// Writes `reply` to `conn` under its write mutex (errors ignored:
  /// the reader observes the dead socket and winds the connection down).
  static void SendReply(Connection& conn, const Envelope& reply);
  /// Joins reader threads that have announced completion. Requires
  /// conns_mu_.
  void ReapFinishedLocked();

  // Atomic: Stop() clears it on the caller's thread while AcceptLoop
  // still reads it (the shutdown/close pair is what actually unblocks
  // the accept; the fd value itself just flags the started state).
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  EndpointHandler handler_;
  TcpServerOptions options_;
  Clock* clock_ = nullptr;  ///< Resolved (never null after Start).
  std::unique_ptr<AdmissionController> admission_;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;

  // Reader registry: id -> (thread, connection). Readers push their id
  // onto finished_readers_ as their last locked action; the accept
  // loop, live_connections() and Stop() reap (join) them from there.
  std::mutex conns_mu_;
  std::map<uint64_t, std::thread> readers_;
  std::map<uint64_t, std::shared_ptr<Connection>> reader_conns_;
  std::vector<uint64_t> finished_readers_;
  uint64_t next_conn_id_ = 0;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queue_;
  /// Requests popped from the queue and still inside ProcessWork
  /// (guarded by queue_mu_; drain waits for queue empty + this zero).
  size_t in_flight_ = 0;
  std::condition_variable drain_cv_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<FaultInjector*> fault_injector_{nullptr};
};

/// Client-side reconnect pacing. Without it the channel re-dials a
/// dead endpoint as fast as its caller's retry loop spins — hundreds
/// of SYNs per second per client during a server blackout, and a
/// thundering herd the instant it returns. With backoff armed, each
/// failed dial pushes the next allowed dial out by a capped, jittered
/// exponential delay; Calls landing inside the quiet period fail fast
/// with a retry-after hint (no socket work), which CallWithRetry
/// honors as its backoff floor. A successful dial resets the schedule.
struct ReconnectBackoffOptions {
  DurationMs initial_ms = 1;    ///< Delay after the first failed dial.
  double multiplier = 2.0;      ///< Growth per consecutive failure.
  DurationMs max_ms = 200;      ///< Delay cap.
  double jitter = 0.25;         ///< +/- fraction applied to each delay.
};

/// Synchronous client connection to a TcpEndpointServer.
class TcpClientChannel {
 public:
  TcpClientChannel() = default;
  ~TcpClientChannel();
  TcpClientChannel(const TcpClientChannel&) = delete;
  TcpClientChannel& operator=(const TcpClientChannel&) = delete;

  /// Connects to 127.0.0.1:`port`. With a call timeout configured, the
  /// connect itself is bounded by the same budget.
  Status Connect(uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Bounds every Call (and Connect) to `ms` milliseconds; 0 restores
  /// the unbounded behavior. On expiry the call returns
  /// kDeadlineExceeded and the connection is dropped — a reply to the
  /// abandoned request can otherwise be mistaken for the next call's.
  void set_call_timeout_ms(int64_t ms) { call_timeout_ms_ = ms; }

  /// Sends `request` and waits for the reply envelope. After a
  /// deadline/connection failure, the next Call transparently
  /// reconnects to the last-connected port before sending. A reply
  /// carrying an <overload> header is surfaced as its ShedStatus()
  /// (kResourceExhausted with the server's retry-after hint), so
  /// callers and retry policies see sheds as statuses, not envelopes.
  Result<Envelope> Call(const Envelope& request);

  uint64_t reconnects() const { return reconnects_; }

  /// Arms jittered reconnect backoff (seeded for reproducibility).
  /// `clock` drives the quiet-period schedule (non-owning; nullptr =
  /// shared real clock) — tests inject a SimulatedClock and step it.
  void set_reconnect_backoff(ReconnectBackoffOptions options, uint64_t seed,
                             Clock* clock = nullptr);

  /// Dials actually attempted (every Connect entry, user- or
  /// reconnect-initiated). The backoff regression test asserts this
  /// stays small while a retry loop hammers a stopped server.
  uint64_t dial_attempts() const { return dial_attempts_; }

 private:
  /// The raw dial (socket/connect/poll); Connect wraps it with dial
  /// accounting and backoff scheduling.
  Status DialInner(uint16_t port);

  int fd_ = -1;
  uint16_t last_port_ = 0;
  int64_t call_timeout_ms_ = 0;
  uint64_t reconnects_ = 0;

  // Reconnect backoff state (single-threaded like the rest of the
  // channel: one outstanding Call at a time).
  bool backoff_enabled_ = false;
  ReconnectBackoffOptions backoff_options_;
  Rng backoff_rng_{0};
  Clock* backoff_clock_ = nullptr;
  uint64_t failed_dials_ = 0;
  Timestamp next_dial_at_ = 0;
  uint64_t dial_attempts_ = 0;
};

/// Frame helpers (exposed for tests). `timeout_ms` <= 0 blocks
/// indefinitely; otherwise reads are poll-bounded and return
/// kDeadlineExceeded when the budget lapses.
Status WriteFrame(int fd, const std::string& payload);
Result<std::string> ReadFrame(int fd, int64_t timeout_ms = 0);

}  // namespace promises

#endif  // PROMISES_PROTOCOL_TCP_TRANSPORT_H_
