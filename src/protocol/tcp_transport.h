// TCP transport: the §6 protocol over a real socket.
//
// The in-process Transport substitutes the paper's web-service
// middleware for most experiments; this module closes the remaining
// gap by carrying the same XML envelopes over loopback TCP with a
// length-prefixed framing, so the protocol stack is exercised against
// an actual wire (serialization, framing, partial reads, connection
// errors, stalled peers).
//
// Model: one TcpEndpointServer hosts a handler (typically a
// PromiseManager's Handle, bridged through the in-process transport);
// TcpClientChannel issues synchronous request/response calls. Frames
// are "<8-byte big-endian length><xml bytes>".
//
// Failure model: the client channel takes a per-call deadline
// (poll-bounded reads surfacing kDeadlineExceeded; the half-read
// stream is poisoned, so the channel disconnects and transparently
// reconnects on the next Call). The server accepts a FaultInjector:
// a dropped request is read and discarded, a dropped reply is
// processed but never written (both stall the client into its
// deadline), a duplicate runs the handler twice, and a crash closes
// the connection mid-conversation.

#ifndef PROMISES_PROTOCOL_TCP_TRANSPORT_H_
#define PROMISES_PROTOCOL_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "protocol/fault_injector.h"
#include "protocol/message.h"
#include "protocol/transport.h"

namespace promises {

/// Hosts an EndpointHandler on a loopback TCP port. Each accepted
/// connection is served by its own thread; requests on one connection
/// are processed in order.
class TcpEndpointServer {
 public:
  TcpEndpointServer() = default;
  ~TcpEndpointServer();
  TcpEndpointServer(const TcpEndpointServer&) = delete;
  TcpEndpointServer& operator=(const TcpEndpointServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks a free port) and starts accepting.
  Status Start(uint16_t port, EndpointHandler handler);

  /// Stops accepting and joins all connection threads.
  void Stop();

  /// Attaches a fault injector consulted once per inbound frame
  /// (non-owning; nullptr detaches). Set before Start or between calls.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// Port actually bound (valid after Start).
  uint16_t port() const { return port_; }

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  // Atomic: Stop() clears it on the caller's thread while AcceptLoop
  // still reads it (the shutdown/close pair is what actually unblocks
  // the accept; the fd value itself just flags the started state).
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  EndpointHandler handler_;
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  std::mutex threads_mu_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<FaultInjector*> fault_injector_{nullptr};
};

/// Synchronous client connection to a TcpEndpointServer.
class TcpClientChannel {
 public:
  TcpClientChannel() = default;
  ~TcpClientChannel();
  TcpClientChannel(const TcpClientChannel&) = delete;
  TcpClientChannel& operator=(const TcpClientChannel&) = delete;

  /// Connects to 127.0.0.1:`port`. With a call timeout configured, the
  /// connect itself is bounded by the same budget.
  Status Connect(uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Bounds every Call (and Connect) to `ms` milliseconds; 0 restores
  /// the unbounded behavior. On expiry the call returns
  /// kDeadlineExceeded and the connection is dropped — a reply to the
  /// abandoned request can otherwise be mistaken for the next call's.
  void set_call_timeout_ms(int64_t ms) { call_timeout_ms_ = ms; }

  /// Sends `request` and waits for the reply envelope. After a
  /// deadline/connection failure, the next Call transparently
  /// reconnects to the last-connected port before sending.
  Result<Envelope> Call(const Envelope& request);

  uint64_t reconnects() const { return reconnects_; }

 private:
  int fd_ = -1;
  uint16_t last_port_ = 0;
  int64_t call_timeout_ms_ = 0;
  uint64_t reconnects_ = 0;
};

/// Frame helpers (exposed for tests). `timeout_ms` <= 0 blocks
/// indefinitely; otherwise reads are poll-bounded and return
/// kDeadlineExceeded when the budget lapses.
Status WriteFrame(int fd, const std::string& payload);
Result<std::string> ReadFrame(int fd, int64_t timeout_ms = 0);

}  // namespace promises

#endif  // PROMISES_PROTOCOL_TCP_TRANSPORT_H_
