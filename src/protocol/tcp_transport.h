// TCP transport: the §6 protocol over a real socket.
//
// The in-process Transport substitutes the paper's web-service
// middleware for most experiments; this module closes the remaining
// gap by carrying the same XML envelopes over loopback TCP with a
// length-prefixed framing, so the protocol stack is exercised against
// an actual wire (serialization, framing, partial reads, connection
// errors).
//
// Model: one TcpEndpointServer hosts a handler (typically a
// PromiseManager's Handle, bridged through the in-process transport);
// TcpClientChannel issues synchronous request/response calls. Frames
// are "<8-byte big-endian length><xml bytes>".

#ifndef PROMISES_PROTOCOL_TCP_TRANSPORT_H_
#define PROMISES_PROTOCOL_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "protocol/message.h"
#include "protocol/transport.h"

namespace promises {

/// Hosts an EndpointHandler on a loopback TCP port. Each accepted
/// connection is served by its own thread; requests on one connection
/// are processed in order.
class TcpEndpointServer {
 public:
  TcpEndpointServer() = default;
  ~TcpEndpointServer();
  TcpEndpointServer(const TcpEndpointServer&) = delete;
  TcpEndpointServer& operator=(const TcpEndpointServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks a free port) and starts accepting.
  Status Start(uint16_t port, EndpointHandler handler);

  /// Stops accepting and joins all connection threads.
  void Stop();

  /// Port actually bound (valid after Start).
  uint16_t port() const { return port_; }

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  // Atomic: Stop() clears it on the caller's thread while AcceptLoop
  // still reads it (the shutdown/close pair is what actually unblocks
  // the accept; the fd value itself just flags the started state).
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  EndpointHandler handler_;
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  std::mutex threads_mu_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
};

/// Synchronous client connection to a TcpEndpointServer.
class TcpClientChannel {
 public:
  TcpClientChannel() = default;
  ~TcpClientChannel();
  TcpClientChannel(const TcpClientChannel&) = delete;
  TcpClientChannel& operator=(const TcpClientChannel&) = delete;

  /// Connects to 127.0.0.1:`port`.
  Status Connect(uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Sends `request` and waits for the reply envelope.
  Result<Envelope> Call(const Envelope& request);

 private:
  int fd_ = -1;
};

/// Frame helpers (exposed for tests).
Status WriteFrame(int fd, const std::string& payload);
Result<std::string> ReadFrame(int fd);

}  // namespace promises

#endif  // PROMISES_PROTOCOL_TCP_TRANSPORT_H_
