#include "protocol/admission.h"

#include <algorithm>

#include "obs/metrics.h"
#include "protocol/retry_policy.h"

namespace promises {
namespace {

struct AdmissionCounters {
  Counter* admitted;
  Counter* shed_queue_full;
  Counter* shed_quota;
  Counter* shed_deadline;
  Counter* shed_warmup;
  Counter* ramp_sheds;  ///< Lifecycle-facing alias of shed_warmup.

  static const AdmissionCounters& Get() {
    static AdmissionCounters counters = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return AdmissionCounters{
          reg.GetCounter("promises_admission_admitted_total"),
          reg.GetCounter("promises_admission_shed_queue_full_total"),
          reg.GetCounter("promises_admission_shed_quota_total"),
          reg.GetCounter("promises_admission_shed_deadline_total"),
          reg.GetCounter("promises_admission_shed_warmup_total"),
          reg.GetCounter("promises_lifecycle_ramp_sheds_total")};
    }();
    return counters;
  }
};

}  // namespace

std::string_view AdmissionController::Decision::reason_string() const {
  switch (reason) {
    case ShedReason::kNone: return "";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kQuota: return "quota";
    case ShedReason::kDeadline: return "deadline";
    case ShedReason::kWarmup: return "warmup";
  }
  return "";
}

Status AdmissionController::Decision::ToStatus() const {
  if (admitted()) return Status::OK();
  return ResourceExhaustedWithRetryAfter(
      "request shed: " + std::string(reason_string()), retry_after_ms);
}

OverloadHeader AdmissionController::Decision::ToHeader() const {
  return OverloadHeader{std::string(reason_string()), retry_after_ms};
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         Clock* clock)
    : options_(options), clock_(clock) {}

AdmissionController::Decision AdmissionController::Admit(
    const std::string& client, size_t queue_depth, Timestamp deadline) {
  Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lk(mu_);
  stats_.queue_peak = std::max<uint64_t>(stats_.queue_peak, queue_depth);

  // Dead-on-arrival: the client's deadline already passed in transit.
  if (deadline != 0 && now >= deadline) {
    AdmissionCounters::Get().shed_deadline->Increment();
    ++stats_.shed_deadline;
    return Decision{ShedReason::kDeadline, 0};
  }

  if (options_.queue_capacity > 0 && queue_depth >= options_.queue_capacity) {
    AdmissionCounters::Get().shed_queue_full->Increment();
    ++stats_.shed_queue_full;
    return Decision{ShedReason::kQueueFull, options_.retry_after_hint_ms};
  }

  // Warm-up ramp: a global (not per-client) slow-start gate armed after
  // restart. Checked before per-client quotas so the reconnect herd is
  // paced as a whole; disarms itself once the window elapses.
  if (warmup_active_) {
    if (now - warmup_started_ >= options_.warmup_window_ms) {
      warmup_active_ = false;
    } else {
      // Trapezoidal refill: the rate climbs linearly between refills,
      // so integrate the average of the rate at the two endpoints.
      double rate = WarmupRateAtLocked(now);
      double prev_rate = WarmupRateAtLocked(warmup_last_refill_);
      double dt_s = static_cast<double>(
                        std::max<Timestamp>(0, now - warmup_last_refill_)) /
                    1e3;
      // Burst cap: at most ~100ms of the current ramped rate may bank
      // up during idle gaps, so a quiet stretch cannot defeat the ramp.
      double cap = std::max(1.0, rate * 0.1);
      warmup_tokens_ =
          std::min(cap, warmup_tokens_ + dt_s * (rate + prev_rate) / 2.0);
      warmup_last_refill_ = now;
      if (warmup_tokens_ < 1.0) {
        AdmissionCounters::Get().shed_warmup->Increment();
        AdmissionCounters::Get().ramp_sheds->Increment();
        ++stats_.shed_warmup;
        DurationMs wait =
            static_cast<DurationMs>((1.0 - warmup_tokens_) / rate * 1e3);
        return Decision{ShedReason::kWarmup, std::max<DurationMs>(1, wait)};
      }
      warmup_tokens_ -= 1.0;
    }
  }

  if (options_.client_rate_per_sec > 0) {
    auto inserted = buckets_.try_emplace(client);
    Bucket& bucket = inserted.first->second;
    if (inserted.second) {
      bucket.tokens = options_.client_burst;
      bucket.last_refill = now;
    }
    double dt_s =
        static_cast<double>(std::max<Timestamp>(0, now - bucket.last_refill)) /
        1e3;
    bucket.tokens =
        std::min(options_.client_burst,
                 bucket.tokens + dt_s * options_.client_rate_per_sec);
    bucket.last_refill = now;
    if (bucket.tokens < 1.0) {
      AdmissionCounters::Get().shed_quota->Increment();
      ++stats_.shed_quota;
      // Exact time until a whole token accrues at the sustained rate.
      DurationMs wait = static_cast<DurationMs>(
          (1.0 - bucket.tokens) / options_.client_rate_per_sec * 1e3);
      return Decision{ShedReason::kQuota,
                      std::max<DurationMs>(1, wait)};
    }
    bucket.tokens -= 1.0;
    // Bound the bucket map: evict the longest-idle client.
    if (buckets_.size() > options_.max_tracked_clients) {
      auto oldest = buckets_.begin();
      for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
        if (it->second.last_refill < oldest->second.last_refill) oldest = it;
      }
      buckets_.erase(oldest);
    }
  }

  AdmissionCounters::Get().admitted->Increment();
  ++stats_.admitted;
  return Decision{};
}

double AdmissionController::WarmupRateAtLocked(Timestamp now) const {
  double f0 = std::clamp(options_.warmup_initial_fraction, 0.0, 1.0);
  double frac =
      options_.warmup_window_ms <= 0
          ? 1.0
          : std::min(1.0, static_cast<double>(now - warmup_started_) /
                              static_cast<double>(options_.warmup_window_ms));
  return options_.warmup_target_rps * (f0 + (1.0 - f0) * frac);
}

void AdmissionController::BeginWarmup() {
  std::lock_guard<std::mutex> lk(mu_);
  if (options_.warmup_target_rps <= 0 || options_.warmup_window_ms <= 0) return;
  warmup_active_ = true;
  warmup_started_ = clock_->Now();
  warmup_last_refill_ = warmup_started_;
  // Seed with ~100ms of the initial rate so the very first reconnects
  // are admitted rather than shed on an empty bucket.
  warmup_tokens_ = std::max(
      1.0, options_.warmup_target_rps *
               std::clamp(options_.warmup_initial_fraction, 0.0, 1.0) * 0.1);
}

bool AdmissionController::warming_up() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (!warmup_active_) return false;
  return clock_->Now() - warmup_started_ < options_.warmup_window_ms;
}

void AdmissionController::NoteDeadlineShed() {
  AdmissionCounters::Get().shed_deadline->Increment();
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.shed_deadline;
}

void AdmissionController::NoteQueueDepth(size_t depth) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.queue_peak = std::max<uint64_t>(stats_.queue_peak, depth);
}

OverloadStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace promises
