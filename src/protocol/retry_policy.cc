#include "protocol/retry_policy.h"

#include <algorithm>

namespace promises {

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kTimeout:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

DurationMs BackoffForAttempt(const RetryPolicy& policy, int attempt,
                             Rng* rng) {
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= static_cast<double>(policy.max_backoff_ms)) break;
  }
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter > 0 && rng != nullptr) {
    double factor = 1.0 + policy.jitter * (2.0 * rng->UniformDouble() - 1.0);
    backoff *= factor;
  }
  return std::max<DurationMs>(0, static_cast<DurationMs>(backoff));
}

}  // namespace promises
