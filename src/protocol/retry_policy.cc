#include "protocol/retry_policy.h"

#include <algorithm>

#include "common/string_util.h"

namespace promises {

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kTimeout:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

DurationMs BackoffForAttempt(const RetryPolicy& policy, int attempt,
                             Rng* rng) {
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= static_cast<double>(policy.max_backoff_ms)) break;
  }
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter > 0 && rng != nullptr) {
    double factor = 1.0 + policy.jitter * (2.0 * rng->UniformDouble() - 1.0);
    backoff *= factor;
  }
  return std::max<DurationMs>(0, static_cast<DurationMs>(backoff));
}

namespace {
constexpr const char kHintPrefix[] = "[retry-after-ms=";
}  // namespace

Status StatusWithRetryAfter(StatusCode code, const std::string& reason,
                            DurationMs retry_after_ms) {
  std::string msg = reason;
  if (retry_after_ms > 0) {
    msg += " ";
    msg += kHintPrefix;
    msg += std::to_string(retry_after_ms);
    msg += "]";
  }
  return Status(code, std::move(msg));
}

Status ResourceExhaustedWithRetryAfter(const std::string& reason,
                                       DurationMs retry_after_ms) {
  return StatusWithRetryAfter(StatusCode::kResourceExhausted, reason,
                              retry_after_ms);
}

DurationMs RetryAfterHintMs(const Status& status) {
  const std::string& msg = status.message();
  size_t start = msg.rfind(kHintPrefix);
  if (start == std::string::npos) return 0;
  start += sizeof(kHintPrefix) - 1;
  size_t end = msg.find(']', start);
  if (end == std::string::npos) return 0;
  Result<int64_t> parsed = ParseInt64(msg.substr(start, end - start));
  if (!parsed.ok() || *parsed < 0) return 0;
  return *parsed;
}

Clock* RetryClock(const RetryPolicy& policy) {
  static SystemClock real_clock;
  return policy.clock != nullptr ? policy.clock : &real_clock;
}

}  // namespace promises
