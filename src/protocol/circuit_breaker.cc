#include "protocol/circuit_breaker.h"

#include <algorithm>

#include "obs/metrics.h"
#include "protocol/retry_policy.h"

namespace promises {
namespace {

struct BreakerCounters {
  Counter* admitted;
  Counter* fast_failures;
  Counter* opens;
  Counter* closes;

  static const BreakerCounters& Get() {
    static BreakerCounters counters = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return BreakerCounters{
          reg.GetCounter("promises_breaker_admitted_total"),
          reg.GetCounter("promises_breaker_fast_fails_total"),
          reg.GetCounter("promises_breaker_opens_total"),
          reg.GetCounter("promises_breaker_closes_total")};
    }();
    return counters;
  }
};

}  // namespace

std::string_view BreakerStateToString(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, Clock* clock,
                               uint64_t seed)
    : config_(config), clock_(clock), rng_(seed) {}

bool CircuitBreaker::TripEligible(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kUnavailable;
}

void CircuitBreaker::TripLocked(Timestamp now, DurationMs min_cooldown_ms) {
  state_ = BreakerState::kOpen;
  BreakerCounters::Get().opens->Increment();
  ++stats_.opens;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probes_in_flight_ = 0;
  double factor = 1.0 + config_.cooldown_jitter * rng_.UniformDouble();
  DurationMs cooldown = std::max<DurationMs>(
      min_cooldown_ms,
      static_cast<DurationMs>(
          static_cast<double>(config_.open_cooldown_ms) * factor));
  reopen_at_ = now + std::max<DurationMs>(1, cooldown);
}

Status CircuitBreaker::Admit() {
  Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lk(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      BreakerCounters::Get().admitted->Increment();
      ++stats_.admitted;
      return Status::OK();
    case BreakerState::kOpen:
      if (now < reopen_at_) {
        BreakerCounters::Get().fast_failures->Increment();
        ++stats_.fast_failures;
        return StatusWithRetryAfter(StatusCode::kUnavailable,
                                    "circuit-breaker open", reopen_at_ - now);
      }
      state_ = BreakerState::kHalfOpen;
      ++stats_.half_opens;
      probe_successes_ = 0;
      probes_in_flight_ = 0;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ >= config_.half_open_probes) {
        // Enough probes are already out; don't stampede the server.
        BreakerCounters::Get().fast_failures->Increment();
        ++stats_.fast_failures;
        return StatusWithRetryAfter(
            StatusCode::kUnavailable,
            "circuit-breaker half-open (probe in flight)",
            std::max<DurationMs>(1, config_.open_cooldown_ms / 4));
      }
      ++probes_in_flight_;
      BreakerCounters::Get().admitted->Increment();
      ++stats_.admitted;
      return Status::OK();
  }
  return Status::Internal("unreachable breaker state");
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lk(mu_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    probes_in_flight_ = std::max(0, probes_in_flight_ - 1);
    if (++probe_successes_ >= config_.half_open_probes) {
      state_ = BreakerState::kClosed;
      BreakerCounters::Get().closes->Increment();
      ++stats_.closes;
      probe_successes_ = 0;
    }
  }
}

void CircuitBreaker::RecordFailure(const Status& status) {
  Timestamp now = clock_->Now();
  DurationMs hint = RetryAfterHintMs(status);
  std::lock_guard<std::mutex> lk(mu_);
  if (!TripEligible(status)) {
    // Not an overload signal (timeout, app error, ...): no streak
    // advance, but if this was a half-open probe its slot must be
    // returned — an inconclusive probe left in flight forever would
    // wedge the breaker half-open and starve the client.
    if (state_ == BreakerState::kHalfOpen) {
      probes_in_flight_ = std::max(0, probes_in_flight_ - 1);
    }
    return;
  }
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        TripLocked(now, hint);
      }
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: the server is still drowning; back to open.
      TripLocked(now, hint);
      break;
    case BreakerState::kOpen:
      // A straggler attempt admitted before the trip; extend nothing.
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

CircuitBreakerStats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  CircuitBreakerStats out = stats_;
  out.state = state_;
  return out;
}

}  // namespace promises
