// Seedable fault injection for the protocol path.
//
// The paper's §6 protocol is meant to run over real web-service
// middleware, where messages are delayed, duplicated and lost and
// servers crash mid-conversation. The reproduction's transports are
// perfectly reliable, so every fault here is injected deliberately:
// a FaultInjector attached to a Transport (or a TcpEndpointServer)
// draws from a seeded stream and decides, per delivery, whether the
// request is lost before the handler runs, the reply is lost after it
// ran, the delivery is duplicated, the endpoint "crashes", or the hop
// suffers a latency spike. Deterministic for a given seed, so chaos
// schedules replay exactly.

#ifndef PROMISES_PROTOCOL_FAULT_INJECTOR_H_
#define PROMISES_PROTOCOL_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/rng.h"

namespace promises {

/// Per-delivery fault probabilities, all in [0, 1]. Faults are drawn in
/// priority order (crash, drop request, drop reply, duplicate) and are
/// mutually exclusive per delivery; a delay spike is drawn
/// independently and can combine with any of them.
struct FaultConfig {
  double crash = 0.0;         ///< Endpoint dies; handler never runs.
  double drop_request = 0.0;  ///< Request lost before the handler.
  double drop_reply = 0.0;    ///< Handler runs, reply never arrives.
  double duplicate = 0.0;     ///< Delivered twice back to back.
  double delay_spike = 0.0;   ///< Probability of an extra-latency hop.
  int64_t delay_spike_us = 0; ///< Size of the spike when it fires.

  bool AnyEnabled() const {
    return crash > 0 || drop_request > 0 || drop_reply > 0 ||
           duplicate > 0 || delay_spike > 0;
  }
};

/// What happens to one delivery (exclusive of the delay spike).
enum class FaultAction {
  kDeliver,
  kCrash,
  kDropRequest,
  kDropReply,
  kDuplicate,
};

/// Counts of injected faults since construction / Reset.
struct FaultCounters {
  uint64_t decisions = 0;        ///< Deliveries the injector ruled on.
  uint64_t crashes = 0;
  uint64_t requests_dropped = 0;
  uint64_t replies_dropped = 0;
  uint64_t duplicates = 0;
  uint64_t delay_spikes = 0;
  /// Deterministic crash points fired (see AtCrashPoint). Not part of
  /// total_faults(): crash points are armed explicitly by tests, not
  /// drawn from the random fault stream.
  uint64_t crash_points_fired = 0;

  uint64_t total_faults() const {
    return crashes + requests_dropped + replies_dropped + duplicates +
           delay_spikes;
  }
};

/// Thread-safe seeded fault source. One instance is shared by every
/// endpoint of a transport; the draw order therefore depends on the
/// interleaving of concurrent sends, but each individual draw comes
/// from the same seeded stream (aggregate fault rates are stable and
/// single-threaded schedules replay exactly).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42) : rng_(seed) {}

  void Configure(const FaultConfig& config) {
    std::lock_guard<std::mutex> lk(mu_);
    config_ = config;
  }
  FaultConfig config() const {
    std::lock_guard<std::mutex> lk(mu_);
    return config_;
  }

  /// Draws the fate of one delivery and a delay spike (0 = none),
  /// updating the counters.
  struct Decision {
    FaultAction action = FaultAction::kDeliver;
    int64_t delay_us = 0;
  };
  Decision Decide();

  FaultCounters counters() const {
    std::lock_guard<std::mutex> lk(mu_);
    return counters_;
  }

  // ---- Deterministic crash points -----------------------------------
  //
  // Modeled on OperationLog::InjectTornWrite: fault-tolerant components
  // call AtCrashPoint("name") at their crash-consistency boundaries
  // (e.g. the wsba coordinator before/after its decision append and
  // between participant notifications). A test arms a point with
  // InjectCrashAt; the armed passage returns true exactly once — the
  // component then simulates dying at that boundary — and the point
  // disarms. Unarmed points cost one map lookup and never fire.

  /// Arms `point` to fire on its `passage`-th future passage (1 = the
  /// very next AtCrashPoint call for that name). Re-arming replaces
  /// any previous arming.
  void InjectCrashAt(const std::string& point, uint64_t passage = 1);

  /// Rules on one passage of `point`: true exactly when an armed
  /// passage is reached (one-shot; the point disarms).
  bool AtCrashPoint(const std::string& point);

  /// Total times execution passed `point` (fired or not).
  uint64_t CrashPointPasses(const std::string& point) const;

  /// Restarts the stream (new seed, zeroed counters and crash points,
  /// same config).
  void Reset(uint64_t seed);

 private:
  struct CrashPoint {
    bool armed = false;
    uint64_t remaining = 0;  ///< Passages until the armed one fires.
    uint64_t passes = 0;
  };

  mutable std::mutex mu_;
  FaultConfig config_;
  FaultCounters counters_;
  Rng rng_;
  std::map<std::string, CrashPoint> crash_points_;
};

}  // namespace promises

#endif  // PROMISES_PROTOCOL_FAULT_INJECTOR_H_
