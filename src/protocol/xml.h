// Minimal XML document model, writer and parser.
//
// §6: "All of our promise protocol messages can be transferred as
// elements in SOAP message headers and the associated actions can be
// carried within the body of the same SOAP messages." The reproduction
// ships envelopes as real XML text so the protocol experiments measure
// genuine serialize/parse cost.
//
// Supported subset: elements, attributes, character data, entity
// escapes (&amp; &lt; &gt; &quot; &apos;), self-closing tags, comments
// (skipped), leading XML declaration (skipped). No namespaces beyond
// literal prefixes in names, no DTD/CDATA.

#ifndef PROMISES_PROTOCOL_XML_H_
#define PROMISES_PROTOCOL_XML_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace promises {

/// One XML element. Character data is stored in `text` (concatenated,
/// whitespace-trimmed; mixed content is not preserved in order).
class XmlElement {
 public:
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  void SetAttr(const std::string& key, std::string value) {
    attrs_[key] = std::move(value);
  }
  /// Attribute value or empty string.
  const std::string& Attr(const std::string& key) const;
  bool HasAttr(const std::string& key) const { return attrs_.count(key) > 0; }
  const std::map<std::string, std::string>& attrs() const { return attrs_; }

  /// Appends and returns a new child element.
  XmlElement* AddChild(std::string name);
  /// Appends an already-built child element.
  void AdoptChild(std::unique_ptr<XmlElement> child) {
    children_.push_back(std::move(child));
  }
  const std::vector<std::unique_ptr<XmlElement>>& children() const {
    return children_;
  }
  /// First child with `name`, or nullptr.
  const XmlElement* Child(std::string_view name) const;
  /// All children with `name`.
  std::vector<const XmlElement*> Children(std::string_view name) const;

  /// Serializes this element (recursively). `indent` < 0 emits compact
  /// single-line output; >= 0 pretty-prints with that starting depth.
  std::string ToString(int indent = -1) const;

 private:
  void Write(std::string* out, int indent) const;

  std::string name_;
  std::string text_;
  std::map<std::string, std::string> attrs_;
  std::vector<std::unique_ptr<XmlElement>> children_;
};

/// Parses one XML document (a single root element).
Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view input);

}  // namespace promises

#endif  // PROMISES_PROTOCOL_XML_H_
