// In-process message transport.
//
// Substitution (see DESIGN.md): the paper's prototype exchanged SOAP
// messages over web-service middleware; here endpoints live in one
// process and exchange the same XML envelopes synchronously. Optional
// per-hop latency injection and full serialize/parse on every hop keep
// the protocol path realistic for the E9 experiment, and an optional
// FaultInjector turns the perfect bus into a lossy one (dropped
// requests/replies, duplicate deliveries, delay spikes, endpoint
// crashes) for the chaos experiments.

#ifndef PROMISES_PROTOCOL_TRANSPORT_H_
#define PROMISES_PROTOCOL_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/ids.h"
#include "common/status.h"
#include "protocol/admission.h"
#include "protocol/fault_injector.h"
#include "protocol/message.h"

namespace promises {

/// Handles one inbound envelope and produces the reply envelope.
using EndpointHandler = std::function<Result<Envelope>(const Envelope&)>;

/// Per-destination traffic breakdown.
struct EndpointStats {
  uint64_t messages = 0;        ///< Deliveries attempted to the endpoint.
  uint64_t failures = 0;        ///< Handler or parse failures.
  uint64_t faults_injected = 0; ///< Drops/dups/crashes/delays on its hops.
  uint64_t retries = 0;         ///< Client resends reported via NoteRetry.
  uint64_t sheds = 0;           ///< Requests refused by admission control.
};

struct TransportStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;           ///< Serialized request + response bytes.
  uint64_t failures = 0;        ///< Handler or parse failures.
  uint64_t faults_injected = 0; ///< Total injected faults across endpoints.
  uint64_t retries = 0;         ///< Total reported client retries.
  uint64_t sheds = 0;           ///< Total requests refused by admission.
  std::map<std::string, EndpointStats> per_endpoint;
};

/// Synchronous request/response bus between named endpoints.
class Transport {
 public:
  Transport() = default;

  /// When true (default), every Send serializes the envelope to XML and
  /// the receiving side parses it back — exercising the real protocol
  /// encoding. When false, envelopes are passed by reference (used to
  /// isolate encoding cost in E9).
  void set_encode_on_wire(bool v) { encode_on_wire_ = v; }

  /// Artificial one-way latency added to each hop, in microseconds of
  /// busy-wait (0 = off). Models WAN cost in a repeatable way.
  void set_hop_latency_us(int64_t us) { hop_latency_us_ = us; }

  /// Attaches a fault injector (non-owning; nullptr detaches). Every
  /// subsequent Send consults it. Attach before serving traffic.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// Attaches an admission controller (non-owning; nullptr detaches).
  /// The in-process bus has no real queue, so the count of deliveries
  /// currently executing a handler stands in for queue depth; a shed
  /// Send fails with the decision's kResourceExhausted status (carrying
  /// the retry-after hint) before the handler runs.
  void set_admission(AdmissionController* admission) {
    admission_.store(admission, std::memory_order_release);
  }

  /// Invoked (outside any transport lock) when an injected crash fault
  /// hits `endpoint`; the chaos harness uses this to kill and recover
  /// the manager behind the endpoint. The faulted Send itself fails
  /// with kUnavailable.
  using CrashHook = std::function<void(const std::string& endpoint)>;
  void set_crash_hook(CrashHook hook);

  /// Registers `name` as a destination. Replaces any prior handler.
  void Register(const std::string& name, EndpointHandler handler);
  void Unregister(const std::string& name);

  /// Delivers `request` to its `to` endpoint and returns the reply.
  /// With a fault injector attached, the request may be dropped before
  /// the handler (kTimeout), the reply may be dropped after it ran
  /// (kTimeout — the state change happened), the delivery may run twice
  /// (the duplicate's reply is returned; receivers deduplicate), or the
  /// endpoint may "crash" (kUnavailable).
  Result<Envelope> Send(const Envelope& request);

  /// Records that a client re-sent a message to `endpoint` (retries are
  /// a client-side decision the bus cannot observe by itself).
  void NoteRetry(const std::string& endpoint);

  /// Fresh message id for building envelopes.
  MessageId NextMessageId() { return message_ids_.Next(); }

  TransportStats stats() const;
  void ResetStats();

 private:
  void InjectLatency(int64_t extra_us) const;
  void RecordFault(const std::string& endpoint);

  mutable std::mutex mu_;
  std::map<std::string, EndpointHandler> endpoints_;
  CrashHook crash_hook_;
  IdGenerator<MessageId> message_ids_;
  bool encode_on_wire_ = true;
  std::atomic<int64_t> hop_latency_us_{0};
  std::atomic<FaultInjector*> fault_injector_{nullptr};
  std::atomic<AdmissionController*> admission_{nullptr};
  std::atomic<int64_t> in_flight_{0};  ///< Deliveries inside a handler.
  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

}  // namespace promises

#endif  // PROMISES_PROTOCOL_TRANSPORT_H_
