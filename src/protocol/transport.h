// In-process message transport.
//
// Substitution (see DESIGN.md): the paper's prototype exchanged SOAP
// messages over web-service middleware; here endpoints live in one
// process and exchange the same XML envelopes synchronously. Optional
// per-hop latency injection and full serialize/parse on every hop keep
// the protocol path realistic for the E9 experiment.

#ifndef PROMISES_PROTOCOL_TRANSPORT_H_
#define PROMISES_PROTOCOL_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/ids.h"
#include "common/status.h"
#include "protocol/message.h"

namespace promises {

/// Handles one inbound envelope and produces the reply envelope.
using EndpointHandler = std::function<Result<Envelope>(const Envelope&)>;

struct TransportStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;       ///< Serialized request + response bytes.
  uint64_t failures = 0;    ///< Handler or parse failures.
};

/// Synchronous request/response bus between named endpoints.
class Transport {
 public:
  Transport() = default;

  /// When true (default), every Send serializes the envelope to XML and
  /// the receiving side parses it back — exercising the real protocol
  /// encoding. When false, envelopes are passed by reference (used to
  /// isolate encoding cost in E9).
  void set_encode_on_wire(bool v) { encode_on_wire_ = v; }

  /// Artificial one-way latency added to each hop, in microseconds of
  /// busy-wait (0 = off). Models WAN cost in a repeatable way.
  void set_hop_latency_us(int64_t us) { hop_latency_us_ = us; }

  /// Registers `name` as a destination. Replaces any prior handler.
  void Register(const std::string& name, EndpointHandler handler);
  void Unregister(const std::string& name);

  /// Delivers `request` to its `to` endpoint and returns the reply.
  Result<Envelope> Send(const Envelope& request);

  /// Fresh message id for building envelopes.
  MessageId NextMessageId() { return message_ids_.Next(); }

  TransportStats stats() const;
  void ResetStats();

 private:
  void InjectLatency() const;

  mutable std::mutex mu_;
  std::map<std::string, EndpointHandler> endpoints_;
  IdGenerator<MessageId> message_ids_;
  bool encode_on_wire_ = true;
  std::atomic<int64_t> hop_latency_us_{0};
  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

}  // namespace promises

#endif  // PROMISES_PROTOCOL_TRANSPORT_H_
