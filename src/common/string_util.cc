#include "common/string_util.h"

#include <cctype>
#include <charconv>

namespace promises {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: '" + std::string(s) +
                                   "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  // std::from_chars for double is available in libstdc++ 11+; use it.
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not a number: '" + std::string(s) + "'");
  }
  return value;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void EncodeField(std::string* out, std::string_view field) {
  out->append(std::to_string(field.size()));
  out->push_back(':');
  out->append(field);
}

Result<std::string> DecodeField(std::string_view* cursor) {
  size_t colon = cursor->find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("field has no length prefix");
  }
  Result<int64_t> length = ParseInt64(cursor->substr(0, colon));
  if (!length.ok() || *length < 0) {
    return Status::InvalidArgument("bad field length prefix");
  }
  size_t body = colon + 1;
  if (cursor->size() - body < static_cast<size_t>(*length)) {
    return Status::InvalidArgument("field truncated");
  }
  std::string value(cursor->substr(body, static_cast<size_t>(*length)));
  cursor->remove_prefix(body + static_cast<size_t>(*length));
  return value;
}

}  // namespace promises
