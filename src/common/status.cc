#include "common/status.h"

namespace promises {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kConflict:
      return "conflict";
    case StatusCode::kExpired:
      return "expired";
    case StatusCode::kViolated:
      return "violated";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kDeadlock:
      return "deadlock";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace promises
