// Small string helpers shared by the predicate parser, the XML layer
// and report formatting.

#ifndef PROMISES_COMMON_STRING_UTIL_H_
#define PROMISES_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace promises {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True when `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a signed decimal integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a decimal floating-point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Escapes &, <, >, ", ' for inclusion in XML text or attributes.
std::string XmlEscape(std::string_view s);

/// Appends `field` to `out` length-prefixed as `<len>:<bytes>`, so
/// fields may contain any byte (delimiters, newlines). The checkpoint
/// format and engine state blobs are built from these.
void EncodeField(std::string* out, std::string_view field);

/// Consumes one length-prefixed field from the front of `*cursor`,
/// advancing it past the field. Fails on malformed input.
Result<std::string> DecodeField(std::string_view* cursor);

}  // namespace promises

#endif  // PROMISES_COMMON_STRING_UTIL_H_
