// Deterministic pseudo-random number generation for workloads.
//
// Benchmarks and the workload simulator need reproducible randomness;
// std::mt19937_64 seeding via SplitMix64 gives identical streams across
// platforms for a given seed.

#ifndef PROMISES_COMMON_RNG_H_
#define PROMISES_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace promises {

/// SplitMix64: fast, well-distributed 64-bit generator used both
/// directly and as a seeder.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Convenience wrapper with the distributions the workloads need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed ? seed : 0x853C49E6748FEA9BULL) {}

  uint64_t NextU64() { return gen_.Next(); }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(gen_.Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(gen_.Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Picks an index according to the given non-negative weights.
  /// Returns weights.size() - 1 when all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = UniformDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Zipf-like skewed index in [0, n): rank r chosen with probability
  /// proportional to 1/(r+1)^theta. theta == 0 is uniform.
  size_t ZipfIndex(size_t n, double theta);

 private:
  SplitMix64 gen_;
};

}  // namespace promises

#endif  // PROMISES_COMMON_RNG_H_
