// Strongly-typed identifiers for the protocol entities of §6.
//
// The Promise protocol correlates messages through several id spaces:
// request identifiers (correlate <promise-request>/<promise-response>),
// promise identifiers (name granted promises inside <environment>
// elements), message ids, transaction ids and client ids. Typed wrappers
// keep them from being mixed up at compile time.

#ifndef PROMISES_COMMON_IDS_H_
#define PROMISES_COMMON_IDS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace promises {

/// CRTP base for a 64-bit typed id. `Tag` distinguishes id spaces.
template <typename Tag>
class TypedId {
 public:
  constexpr TypedId() : value_(0) {}
  constexpr explicit TypedId(uint64_t value) : value_(value) {}

  /// Zero is reserved as "no id".
  constexpr bool valid() const { return value_ != 0; }
  constexpr uint64_t value() const { return value_; }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value_ < b.value_;
  }

  std::string ToString() const {
    return std::string(Tag::kPrefix) + "-" + std::to_string(value_);
  }

 private:
  uint64_t value_;
};

struct PromiseIdTag { static constexpr const char* kPrefix = "promise"; };
struct RequestIdTag { static constexpr const char* kPrefix = "request"; };
struct MessageIdTag { static constexpr const char* kPrefix = "message"; };
struct TxnIdTag { static constexpr const char* kPrefix = "txn"; };
struct ClientIdTag { static constexpr const char* kPrefix = "client"; };

/// Identifies a granted promise (§6 <promise-response> promise id).
using PromiseId = TypedId<PromiseIdTag>;
/// Correlates a <promise-request> with its <promise-response> (§6).
using RequestId = TypedId<RequestIdTag>;
/// Identifies one transport envelope.
using MessageId = TypedId<MessageIdTag>;
/// Identifies a local ACID transaction (§8).
using TxnId = TypedId<TxnIdTag>;
/// Identifies a promise client application.
using ClientId = TypedId<ClientIdTag>;

/// Thread-safe monotonically increasing id source (never yields 0).
template <typename Id>
class IdGenerator {
 public:
  IdGenerator() : next_(1) {}

  Id Next() { return Id(next_.fetch_add(1, std::memory_order_relaxed)); }

  /// Resets the sequence; only for deterministic tests.
  void ResetForTesting(uint64_t next = 1) { next_.store(next); }

  /// Pins the sequence so the NEXT Next() yields exactly `value`.
  /// Used by log replay: each record carries the id its operation
  /// consumed at runtime, and pinning before re-executing reproduces
  /// it even when runtime allocation order differed from log order.
  void Pin(uint64_t value) { next_.store(value, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> next_;
};

}  // namespace promises

namespace std {
template <typename Tag>
struct hash<promises::TypedId<Tag>> {
  size_t operator()(promises::TypedId<Tag> id) const noexcept {
    return std::hash<uint64_t>()(id.value());
  }
};
}  // namespace std

#endif  // PROMISES_COMMON_IDS_H_
