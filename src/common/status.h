// Status / Result<T> error-handling primitives.
//
// The library does not throw exceptions across its public API (Google
// style). Fallible operations return a Status, or a Result<T> when they
// also produce a value. Expected business outcomes (e.g. a promise
// request being rejected) are modelled as ordinary values, not as error
// Statuses; Status is reserved for contract violations, lookup failures
// and infrastructure faults.

#ifndef PROMISES_COMMON_STATUS_H_
#define PROMISES_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace promises {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad predicate syntax, bad id).
  kNotFound,          ///< Named entity does not exist.
  kAlreadyExists,     ///< Unique entity would be duplicated.
  kFailedPrecondition,///< State does not admit the operation.
  kConflict,          ///< Concurrent activity conflicts (txn aborts).
  kExpired,           ///< Promise or environment has expired (§2).
  kViolated,          ///< An action violated an unreleased promise (§8).
  kTimeout,           ///< Lock wait or transport wait exceeded budget.
  kDeadlineExceeded,  ///< Caller-supplied deadline passed before a reply.
  kResourceExhausted, ///< Server shed the request under overload; retry later.
  kDeadlock,          ///< Lock manager detected a cycle (baseline only).
  kUnavailable,       ///< Transport endpoint not reachable.
  kInternal,          ///< Invariant breakage inside the library.
  kUnimplemented,     ///< Feature intentionally absent.
  kDataLoss,          ///< Durability lost: the operation committed in
                      ///< memory but its log record did not survive.
                      ///< Not retryable — the effect already stands.
};

/// Human-readable name of a StatusCode ("ok", "not-found", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic success/failure result carrying a code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Expired(std::string msg) {
    return Status(StatusCode::kExpired, std::move(msg));
  }
  static Status Violated(std::string msg) {
    return Status(StatusCode::kViolated, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsExpired() const { return code_ == StatusCode::kExpired; }
  bool IsViolated() const { return code_ == StatusCode::kViolated; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T.
///
/// Accessing the value of a non-OK Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  // Status + optional<T> rather than variant<T, Status>: GCC 12's
  // -Wmaybe-uninitialized fires on variant's raw storage at -O3, and the
  // split keeps status() a trivial accessor (OK by default when a value
  // is present).
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression.
#define PROMISES_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::promises::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression and either assigns its value to
/// `lhs` or returns its error Status.
#define PROMISES_ASSIGN_OR_RETURN(lhs, rexpr)     \
  PROMISES_ASSIGN_OR_RETURN_IMPL_(                \
      PROMISES_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define PROMISES_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#define PROMISES_CONCAT_(a, b) PROMISES_CONCAT_IMPL_(a, b)
#define PROMISES_CONCAT_IMPL_(a, b) a##b

}  // namespace promises

#endif  // PROMISES_COMMON_STATUS_H_
