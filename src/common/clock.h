// Injected clock abstraction.
//
// Promise durations and expiry (§2: "Promises do not last forever")
// depend on time. All time flows through the Clock interface so that
// tests, benches and the workload simulator can use a SimulatedClock
// and make expiry deterministic.

#ifndef PROMISES_COMMON_CLOCK_H_
#define PROMISES_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>

namespace promises {

/// Milliseconds since an arbitrary epoch.
using Timestamp = int64_t;
/// Length of an interval in milliseconds.
using DurationMs = int64_t;

inline constexpr Timestamp kTimestampMax =
    std::numeric_limits<Timestamp>::max();

/// Source of the current time.
///
/// Now() honours a thread-local override (ScopedTimeOverride) so that
/// parallel log replay can pin each worker to the timestamp of the
/// record it is re-executing without sharing a mutable clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in milliseconds since the clock's epoch (or the
  /// calling thread's override, when one is active).
  Timestamp Now() const {
    return tls_override_active_ ? tls_override_ : NowImpl();
  }

  /// Blocks the caller until `delta` ms of *this clock's* time have
  /// passed. Backoff waits (retry policies, breaker cooldowns) go
  /// through here so a simulated clock can fast-forward instead of
  /// stalling the test on real sleeps.
  virtual void SleepFor(DurationMs delta) {
    if (delta > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delta));
    }
  }

 protected:
  /// The underlying time source.
  virtual Timestamp NowImpl() const = 0;

 private:
  friend class ScopedTimeOverride;
  inline static thread_local bool tls_override_active_ = false;
  inline static thread_local Timestamp tls_override_ = 0;
};

/// Pins Clock::Now() to a fixed timestamp for the current thread while
/// in scope. The override applies to *every* clock the thread consults
/// (there is one logical time per replayed record, regardless of which
/// Clock object a code path happens to hold).
class ScopedTimeOverride {
 public:
  explicit ScopedTimeOverride(Timestamp t)
      : prev_active_(Clock::tls_override_active_),
        prev_value_(Clock::tls_override_) {
    Clock::tls_override_active_ = true;
    Clock::tls_override_ = t;
  }
  ~ScopedTimeOverride() {
    Clock::tls_override_active_ = prev_active_;
    Clock::tls_override_ = prev_value_;
  }

  ScopedTimeOverride(const ScopedTimeOverride&) = delete;
  ScopedTimeOverride& operator=(const ScopedTimeOverride&) = delete;

 private:
  bool prev_active_;
  Timestamp prev_value_;
};

/// Wall-clock backed implementation (steady_clock; monotone).
class SystemClock : public Clock {
 protected:
  Timestamp NowImpl() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for deterministic tests and simulations.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(Timestamp start = 0) : now_(start) {}

  /// Simulated sleep: time jumps forward immediately, so retry backoff
  /// under a SimulatedClock costs zero wall-clock time while every
  /// Now() comparison (deadlines, cooldowns) behaves as if the wait
  /// really happened.
  void SleepFor(DurationMs delta) override { Advance(delta); }

  /// Moves time forward by `delta` ms (negative deltas are ignored).
  void Advance(DurationMs delta) {
    if (delta > 0) now_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Jumps directly to `t` if it is in the future.
  void AdvanceTo(Timestamp t) {
    Timestamp cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 protected:
  Timestamp NowImpl() const override {
    return now_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace promises

#endif  // PROMISES_COMMON_CLOCK_H_
