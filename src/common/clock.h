// Injected clock abstraction.
//
// Promise durations and expiry (§2: "Promises do not last forever")
// depend on time. All time flows through the Clock interface so that
// tests, benches and the workload simulator can use a SimulatedClock
// and make expiry deterministic.

#ifndef PROMISES_COMMON_CLOCK_H_
#define PROMISES_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>

namespace promises {

/// Milliseconds since an arbitrary epoch.
using Timestamp = int64_t;
/// Length of an interval in milliseconds.
using DurationMs = int64_t;

inline constexpr Timestamp kTimestampMax =
    std::numeric_limits<Timestamp>::max();

/// Source of the current time.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in milliseconds since the clock's epoch.
  virtual Timestamp Now() const = 0;

  /// Blocks the caller until `delta` ms of *this clock's* time have
  /// passed. Backoff waits (retry policies, breaker cooldowns) go
  /// through here so a simulated clock can fast-forward instead of
  /// stalling the test on real sleeps.
  virtual void SleepFor(DurationMs delta) {
    if (delta > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delta));
    }
  }
};

/// Wall-clock backed implementation (steady_clock; monotone).
class SystemClock : public Clock {
 public:
  Timestamp Now() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for deterministic tests and simulations.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Simulated sleep: time jumps forward immediately, so retry backoff
  /// under a SimulatedClock costs zero wall-clock time while every
  /// Now() comparison (deadlines, cooldowns) behaves as if the wait
  /// really happened.
  void SleepFor(DurationMs delta) override { Advance(delta); }

  /// Moves time forward by `delta` ms (negative deltas are ignored).
  void Advance(DurationMs delta) {
    if (delta > 0) now_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Jumps directly to `t` if it is in the future.
  void AdvanceTo(Timestamp t) {
    Timestamp cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace promises

#endif  // PROMISES_COMMON_CLOCK_H_
