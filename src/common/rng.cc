#include "common/rng.h"

#include <cmath>

namespace promises {

size_t Rng::ZipfIndex(size_t n, double theta) {
  if (n == 0) return 0;
  if (theta <= 0) return static_cast<size_t>(NextU64() % n);
  // Inverse-CDF sampling over the (unnormalised) harmonic weights. The
  // workloads use small n (resource classes, not instances), so the
  // linear scan is cheap and avoids caching state per (n, theta).
  double total = 0;
  for (size_t i = 0; i < n; ++i) total += 1.0 / std::pow(i + 1.0, theta);
  double r = UniformDouble() * total;
  for (size_t i = 0; i < n; ++i) {
    r -= 1.0 / std::pow(i + 1.0, theta);
    if (r <= 0) return i;
  }
  return n - 1;
}

}  // namespace promises
