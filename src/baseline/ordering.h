// Isolation strategies for the check-then-act ordering pattern.
//
// §7 frames the problem: a client checks resource availability, does
// long-running business work, then relies on the check still holding.
// Three strategies cover the paper's comparison space:
//
//  * Promises (the contribution): obtain a promise, work, then buy
//    under the promise; late failure is claimed to be ~impossible.
//  * Traditional lock-based isolation (§9): hold 2PL locks across the
//    whole operation — late failures impossible but concurrency
//    collapses and deadlocks appear ("assumes an environment where
//    activities run very quickly"; not suited to services).
//  * No isolation / optimistic: check without protection and hope —
//    the §7 situation "where the effects of concurrency are common
//    enough that they need to be included throughout the normal
//    processing paths".
//
// Experiments E1 and E6 drive these through the workload simulator.

#ifndef PROMISES_BASELINE_ORDERING_H_
#define PROMISES_BASELINE_ORDERING_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/promise_manager.h"
#include "resource/resource_manager.h"
#include "txn/transaction.h"

namespace promises {

enum class OrderResult {
  kCompleted,    ///< Goods secured and purchased.
  kUnavailable,  ///< Cleanly refused at check time (stock short).
  kFailedLate,   ///< Failed AFTER the client relied on its check — the
                 ///< outcome isolation is supposed to prevent.
  kAborted,      ///< Deadlock / lock timeout / infrastructure abort.
};

std::string_view OrderResultToString(OrderResult r);

/// One order line: (pool item, quantity).
using OrderLines = std::vector<std::pair<std::string, int64_t>>;

/// Strategy interface: run one check → think → act order.
class OrderingStrategy {
 public:
  virtual ~OrderingStrategy() = default;
  virtual OrderResult RunOrder(const OrderLines& lines,
                               const std::function<void()>& think) = 0;
};

/// Promise-based isolation (through the PromiseManager's direct API;
/// protocol overhead is measured separately in E9).
class PromiseOrderingStrategy : public OrderingStrategy {
 public:
  PromiseOrderingStrategy(PromiseManager* manager, ClientId client)
      : manager_(manager), client_(client) {}
  OrderResult RunOrder(const OrderLines& lines,
                       const std::function<void()>& think) override;

 private:
  PromiseManager* manager_;
  ClientId client_;
};

/// Traditional distributed-transaction style: 2PL locks held across the
/// think time. `exclusive_check` acquires write locks at check time
/// (avoids upgrade deadlocks at the cost of concurrency).
class LockingOrderingStrategy : public OrderingStrategy {
 public:
  LockingOrderingStrategy(TransactionManager* tm, ResourceManager* rm,
                          bool exclusive_check = false)
      : tm_(tm), rm_(rm), exclusive_check_(exclusive_check) {}
  OrderResult RunOrder(const OrderLines& lines,
                       const std::function<void()>& think) override;

 private:
  TransactionManager* tm_;
  ResourceManager* rm_;
  bool exclusive_check_;
};

/// Check-then-act with no protection between check and act.
class OptimisticOrderingStrategy : public OrderingStrategy {
 public:
  OptimisticOrderingStrategy(TransactionManager* tm, ResourceManager* rm)
      : tm_(tm), rm_(rm) {}
  OrderResult RunOrder(const OrderLines& lines,
                       const std::function<void()>& think) override;

 private:
  TransactionManager* tm_;
  ResourceManager* rm_;
};

}  // namespace promises

#endif  // PROMISES_BASELINE_ORDERING_H_
