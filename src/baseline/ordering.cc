#include "baseline/ordering.h"

namespace promises {

std::string_view OrderResultToString(OrderResult r) {
  switch (r) {
    case OrderResult::kCompleted: return "completed";
    case OrderResult::kUnavailable: return "unavailable";
    case OrderResult::kFailedLate: return "failed-late";
    case OrderResult::kAborted: return "aborted";
  }
  return "unknown";
}

OrderResult PromiseOrderingStrategy::RunOrder(
    const OrderLines& lines, const std::function<void()>& think) {
  // Figure 1: "Send promise request that (quantity of 'pink widgets'
  // >= 5)" — one atomic request covering every line (§4).
  std::vector<Predicate> predicates;
  predicates.reserve(lines.size());
  for (const auto& [item, quantity] : lines) {
    predicates.push_back(
        Predicate::Quantity(item, CompareOp::kGe, quantity));
  }
  Result<GrantOutcome> grant =
      manager_->RequestPromise(client_, std::move(predicates));
  if (!grant.ok()) return OrderResult::kAborted;
  if (!grant->accepted) return OrderResult::kUnavailable;

  // "Continue processing order (organise payment, shippers)" — the
  // long-running part, with NO locks held anywhere.
  think();

  // "Send 'purchase stock' request ... and release promise" — the
  // purchases and the release form one atomic unit.
  OrderResult result = OrderResult::kCompleted;
  for (size_t i = 0; i < lines.size(); ++i) {
    ActionBody action;
    action.service = "inventory";
    action.operation = "purchase";
    action.params["item"] = Value(lines[i].first);
    action.params["quantity"] = Value(lines[i].second);
    action.params["promise"] =
        Value(static_cast<int64_t>(grant->promise_id.value()));
    EnvironmentHeader env;
    bool last = i + 1 == lines.size();
    env.entries.push_back({grant->promise_id, /*release_after=*/last});
    Result<ActionOutcome> outcome =
        manager_->Execute(client_, action, env);
    if (!outcome.ok()) {
      result = OrderResult::kAborted;
      break;
    }
    if (!outcome->ok) {
      // A failure here is exactly what the promise was meant to
      // preclude (§7) — unless it is the rare violation/expiry case.
      result = OrderResult::kFailedLate;
      break;
    }
  }
  if (result != OrderResult::kCompleted) {
    (void)manager_->Release(client_, {grant->promise_id});
  }
  return result;
}

OrderResult LockingOrderingStrategy::RunOrder(
    const OrderLines& lines, const std::function<void()>& think) {
  std::unique_ptr<Transaction> txn = tm_->Begin();
  // Check phase: read (or pre-write-lock) every line's stock.
  for (const auto& [item, quantity] : lines) {
    if (exclusive_check_) {
      Status st = txn->Lock(ResourceManager::PoolKey(item),
                            LockMode::kExclusive);
      if (!st.ok()) return OrderResult::kAborted;
    }
    Result<int64_t> on_hand = rm_->GetQuantity(txn.get(), item);
    if (!on_hand.ok()) {
      return on_hand.status().IsDeadlock() || on_hand.status().IsTimeout()
                 ? OrderResult::kAborted
                 : OrderResult::kFailedLate;
    }
    if (*on_hand < quantity) return OrderResult::kUnavailable;
  }

  // Locks are HELD across the long-running work — the §9 objection to
  // traditional isolation in a services world.
  think();

  for (const auto& [item, quantity] : lines) {
    Status st = rm_->AdjustQuantity(txn.get(), item, -quantity);
    if (st.IsDeadlock() || st.IsTimeout()) return OrderResult::kAborted;
    // Under held locks the stock cannot have moved; any precondition
    // failure would indicate a broken invariant.
    if (!st.ok()) return OrderResult::kFailedLate;
  }
  if (!txn->Commit().ok()) return OrderResult::kAborted;
  return OrderResult::kCompleted;
}

OrderResult OptimisticOrderingStrategy::RunOrder(
    const OrderLines& lines, const std::function<void()>& think) {
  // Check phase in its own short transaction; nothing is retained.
  {
    std::unique_ptr<Transaction> txn = tm_->Begin();
    for (const auto& [item, quantity] : lines) {
      Result<int64_t> on_hand = rm_->GetQuantity(txn.get(), item);
      if (!on_hand.ok()) return OrderResult::kAborted;
      if (*on_hand < quantity) return OrderResult::kUnavailable;
    }
    if (!txn->Commit().ok()) return OrderResult::kAborted;
  }

  think();  // Unprotected: concurrent orders may drain the stock.

  std::unique_ptr<Transaction> txn = tm_->Begin();
  for (const auto& [item, quantity] : lines) {
    Status st = rm_->AdjustQuantity(txn.get(), item, -quantity);
    if (st.IsDeadlock() || st.IsTimeout()) return OrderResult::kAborted;
    if (!st.ok()) {
      // The §7 failure: the condition checked earlier no longer holds,
      // discovered only deep inside the order process.
      return OrderResult::kFailedLate;
    }
  }
  if (!txn->Commit().ok()) return OrderResult::kAborted;
  return OrderResult::kCompleted;
}

}  // namespace promises
