// Operation log and recovery.
//
// The §8 prototype wrapped every request in an ACID transaction on a
// commercial DBMS, which also made the promise table durable. The
// reproduction's in-memory substitute regains the D through logical
// command logging: every state-changing client operation that the
// promise manager commits is appended to the log as (timestamp,
// envelope XML). Recovery replays the commands in order against a
// fresh world under a simulated clock pinned to the logged timestamps,
// which reproduces grants, releases, actions, atomic updates AND lazy
// expiry decisions deterministically (promise ids are assigned
// sequentially, so replayed ids match).
//
// Record format (one line per record):
//   <length>|<checksum>|<timestamp>|<envelope-xml>
// Torn tails (partial final line, length or checksum mismatch) are
// truncated on open, mimicking WAL recovery semantics.

#ifndef PROMISES_CORE_OPLOG_H_
#define PROMISES_CORE_OPLOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace promises {

struct LogRecord {
  Timestamp timestamp = 0;
  std::string payload;  ///< compact envelope XML
};

/// Append-only operation log backed by a file.
class OperationLog {
 public:
  OperationLog() = default;
  ~OperationLog();
  OperationLog(const OperationLog&) = delete;
  OperationLog& operator=(const OperationLog&) = delete;

  /// Opens (creating if needed) the log at `path` for appending. An
  /// existing log is scanned first and any torn tail (partial final
  /// record from a crash mid-append) is physically truncated, so new
  /// appends always extend a clean prefix.
  Status Open(const std::string& path);
  void Close();
  bool IsOpen() const { return file_ != nullptr; }

  /// Appends one record and flushes it to the OS.
  Status Append(Timestamp timestamp, const std::string& payload);

  /// Crash-injection hook for recovery tests: the NEXT Append writes
  /// only the first `bytes` bytes of its encoded record (flushed, so
  /// the torn tail reaches the file), then fails with kUnavailable as
  /// if the process died mid-write. One-shot.
  void InjectTornWrite(size_t bytes) { torn_write_bytes_ = bytes; }

  /// Reads every intact record of the log at `path`. A corrupt or torn
  /// record ends the scan (records after it are discarded), matching
  /// crash-recovery semantics.
  static Result<std::vector<LogRecord>> ReadAll(const std::string& path);

  /// Simple additive checksum over the payload (torn-write detector,
  /// not cryptographic).
  static uint32_t Checksum(const std::string& payload);

 private:
  std::FILE* file_ = nullptr;
  // One-shot torn-write injection: npos = disabled.
  size_t torn_write_bytes_ = kNoTornWrite;
  static constexpr size_t kNoTornWrite = static_cast<size_t>(-1);
};

}  // namespace promises

#endif  // PROMISES_CORE_OPLOG_H_
