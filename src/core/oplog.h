// Operation log and recovery.
//
// The §8 prototype wrapped every request in an ACID transaction on a
// commercial DBMS, which also made the promise table durable. The
// reproduction's in-memory substitute regains the D through logical
// command logging: every state-changing client operation that the
// promise manager commits is appended to the log as (sequence,
// timestamp, promise id, envelope XML). Recovery replays the commands
// in sequence order against a fresh world under a simulated clock
// pinned to the logged timestamps, which reproduces grants, releases,
// actions, atomic updates AND lazy expiry decisions deterministically
// (each record carries the promise id its operation consumed, so
// replayed ids match even when allocation raced at runtime).
//
// Durability is decoupled from ordering via classic WAL group commit:
// AppendOperation() is the sequencing point — it assigns the log
// sequence number and enqueues the encoded record atomically — and
// WaitDurable() blocks until a background writer has coalesced the
// caller's group into a single fwrite + fflush (and optionally
// fdatasync). Without a running group-commit writer both calls
// degrade to the synchronous per-record path, which stays the
// drop-to-sync fallback when the writer fails.
//
// Record format (one line per record), current version:
//   v2|<length>|<checksum>|<sequence>|<timestamp>|<promise-id>|<payload>
// The checksum covers length, sequence, timestamp, promise id AND
// payload (a corrupted header field fails verification, unlike v1
// whose checksum covered the payload only). Lines without the "v2|"
// prefix are parsed as the v1 format <length>|<checksum>|<timestamp>|
// <payload>, so logs written before group commit still replay. Torn
// tails (partial final line, checksum mismatch, sequence regression)
// are truncated on open, mimicking WAL recovery semantics.
//
// Compaction: once a durable checkpoint covers the prefix up to LSN C,
// TruncateBefore(C) atomically rewrites the file as
//   trunc|<lsn>|<timestamp>|<watermark>|<checksum>
// followed by the surviving tail records byte-for-byte. The marker is
// honored only at file offset zero; it seeds the scanner's sequence
// base (so v1 tail records renumber from C, not 0), the last-record
// timestamp and the promise-id watermark, making a compacted log
// self-describing.

#ifndef PROMISES_CORE_OPLOG_H_
#define PROMISES_CORE_OPLOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace promises {

struct LogRecord {
  Timestamp timestamp = 0;
  std::string payload;  ///< compact envelope XML
  /// Log sequence number (1-based, strictly increasing). v1 records
  /// are numbered by file position during the scan.
  uint64_t sequence = 0;
  /// Promise id consumed by the logged operation, 0 when the
  /// operation did not allocate one (releases, external events, v1
  /// records). Replay pins the id generator to this value so ids
  /// match the original run even when allocation order differed from
  /// log order under striped concurrency.
  uint64_t promise_id = 0;
};

/// Why a log scan stopped where it did. Anything but kEndOfFile means
/// bytes were discarded; kTornTail (a partial final line) is the only
/// reason a clean crash can produce. A full line that fails checksum
/// or regresses the sequence is suspicious — mid-log corruption looks
/// exactly like this — so recovery paths refuse such a scan when any
/// checksum-valid record exists beyond the stop point, unless
/// explicitly overridden.
enum class ScanStopReason {
  kEndOfFile,
  kTornTail,
  kBadRecord,
  kSequenceRegression,
};

std::string_view ScanStopReasonToString(ScanStopReason reason);

/// Everything a scan learned about the physical log.
struct LogScanStats {
  bool exists = false;
  /// Sequence base from a compaction marker (0 when none): records
  /// before and at this LSN live in a checkpoint, not in this file.
  uint64_t base_sequence = 0;
  uint64_t last_sequence = 0;
  Timestamp last_timestamp = 0;
  /// Max promise id carried by any record (or the marker).
  uint64_t max_promise_id = 0;
  size_t valid_bytes = 0;      ///< clean prefix length
  size_t total_bytes = 0;      ///< physical file size
  size_t discarded_bytes = 0;  ///< total_bytes - valid_bytes
  ScanStopReason stop_reason = ScanStopReason::kEndOfFile;
  /// True when a checksum-valid record exists beyond the stop point:
  /// the stop is mid-log corruption, not a torn tail.
  bool valid_beyond_stop = false;
};

/// A named consistent cut: the last assigned LSN plus the promise-id
/// watermark and record timestamp observed at that same instant (all
/// read atomically under the log's sequencing mutex). Because LSNs are
/// assigned while operations still hold their stripe locks, "state of
/// every operation <= sequence" is a well-defined world.
struct LogCut {
  uint64_t sequence = 0;
  Timestamp last_timestamp = 0;
  uint64_t promise_id_watermark = 0;
};

/// How Append/WaitDurable trade latency for durability.
enum class DurabilityMode {
  kSync,   ///< every record written + flushed inline (no batching)
  kGroup,  ///< records queue; a writer thread flushes whole groups
  kAsync,  ///< records queue; WaitDurable returns without waiting
};

/// Knobs for the group-commit writer. `max_delay_ms` is measured on
/// the injected Clock (simulated time in tests, wall time in prod):
/// a group is flushed when it reaches `max_batch` records or its
/// oldest record has waited `max_delay_ms`, whichever comes first.
/// With `max_delay_ms == 0` the writer flushes whatever is queued as
/// soon as it wakes (lowest latency, still coalescing under load).
struct GroupCommitConfig {
  DurabilityMode mode = DurabilityMode::kGroup;
  size_t max_batch = 128;
  DurationMs max_delay_ms = 0;
  size_t queue_capacity = 4096;
  /// When true every flushed group is also fdatasync'd, extending
  /// durability from "survives the process" to "survives the OS".
  bool use_fdatasync = false;
  /// Batch-formation grace: before paying for a sync the writer holds
  /// the group open this long (steady clock, not the injected one) so
  /// committers racing the flush can join it. 0 disables; keep it
  /// well under the sync cost or it dominates latency.
  int64_t group_window_us = 0;
};

/// Append-only operation log backed by a file. Appends are
/// thread-safe; a single OperationLog may be shared by concurrent
/// committers (striped promise-manager operations).
class OperationLog {
 public:
  OperationLog() = default;
  ~OperationLog();
  OperationLog(const OperationLog&) = delete;
  OperationLog& operator=(const OperationLog&) = delete;

  /// Opens (creating if needed) the log at `path` for appending. An
  /// existing log is scanned first and any torn tail (partial final
  /// record from a crash mid-append) is physically truncated (and the
  /// truncation fsync'd, so a later crash cannot resurrect the torn
  /// bytes), so new appends always extend a clean prefix. Sequence
  /// numbering resumes past the last intact record. When the scan
  /// smells mid-log corruption (a checksum-valid record beyond the
  /// stop point) Open refuses with kDataLoss rather than destroy the
  /// evidence, unless `allow_mid_log_corruption` is set.
  Status Open(const std::string& path, bool allow_mid_log_corruption = false);
  void Close();
  bool IsOpen() const;

  /// Simulated SIGKILL: poisons the log with kUnavailable, drops every
  /// queued-but-unwritten record (the group dies mid-formation, exactly
  /// as a crash would lose it), wakes and fails all blocked WaitDurable
  /// callers, joins the writer and closes the file without the final
  /// drain Close() performs. A group whose fwrite+fflush was already
  /// in flight completes first — the kernel flushes what it was handed
  /// even when the process dies. The object is reusable: a later
  /// Open() on the same path resumes from the durable prefix, which is
  /// what crash-restart recovery replays.
  void Abandon();

  /// Starts the group-commit writer thread. `clock` is used for the
  /// max-delay linger and must outlive the writer. Idempotent error
  /// if already running.
  Status StartGroupCommit(const GroupCommitConfig& config, Clock* clock);
  /// Drains the queue, flushes the final group and joins the writer.
  /// After this, appends fall back to the synchronous path. No-op
  /// when the writer is not running.
  void StopGroupCommit();

  /// Appends one record with full commit semantics: sequences,
  /// writes and waits until it is durable. Equivalent to
  /// AppendOperation + WaitDurable; kept for single-writer callers
  /// and tests that control the timestamp directly.
  Status Append(Timestamp timestamp, const std::string& payload);

  /// The sequencing point: atomically assigns the next log sequence
  /// number, stamps the record with `clock->Now()` and enqueues it
  /// (group/async mode) or writes it inline (sync mode / writer not
  /// running). Returns the assigned sequence. The caller must invoke
  /// WaitDurable(seq) after releasing its operation locks to get the
  /// durable ack. `promise_id` is the id the operation consumed (0 if
  /// none); it is persisted for replay pinning.
  Result<uint64_t> AppendOperation(Clock* clock, const std::string& payload,
                                   uint64_t promise_id);

  /// Blocks until record `sequence` is durable (group mode), returns
  /// immediately in sync/async mode. Fails if the writer (or a prior
  /// sync write) failed before reaching `sequence`.
  Status WaitDurable(uint64_t sequence);

  /// Batch-boundary signal: tells the group-commit writer that no
  /// further committers are coming for the current group, so it should
  /// flush what is queued instead of lingering out the remainder of
  /// its formation window. The epoch executor calls this when an epoch
  /// seals — the epoch IS the group, so holding the window open only
  /// delays the epoch's single durable wait. No-op when the writer is
  /// not running or nothing is queued.
  void KickFlush();

  /// Crash-injection hook for recovery tests: the NEXT physical write
  /// (a single record in sync mode, a whole group in group mode)
  /// stores only its first `bytes` bytes (flushed, so the torn tail
  /// reaches the file), then fails with kUnavailable as if the
  /// process died mid-write. One-shot; the log is poisoned until
  /// reopened, so no record can be written after the tear and then
  /// lost to recovery's prefix scan.
  void InjectTornWrite(size_t bytes) {
    torn_write_bytes_.store(bytes, std::memory_order_release);
  }

  /// Names the current consistent cut (see LogCut). Fails when the
  /// log is closed or poisoned by a write failure.
  Result<LogCut> CutPoint() const;

  /// Compacts the prefix: atomically rewrites the file as a
  /// compaction marker for `lsn` followed by the records with
  /// sequence > lsn, preserved byte-for-byte. Requires lsn to be
  /// durable already (the caller checkpoints, waits for durability,
  /// then truncates). Quiesces the group-commit writer's in-flight IO
  /// but never loses queued records: sequencing state is untouched.
  Status TruncateBefore(uint64_t lsn);

  /// Reads every intact record of the log at `path` in one streaming
  /// pass. A corrupt or torn record ends the scan (records after it
  /// are discarded), matching crash-recovery semantics. Lenient: use
  /// ReadForRecovery when discarded bytes must be accounted for.
  static Result<std::vector<LogRecord>> ReadAll(const std::string& path);

  /// Recovery-grade read: like ReadAll but reports scan statistics
  /// and refuses (kDataLoss) a scan that stopped with checksum-valid
  /// records beyond the stop point — mid-log corruption that a plain
  /// prefix scan would silently drop — unless
  /// `allow_mid_log_corruption` is set. `stats` may be null.
  static Result<std::vector<LogRecord>> ReadForRecovery(
      const std::string& path, LogScanStats* stats,
      bool allow_mid_log_corruption = false);

  /// v1 checksum: FNV-1a over the payload only. Kept for reading old
  /// logs and for tests that craft v1 records.
  static uint32_t Checksum(const std::string& payload);
  /// v2 checksum: FNV-1a folded over length, sequence, timestamp,
  /// promise id and payload, so a corrupted header field is caught.
  static uint32_t RecordChecksum(size_t length, uint64_t sequence,
                                 Timestamp timestamp, uint64_t promise_id,
                                 const std::string& payload);

 private:
  struct Pending {
    uint64_t sequence = 0;
    std::string encoded;
    // Injected-clock arrival time; the max-delay linger is measured
    // from the oldest queued record's arrival.
    Timestamp enqueued_at = 0;
  };

  static std::string EncodeRecord(uint64_t sequence, Timestamp timestamp,
                                  uint64_t promise_id,
                                  const std::string& payload);
  // Raw IO: writes `buf`, flushes (+fdatasync when requested) and
  // honors a pending torn-write injection. Does not touch failed_;
  // the caller records the outcome under mu_. The sync path calls it
  // holding mu_; the writer thread calls it unlocked (it is the only
  // writer while running, and file_ is stable between Open/Close).
  Status WriteBuffer(const std::string& buf, bool use_fdatasync);
  // Sequences + writes one record inline (sync path). mu_ held.
  Result<uint64_t> AppendSyncLocked(Timestamp timestamp, uint64_t promise_id,
                                    const std::string& payload);
  // Sequences + queues one record for the writer, blocking while the
  // queue is at capacity. mu_ held (via `lock`). Falls back to the
  // sync path if the writer stops or fails while waiting for space.
  Result<uint64_t> EnqueueLocked(std::unique_lock<std::mutex>& lock,
                                 Timestamp timestamp, uint64_t promise_id,
                                 const std::string& payload);
  void WriterLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // writer <- committers: records queued
  std::condition_variable space_cv_;    // committers <- writer: queue drained
  std::condition_variable durable_cv_;  // committers <- writer: group flushed
  std::FILE* file_ = nullptr;
  std::string path_;
  GroupCommitConfig config_;
  Clock* clock_ = nullptr;
  bool writer_running_ = false;
  bool stopping_ = false;
  // Batch-boundary kick: skip the linger windows for the current
  // group. Cleared once the writer drains the queue.
  bool kick_ = false;
  // True while the writer thread runs WriteBuffer outside mu_;
  // TruncateBefore waits for it to clear before swapping the file.
  bool io_in_flight_ = false;
  std::thread writer_;
  std::deque<Pending> queue_;
  uint64_t next_sequence_ = 1;
  uint64_t durable_sequence_ = 0;
  // Cut-point trackers, updated at the sequencing points and seeded
  // by Open's scan (or the compaction marker).
  uint64_t promise_id_watermark_ = 0;
  Timestamp last_timestamp_ = 0;
  // First write failure; poisons all later appends/waits until Open.
  Status failed_ = Status::OK();
  // One-shot torn-write injection: npos = disabled.
  std::atomic<size_t> torn_write_bytes_{kNoTornWrite};
  static constexpr size_t kNoTornWrite = static_cast<size_t>(-1);
};

}  // namespace promises

#endif  // PROMISES_CORE_OPLOG_H_
