#include "core/escrow.h"

#include <algorithm>

namespace promises {

namespace {
// Only a decrement can drain; only an increment can grow. Uncommitted
// effects in the other direction count as zero.
int64_t DrainPart(int64_t min_delta) { return std::min<int64_t>(0, min_delta); }
int64_t GrowPart(int64_t max_delta) { return std::max<int64_t>(0, max_delta); }
}  // namespace

EscrowAccount::EscrowAccount(int64_t initial, int64_t floor, int64_t ceiling)
    : floor_(floor), ceiling_(ceiling) {
  hot_.value = initial;
}

Result<EscrowOpId> EscrowAccount::Begin(int64_t min_delta,
                                        int64_t max_delta) {
  if (min_delta > max_delta) {
    return Status::InvalidArgument("min_delta exceeds max_delta");
  }
  int64_t low = hot_.value + hot_.inflight_min + DrainPart(min_delta);
  int64_t high = hot_.value + hot_.inflight_max + GrowPart(max_delta);
  if (low < floor_) {
    return Status::FailedPrecondition(
        "escrow: worst-case value " + std::to_string(low) +
        " would breach floor " + std::to_string(floor_));
  }
  if (high > ceiling_) {
    return Status::FailedPrecondition(
        "escrow: worst-case value " + std::to_string(high) +
        " would breach ceiling " + std::to_string(ceiling_));
  }
  EscrowOpId id = next_op_++;
  ops_[id] = Op{min_delta, max_delta};
  hot_.inflight_min += DrainPart(min_delta);
  hot_.inflight_max += GrowPart(max_delta);
  return id;
}

Status EscrowAccount::Commit(EscrowOpId op, int64_t delta) {
  auto it = ops_.find(op);
  if (it == ops_.end()) {
    return Status::NotFound("escrow op " + std::to_string(op) +
                            " not in flight");
  }
  if (delta < it->second.min_delta || delta > it->second.max_delta) {
    return Status::InvalidArgument(
        "escrow: actual delta " + std::to_string(delta) +
        " outside declared [" + std::to_string(it->second.min_delta) + ", " +
        std::to_string(it->second.max_delta) + "]");
  }
  hot_.inflight_min -= DrainPart(it->second.min_delta);
  hot_.inflight_max -= GrowPart(it->second.max_delta);
  ops_.erase(it);
  hot_.value += delta;
  return Status::OK();
}

Status EscrowAccount::Abort(EscrowOpId op) {
  auto it = ops_.find(op);
  if (it == ops_.end()) {
    return Status::NotFound("escrow op " + std::to_string(op) +
                            " not in flight");
  }
  hot_.inflight_min -= DrainPart(it->second.min_delta);
  hot_.inflight_max -= GrowPart(it->second.max_delta);
  ops_.erase(it);
  return Status::OK();
}

}  // namespace promises
