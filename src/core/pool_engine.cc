#include "core/pool_engine.h"

#include <algorithm>

#include "common/string_util.h"

namespace promises {

Status ResourcePoolEngine::Reserve(Transaction* txn,
                                   const PromiseRecord& record,
                                   const Predicate& pred) {
  if (pred.kind() != PredicateKind::kQuantity) {
    return Status::InvalidArgument(
        "resource-pool engine only supports quantity predicates");
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t quantity, ctx_.rm->GetQuantity(txn, cls_));
  int64_t amount = pred.amount();
  if (reserved_ + amount > quantity) {
    return Status::FailedPrecondition(
        "pool '" + cls_ + "': " + std::to_string(reserved_) +
        " already reserved of " + std::to_string(quantity) +
        ", cannot reserve " + std::to_string(amount) + " more");
  }
  LedgerKey key = KeyOf(record.id, pred);
  reserved_ += amount;
  remaining_[key] += amount;
  txn->PushUndo([this, key, amount] {
    reserved_ -= amount;
    auto it = remaining_.find(key);
    if (it != remaining_.end()) {
      it->second -= amount;
      if (it->second == 0) remaining_.erase(it);
    }
  });
  return Status::OK();
}

Status ResourcePoolEngine::Unreserve(Transaction* txn, PromiseId id,
                                     const Predicate& pred) {
  if (pred.kind() != PredicateKind::kQuantity) return Status::OK();
  LedgerKey key = KeyOf(id, pred);
  auto it = remaining_.find(key);
  if (it == remaining_.end()) {
    return Status::Internal("pool '" + cls_ + "': no reservation for " +
                            id.ToString() + " / " + pred.ToString());
  }
  int64_t released = it->second;
  reserved_ -= released;
  remaining_.erase(it);
  txn->PushUndo([this, key, released] {
    reserved_ += released;
    remaining_[key] = released;
  });
  return Status::OK();
}

Status ResourcePoolEngine::NoteConsumed(Transaction* txn, PromiseId id,
                                        const Predicate& pred,
                                        int64_t amount) {
  if (pred.kind() != PredicateKind::kQuantity || amount <= 0) {
    return Status::OK();
  }
  auto it = remaining_.find(KeyOf(id, pred));
  if (it == remaining_.end()) return Status::OK();  // nothing in escrow
  // Consumption beyond the reservation is unprotected; only the held
  // part leaves escrow.
  int64_t drawn = std::min(amount, it->second);
  it->second -= drawn;
  reserved_ -= drawn;
  LedgerKey key = it->first;
  txn->PushUndo([this, key, drawn] {
    reserved_ += drawn;
    remaining_[key] += drawn;
  });
  return Status::OK();
}

Result<int64_t> ResourcePoolEngine::QuantityHeadroom(Transaction* txn,
                                                     Timestamp now) {
  (void)now;
  PROMISES_ASSIGN_OR_RETURN(int64_t quantity, ctx_.rm->GetQuantity(txn, cls_));
  return std::max<int64_t>(0, quantity - reserved_);
}

Status ResourcePoolEngine::VerifyConsistent(Transaction* txn, Timestamp now) {
  (void)now;  // Expiry is handled by the manager calling Unreserve.
  PROMISES_ASSIGN_OR_RETURN(int64_t quantity, ctx_.rm->GetQuantity(txn, cls_));
  if (reserved_ > quantity) {
    return Status::Violated("pool '" + cls_ + "': " +
                            std::to_string(reserved_) + " reserved but only " +
                            std::to_string(quantity) + " on hand");
  }
  return Status::OK();
}

Result<std::string> ResourcePoolEngine::ResolveInstance(
    Transaction* txn, PromiseId id, const Predicate& pred,
    int64_t already_taken) {
  (void)txn;
  (void)id;
  (void)pred;
  (void)already_taken;
  return Status::Unimplemented("pool resources have no instances");
}

std::string ResourcePoolEngine::SerializeState() const {
  std::string out;
  EncodeField(&out, "pool1");
  EncodeField(&out, std::to_string(reserved_));
  EncodeField(&out, std::to_string(remaining_.size()));
  for (const auto& [key, remaining] : remaining_) {
    EncodeField(&out, std::to_string(key.first.value()));
    EncodeField(&out, key.second);
    EncodeField(&out, std::to_string(remaining));
  }
  return out;
}

Status ResourcePoolEngine::RestoreState(const std::string& blob) {
  std::string_view cursor(blob);
  auto next = [&cursor]() -> Result<int64_t> {
    PROMISES_ASSIGN_OR_RETURN(std::string field, DecodeField(&cursor));
    return ParseInt64(field);
  };
  PROMISES_ASSIGN_OR_RETURN(std::string tag, DecodeField(&cursor));
  if (tag != "pool1") {
    return Status::InvalidArgument("pool engine '" + cls_ +
                                   "': unknown state tag '" + tag + "'");
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t reserved, next());
  PROMISES_ASSIGN_OR_RETURN(int64_t entries, next());
  std::map<LedgerKey, int64_t> remaining;
  for (int64_t i = 0; i < entries; ++i) {
    PROMISES_ASSIGN_OR_RETURN(int64_t id, next());
    PROMISES_ASSIGN_OR_RETURN(std::string pred, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(int64_t units, next());
    remaining[{PromiseId(static_cast<uint64_t>(id)), std::move(pred)}] =
        units;
  }
  reserved_ = reserved;
  remaining_ = std::move(remaining);
  return Status::OK();
}

}  // namespace promises
