#include "core/promise_manager.h"

#include <algorithm>
#include <thread>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/delegation_engine.h"
#include "core/federated_engine.h"
#include "core/pool_engine.h"
#include "core/satisfiability_engine.h"
#include "core/tag_engine.h"
#include "core/tentative_engine.h"
#include "predicate/evaluator.h"

namespace promises {

namespace {

// Parallel tail replay re-executes records on worker threads; each
// record must consume the exact promise id it consumed originally even
// though the generator would hand ids out in worker-arrival order.
// A worker pins the record's id here before calling Handle; GrantLocked
// consumes it instead of the generator. Thread-local, so concurrent
// workers cannot steal each other's ids.
thread_local uint64_t tls_forced_promise_id = 0;

}  // namespace

thread_local PromiseManager::EpochTls* PromiseManager::tls_epoch_ = nullptr;

PromiseManager::PromiseManager(PromiseManagerConfig config, Clock* clock,
                               ResourceManager* rm, TransactionManager* tm,
                               Transport* transport)
    : config_(std::move(config)),
      clock_(clock),
      rm_(rm),
      tm_(tm),
      transport_(transport) {
  if (transport_ != nullptr) {
    transport_->Register(config_.name, [this](const Envelope& request) {
      return Handle(request);
    });
  }
}

PromiseManager::~PromiseManager() {
  if (transport_ != nullptr) transport_->Unregister(config_.name);
}

bool PromiseManager::IsDelegated(const std::string& cls) const {
  std::lock_guard<std::mutex> lk(config_mu_);
  return delegated_.count(cls) > 0;
}

bool PromiseManager::IsFederated(const std::string& cls) const {
  std::lock_guard<std::mutex> lk(config_mu_);
  return federated_.count(cls) > 0;
}

void PromiseManager::ExpandClasses(std::set<std::string>* classes) const {
  std::lock_guard<std::mutex> lk(config_mu_);
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::string> add;
    for (const std::string& cls : *classes) {
      auto fit = federated_.find(cls);
      if (fit != federated_.end()) {
        for (const std::string& member : fit->second) {
          if (classes->count(member) == 0) add.push_back(member);
        }
      }
      auto vit = member_to_virtual_.find(cls);
      if (vit != member_to_virtual_.end()) {
        for (const std::string& virt : vit->second) {
          if (classes->count(virt) == 0) add.push_back(virt);
        }
      }
    }
    for (std::string& cls : add) {
      if (classes->insert(std::move(cls)).second) changed = true;
    }
  }
}

void PromiseManager::AddDueClasses(std::set<std::string>* classes) const {
  if (classes->empty()) return;
  std::vector<std::vector<std::string>> due;
  for (PromiseId id : table_.DueIds(clock_->Now())) {
    if (auto cls = table_.ClassesOf(id)) due.push_back(std::move(*cls));
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::vector<std::string>& cls_list : due) {
      bool overlaps = false;
      for (const std::string& cls : cls_list) {
        if (classes->count(cls)) {
          overlaps = true;
          break;
        }
      }
      if (!overlaps) continue;
      for (const std::string& cls : cls_list) {
        if (classes->insert(cls).second) changed = true;
      }
    }
  }
}

void PromiseManager::PlanClosure(std::set<std::string>* classes) const {
  size_t before;
  do {
    before = classes->size();
    ExpandClasses(classes);
    AddDueClasses(classes);
  } while (classes->size() != before);
}

Result<std::unique_ptr<Transaction>> PromiseManager::BeginOperation(
    LockScope* scope, std::set<std::string> classes, bool whole_manager) {
  // Logged managers keep the striped scope: log order is fixed at the
  // OperationLog sequencing point, reached before the commit releases
  // these locks, so it remains a valid serialization order without
  // whole-manager exclusion (see the file header).
  // Inside an epoch the executor's partitioning is the serialization
  // guarantee: the transaction skips the lock manager entirely (its
  // Lock() calls only record the write set) and the planned closure is
  // checked against the partition instead — escaping it is a miss the
  // executor retries in the epoch's serial phase.
  std::unique_ptr<Transaction> txn =
      tls_epoch_ != nullptr ? tm_->BeginPreSerialized() : tm_->Begin();
  if (whole_manager) {
    PROMISES_RETURN_IF_ERROR(txn->Lock(RootKey(), LockMode::kExclusive));
    scope->whole_manager = true;
    CaptureScopeClasses(*scope);
    return txn;
  }
  PlanClosure(&classes);
  if (tls_epoch_ != nullptr && tls_epoch_->allowed != nullptr) {
    for (const std::string& cls : classes) {
      if (tls_epoch_->allowed->count(cls) == 0) {
        tls_epoch_->miss = true;
        return Status::Unavailable("epoch partition miss on class '" + cls +
                                   "'");
      }
    }
  }
  // Deterministic order: root first, then stripes sorted by class name
  // (std::set iteration). Keeps planned acquisitions deadlock-free.
  PROMISES_RETURN_IF_ERROR(txn->Lock(RootKey(), LockMode::kShared));
  for (const std::string& cls : classes) {
    PROMISES_RETURN_IF_ERROR(
        txn->Lock(StripeKey(cls), LockMode::kExclusive));
  }
  scope->classes = std::move(classes);
  // Copy-on-read for an in-flight fuzzy capture: any still-pending
  // class in this scope is snapshotted now, before the operation can
  // mutate it (see CaptureCheckpoint).
  CaptureScopeClasses(*scope);
  return txn;
}

Status PromiseManager::EnsureClassLocked(Transaction* txn, LockScope* scope,
                                         const std::string& cls) {
  if (scope->Covers(cls)) return Status::OK();
  std::set<std::string> add{cls};
  ExpandClasses(&add);
  for (const std::string& c : add) {
    if (scope->Covers(c)) continue;
    if (tls_epoch_ != nullptr && tls_epoch_->allowed != nullptr &&
        tls_epoch_->allowed->count(c) == 0) {
      // Runtime escape from the epoch partition (ill-behaved service
      // touching an unplanned class): the operation must roll back
      // fully and rerun in the serial phase, where it may touch
      // anything.
      tls_epoch_->miss = true;
      return Status::Unavailable("epoch partition miss on class '" + c + "'");
    }
    PROMISES_RETURN_IF_ERROR(txn->Lock(StripeKey(c), LockMode::kExclusive));
    scope->classes.insert(c);
    CaptureClassIfPending(c);
  }
  return Status::OK();
}

void PromiseManager::AddPromiseClasses(std::set<std::string>* classes,
                                       PromiseId id) const {
  if (auto cls = table_.ClassesOf(id)) {
    classes->insert(cls->begin(), cls->end());
  }
}

void PromiseManager::AddActionClasses(std::set<std::string>* classes,
                                      const ActionBody& action) const {
  for (const auto& [name, value] : action.params) {
    (void)name;
    if (!value.is_string()) continue;
    const std::string& cls = value.as_string();
    if (rm_->HasPool(cls) || rm_->HasInstanceClass(cls) ||
        IsFederated(cls) || IsDelegated(cls)) {
      classes->insert(cls);
    }
  }
}

Result<ResourceEngine*> PromiseManager::EngineFor(const std::string& cls) {
  {
    std::lock_guard<std::mutex> lk(engines_mu_);
    auto it = engines_.find(cls);
    if (it != engines_.end()) return it->second.get();
  }
  // Creation is serialized per class because EngineFor(cls) is only
  // called while holding cls's stripe; engines_mu_ protects the map
  // shape against concurrent insertions for other classes.
  EngineContext ctx{rm_, &table_, clock_};
  std::unique_ptr<ResourceEngine> engine;
  bool is_federated = false;
  bool is_delegated = false;
  std::vector<std::string> members;
  std::string upstream;
  {
    std::lock_guard<std::mutex> lk(config_mu_);
    auto fit = federated_.find(cls);
    if (fit != federated_.end()) {
      is_federated = true;
      members = fit->second;
    }
    auto dit = delegated_.find(cls);
    if (dit != delegated_.end()) {
      is_delegated = true;
      upstream = dit->second;
    }
  }
  if (is_federated) {
    engine = std::make_unique<FederatedEngine>(cls, members, ctx);
  } else if (is_delegated) {
    engine = std::make_unique<DelegationEngine>(cls, ctx, transport_,
                                                upstream, config_.name);
  } else {
    bool is_pool = rm_->HasPool(cls);
    bool is_instance = rm_->HasInstanceClass(cls);
    if (!is_pool && !is_instance) {
      return Status::NotFound("resource class '" + cls + "' not found");
    }
    switch (config_.policy.For(cls, is_pool)) {
      case Technique::kSatisfiability:
        engine = std::make_unique<SatisfiabilityEngine>(cls, is_pool, ctx);
        break;
      case Technique::kResourcePool:
        if (!is_pool) {
          return Status::InvalidArgument(
              "resource-pool technique requires a pool class ('" + cls +
              "' is an instance class)");
        }
        engine = std::make_unique<ResourcePoolEngine>(cls, ctx);
        break;
      case Technique::kAllocatedTags:
        if (!is_instance) {
          return Status::InvalidArgument(
              "allocated-tags technique requires an instance class ('" + cls +
              "' is a pool)");
        }
        engine = std::make_unique<AllocatedTagEngine>(cls, ctx);
        break;
      case Technique::kTentative:
        if (!is_instance) {
          return Status::InvalidArgument(
              "tentative technique requires an instance class ('" + cls +
              "' is a pool)");
        }
        engine = std::make_unique<TentativeEngine>(cls, ctx);
        break;
      case Technique::kDelegated:
        return Status::InvalidArgument(
            "class '" + cls +
            "' marked delegated but no upstream configured; call "
            "DelegateClass first");
    }
  }
  std::lock_guard<std::mutex> lk(engines_mu_);
  auto [it, inserted] = engines_.try_emplace(cls, std::move(engine));
  (void)inserted;
  return it->second.get();
}

Status PromiseManager::ExpireDueLocked(Transaction* txn,
                                       const LockScope& scope) {
  Timestamp now = clock_->Now();
  for (PromiseId id : table_.DueIds(now)) {
    auto classes = table_.ClassesOf(id);
    if (!classes) continue;  // removed by a concurrent operation
    // Only expire promises whose every class is inside the held
    // stripes; uncovered ones are another operation's (or the
    // whole-manager ExpireDue's) job. Sound because availability on a
    // class only depends on promises covering that class.
    if (!scope.CoversAll(*classes)) continue;
    PROMISES_RETURN_IF_ERROR(
        ReleaseOneLocked(txn, id, PromiseState::kExpired));
    stats_.expired.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status PromiseManager::DrainPendingScoped(Transaction* txn,
                                          const LockScope& scope) {
  Timestamp now = clock_->Now();
  // Claim eligible entries by extraction so two concurrent drains can
  // never grant the same ticket twice; failures are re-queued below.
  std::vector<PendingRequest> claimed;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    if (pending_.empty()) return Status::OK();
    std::vector<PendingRequest> keep;
    keep.reserve(pending_.size());
    for (PendingRequest& req : pending_) {
      bool lapsed = now >= req.patience_deadline;
      bool covered = true;
      if (!lapsed && !scope.whole_manager) {
        for (const Predicate& p : req.predicates) {
          if (!scope.Covers(p.resource_class())) {
            covered = false;
            break;
          }
        }
      }
      if (lapsed || covered) {
        claimed.push_back(std::move(req));
      } else {
        keep.push_back(std::move(req));
      }
    }
    pending_ = std::move(keep);
  }
  if (claimed.empty()) return Status::OK();

  Status failure;
  std::vector<PendingRequest> still_waiting;
  for (PendingRequest& req : claimed) {
    if (!failure.ok()) {
      still_waiting.push_back(std::move(req));
      continue;
    }
    if (now >= req.patience_deadline) {
      GrantOutcome out;
      out.accepted = false;
      out.reason = "pending request lapsed after " +
                   std::to_string(config_.pending_patience_ms) + " ms";
      std::lock_guard<std::mutex> lk(pending_mu_);
      fulfilled_[req.ticket] = {req.client, std::move(out)};
      continue;
    }
    Result<GrantOutcome> out =
        GrantLocked(txn, req.client, req.predicates, req.duration_ms, {});
    if (!out.ok()) {
      failure = out.status();
      still_waiting.push_back(std::move(req));
      continue;
    }
    if (out->accepted) {
      std::lock_guard<std::mutex> lk(pending_mu_);
      fulfilled_[req.ticket] = {req.client, std::move(*out)};
    } else {
      // Best-effort FIFO: an ungrantable head does not block smaller
      // requests behind it.
      still_waiting.push_back(std::move(req));
    }
  }
  if (!still_waiting.empty()) {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (PendingRequest& req : still_waiting) {
      pending_.push_back(std::move(req));
    }
    std::sort(pending_.begin(), pending_.end(),
              [](const PendingRequest& a, const PendingRequest& b) {
                return a.ticket < b.ticket;
              });
  }
  return failure;
}

Result<PromiseManager::QueuedOutcome> PromiseManager::RequestPromiseOrQueue(
    ClientId client, std::vector<Predicate> predicates,
    DurationMs duration_ms) {
  if (oplog_.load(std::memory_order_acquire) != nullptr) {
    // Queued grants fire outside the logged command stream; the two
    // features do not compose in this version.
    return Status::FailedPrecondition(
        "pending requests are not supported with an attached log");
  }
  std::set<std::string> classes;
  for (const Predicate& p : predicates) classes.insert(p.resource_class());
  LockScope scope;
  PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn,
                            BeginOperation(&scope, std::move(classes)));
  PROMISES_RETURN_IF_ERROR(ExpireDueLocked(txn.get(), scope));
  PROMISES_ASSIGN_OR_RETURN(
      GrantOutcome out,
      GrantLocked(txn.get(), client, predicates, duration_ms, {}));
  QueuedOutcome result;
  if (out.accepted) {
    result.outcome = std::move(out);
  } else {
    result.queued = true;
    Timestamp deadline = clock_->Now() + config_.pending_patience_ms;
    std::lock_guard<std::mutex> lk(pending_mu_);
    result.ticket = next_ticket_++;
    pending_.push_back(PendingRequest{result.ticket, client,
                                      std::move(predicates), duration_ms,
                                      deadline});
  }
  PROMISES_RETURN_IF_ERROR(txn->Commit());
  return result;
}

Result<PromiseManager::QueuedOutcome> PromiseManager::PollPending(
    ClientId client, PendingTicket ticket) {
  // A poll is a progress point: lapse promises and retry the queue. If
  // the ticket is still queued, plan its own predicate classes so this
  // very poll can grant it; a fulfilled ticket needs no stripes.
  std::set<std::string> classes;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (const PendingRequest& req : pending_) {
      if (req.ticket != ticket) continue;
      for (const Predicate& p : req.predicates) {
        classes.insert(p.resource_class());
      }
      break;
    }
  }
  LockScope scope;
  PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn,
                            BeginOperation(&scope, std::move(classes)));
  PROMISES_RETURN_IF_ERROR(ExpireDueLocked(txn.get(), scope));
  PROMISES_RETURN_IF_ERROR(DrainPendingScoped(txn.get(), scope));

  Result<QueuedOutcome> result = [&]() -> Result<QueuedOutcome> {
    std::lock_guard<std::mutex> lk(pending_mu_);
    auto it = fulfilled_.find(ticket);
    if (it != fulfilled_.end()) {
      if (it->second.first != client) {
        return Status::FailedPrecondition("ticket belongs to another client");
      }
      QueuedOutcome out;
      out.outcome = std::move(it->second.second);
      fulfilled_.erase(it);
      return out;
    }
    for (const PendingRequest& req : pending_) {
      if (req.ticket != ticket) continue;
      if (req.client != client) {
        return Status::FailedPrecondition("ticket belongs to another client");
      }
      QueuedOutcome out;
      out.queued = true;
      out.ticket = ticket;
      return out;
    }
    return Status::NotFound("unknown ticket " + std::to_string(ticket));
  }();
  PROMISES_RETURN_IF_ERROR(txn->Commit());
  return result;
}

Status PromiseManager::CancelPending(ClientId client, PendingTicket ticket) {
  // Claim the ticket first (atomic under the queue mutex): a still-
  // queued request just disappears; a fulfilled-but-unpolled grant must
  // release its promise under that promise's stripes.
  GrantOutcome fulfilled_out;
  bool was_fulfilled = false;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->ticket != ticket) continue;
      if (it->client != client) {
        return Status::FailedPrecondition("ticket belongs to another client");
      }
      pending_.erase(it);
      return Status::OK();
    }
    auto it = fulfilled_.find(ticket);
    if (it != fulfilled_.end() && it->second.first == client) {
      fulfilled_out = std::move(it->second.second);
      fulfilled_.erase(it);
      was_fulfilled = true;
    }
  }
  if (!was_fulfilled) {
    return Status::NotFound("unknown ticket " + std::to_string(ticket));
  }
  if (!fulfilled_out.accepted) return Status::OK();

  std::set<std::string> classes;
  AddPromiseClasses(&classes, fulfilled_out.promise_id);
  LockScope scope;
  PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn,
                            BeginOperation(&scope, std::move(classes)));
  Status st = ReleaseOneLocked(txn.get(), fulfilled_out.promise_id,
                               PromiseState::kReleased);
  if (st.ok()) {
    stats_.released.fetch_add(1, std::memory_order_relaxed);
  } else if (!st.IsNotFound()) {
    // NotFound: the grant already expired between claim and lock.
    return st;
  }
  PROMISES_RETURN_IF_ERROR(DrainPendingScoped(txn.get(), scope));
  return txn->Commit();
}

Status PromiseManager::ReleaseOneLocked(Transaction* txn, PromiseId id,
                                        PromiseState final_state) {
  PromiseRecord* rec = table_.FindMutable(id);
  if (rec == nullptr) {
    return Status::NotFound("promise " + id.ToString() + " not in table");
  }
  for (const Predicate& pred : rec->predicates) {
    PROMISES_ASSIGN_OR_RETURN(ResourceEngine * engine,
                              EngineFor(pred.resource_class()));
    PROMISES_RETURN_IF_ERROR(engine->Unreserve(txn, id, pred));
  }
  PROMISES_ASSIGN_OR_RETURN(PromiseRecord removed, table_.Remove(id));
  removed.state = final_state;
  txn->PushUndo([this, removed] {
    PromiseRecord restore = removed;
    restore.state = PromiseState::kActive;
    (void)table_.Insert(std::move(restore));
  });
  return Status::OK();
}

Result<GrantOutcome> PromiseManager::GrantLocked(
    Transaction* txn, ClientId client, std::vector<Predicate> predicates,
    DurationMs duration_ms, const std::vector<PromiseId>& handbacks) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  const size_t mark = txn->UndoDepth();
  Timestamp now = clock_->Now();

  // Counter-offer (§6 "accepted with the condition XX"): the strongest
  // weaker variant currently grantable. Quantity predicates shrink to
  // the pool headroom; property predicates shrink to their count
  // headroom. Runs after the rejection rollback, so engine headroom
  // reflects pre-request state. Exact for single-predicate requests;
  // best-effort for multi-predicate ones (per-class headrooms are not
  // re-verified jointly).
  auto counter_offer = [&](const std::vector<Predicate>& preds)
      -> std::string {
    bool reduced = false;
    std::vector<std::string> parts;
    for (const Predicate& pred : preds) {
      Result<ResourceEngine*> engine = EngineFor(pred.resource_class());
      if (!engine.ok()) return "";
      if (pred.kind() == PredicateKind::kQuantity) {
        Result<int64_t> headroom = (*engine)->QuantityHeadroom(txn, now);
        if (!headroom.ok() || *headroom <= 0) return "";
        int64_t offer = std::min(pred.amount(), *headroom);
        if (offer < pred.amount()) reduced = true;
        parts.push_back(
            Predicate::Quantity(pred.resource_class(), CompareOp::kGe, offer)
                .ToString());
      } else if (pred.kind() == PredicateKind::kProperty) {
        Result<int64_t> headroom = (*engine)->CountHeadroom(txn, now, pred);
        if (!headroom.ok() || *headroom <= 0) return "";
        int64_t offer = std::min(pred.count(), *headroom);
        if (offer < pred.count()) reduced = true;
        parts.push_back(
            Predicate::Property(pred.resource_class(), pred.match(), offer)
                .ToString());
      } else {
        return "";  // a pinned named instance has no weaker form
      }
    }
    if (!reduced) return "";  // rejection had some other cause
    std::string joined;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) joined += "; ";
      joined += parts[i];
    }
    return joined;
  };

  const std::vector<Predicate>* preds_for_offer = nullptr;
  PromiseId consumed_id;  // set once the generator has been consumed
  auto reject = [&](std::string reason) {
    txn->RollbackTo(mark);
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    GrantOutcome out;
    out.accepted = false;
    out.reason = std::move(reason);
    out.consumed_id = consumed_id;
    if (preds_for_offer != nullptr) {
      out.counter_offer = counter_offer(*preds_for_offer);
    }
    return out;
  };

  if (predicates.empty()) {
    return reject("promise request carries no predicates");
  }

  // Validate the handbacks before touching anything: §4 — "the previous
  // one should be retained if the service can't guarantee the modified
  // request".
  for (PromiseId id : handbacks) {
    const PromiseRecord* rec = table_.Find(id);
    if (rec == nullptr || !rec->ActiveAt(now)) {
      return reject("handback promise " + id.ToString() + " is not active");
    }
    if (rec->owner != client) {
      return reject("handback promise " + id.ToString() +
                    " is owned by another client");
    }
  }

  // Validate predicates against local resource definitions (delegated
  // classes are validated by their upstream maker; federated classes
  // by their engine against member schemas).
  for (const Predicate& pred : predicates) {
    if (IsDelegated(pred.resource_class()) ||
        IsFederated(pred.resource_class())) {
      continue;
    }
    Status st = ValidatePredicate(pred, *rm_);
    if (!st.ok()) return reject(st.ToString());
  }

  // Atomic update: hand back the old promises first so their resources
  // count toward the new request; all of it rolls back on rejection.
  for (PromiseId id : handbacks) {
    PROMISES_RETURN_IF_ERROR(
        ReleaseOneLocked(txn, id, PromiseState::kReleased));
  }

  DurationMs requested =
      duration_ms > 0 ? duration_ms : config_.default_duration_ms;
  DurationMs granted_duration = std::min(requested, config_.max_duration_ms);

  PromiseRecord record;
  if (tls_forced_promise_id != 0) {
    record.id = PromiseId(tls_forced_promise_id);
    tls_forced_promise_id = 0;
  } else {
    record.id = promise_ids_.Next();
  }
  consumed_id = record.id;
  record.owner = client;
  record.predicates = std::move(predicates);
  record.granted_at = now;
  record.expires_at = now + granted_duration;

  PromiseId new_id = record.id;
  PROMISES_RETURN_IF_ERROR(table_.Insert(record));
  txn->PushUndo([this, new_id] { (void)table_.Remove(new_id); });

  preds_for_offer = &record.predicates;
  for (const Predicate& pred : record.predicates) {
    Result<ResourceEngine*> engine = EngineFor(pred.resource_class());
    if (!engine.ok()) return reject(engine.status().ToString());
    Status st = (*engine)->Reserve(txn, record, pred);
    if (st.code() == StatusCode::kFailedPrecondition ||
        st.code() == StatusCode::kNotFound ||
        st.code() == StatusCode::kInvalidArgument) {
      return reject(st.ToString());
    }
    PROMISES_RETURN_IF_ERROR(st);
  }

  stats_.granted.fetch_add(1, std::memory_order_relaxed);
  if (!handbacks.empty()) {
    stats_.updates.fetch_add(1, std::memory_order_relaxed);
  }
  GrantOutcome out;
  out.accepted = true;
  out.promise_id = new_id;
  out.consumed_id = new_id;
  out.duration_ms = granted_duration;
  return out;
}

Status PromiseManager::VerifyAllLocked(Transaction* txn) {
  Timestamp now = clock_->Now();
  std::vector<ResourceEngine*> engines;
  {
    std::lock_guard<std::mutex> lk(engines_mu_);
    engines.reserve(engines_.size());
    for (auto& [cls, engine] : engines_) {
      (void)cls;
      engines.push_back(engine.get());
    }
  }
  for (ResourceEngine* engine : engines) {
    PROMISES_RETURN_IF_ERROR(engine->VerifyConsistent(txn, now));
  }
  return Status::OK();
}

Status PromiseManager::VerifyTouchedLocked(Transaction* txn,
                                           LockScope* scope) {
  if (scope->whole_manager) return VerifyAllLocked(txn);
  // The held stripes, plus any class the action wrote through the
  // resource manager behind the manager's back — §8: "the promise
  // manager cannot rely on the application code being always
  // well-behaved". Writes show up as exclusive "pool:<cls>" /
  // "class:<cls>" resource keys on this transaction; their stripes are
  // late-locked (deadlock detection backstops the out-of-order grab).
  // The write set comes from the transaction's own record rather than
  // the lock manager so pre-serialized (epoch) transactions — which
  // never register with the lock manager — verify identically.
  std::set<std::string> touched = scope->classes;
  for (const std::string& key : txn->ExclusiveKeys()) {
    std::string cls;
    if (StartsWith(key, "pool:")) {
      cls = key.substr(5);
    } else if (StartsWith(key, "class:")) {
      cls = key.substr(6);
    } else {
      continue;
    }
    touched.insert(std::move(cls));
  }
  ExpandClasses(&touched);
  // A write that reached the resource manager without its stripe held
  // bypassed the copy-on-read hook: if the class is still pending in an
  // active capture, its at-cut state is unrecoverable — poison the
  // capture (CaptureCheckpoint retries with a fresh cut). Must happen
  // before EnsureClassLocked below would "capture" the mutated state.
  if (capture_active_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(capture_mu_);
    if (capture_.active && !capture_.poisoned) {
      for (const std::string& cls : touched) {
        if (!scope->Covers(cls) && capture_.pending.count(cls) > 0) {
          capture_.poisoned = true;
          capture_.poison_reason =
              "raw resource-manager write to uncaptured class '" + cls + "'";
          break;
        }
      }
    }
  }
  Timestamp now = clock_->Now();
  for (const std::string& cls : touched) {
    PROMISES_RETURN_IF_ERROR(EnsureClassLocked(txn, scope, cls));
    ResourceEngine* engine = EngineIfExists(cls);
    if (engine == nullptr) continue;  // no promises ever granted on it
    PROMISES_RETURN_IF_ERROR(engine->VerifyConsistent(txn, now));
  }
  return Status::OK();
}

Result<ActionOutcome> PromiseManager::ExecuteLocked(
    Transaction* txn, LockScope* scope, ClientId client,
    const ActionBody& action, const EnvironmentHeader& env) {
  stats_.actions.fetch_add(1, std::memory_order_relaxed);
  const size_t mark = txn->UndoDepth();
  Timestamp now = clock_->Now();

  auto fail = [&](std::string error) {
    txn->RollbackTo(mark);
    stats_.action_failures.fetch_add(1, std::memory_order_relaxed);
    ActionOutcome out;
    out.ok = false;
    out.error = std::move(error);
    return out;
  };

  // Validate the promise environment (§6): all promises must be active
  // and owned by the caller; using a lapsed one yields the §2
  // 'promise-expired' error.
  std::vector<PromiseId> env_ids;
  for (const EnvironmentHeader::Entry& e : env.entries) {
    const PromiseRecord* rec = table_.Find(e.promise);
    if (rec == nullptr || !rec->ActiveAt(now)) {
      stats_.expired_use_errors.fetch_add(1, std::memory_order_relaxed);
      return fail("promise-expired: " + e.promise.ToString() +
                  " is not active");
    }
    if (rec->owner != client) {
      return fail("promise " + e.promise.ToString() +
                  " is owned by another client");
    }
    env_ids.push_back(e.promise);
  }

  ServiceFn service;
  {
    std::lock_guard<std::mutex> lk(config_mu_);
    auto sit = services_.find(action.service);
    if (sit != services_.end()) service = sit->second;
  }
  if (!service) {
    return fail("unknown service '" + action.service + "'");
  }

  ActionContext ctx(this, txn, scope, client, env_ids);
  Result<std::map<std::string, Value>> result =
      service(&ctx, action.operation, action.params);
  if (!result.ok()) {
    if (tls_epoch_ != nullptr && tls_epoch_->miss) {
      // A partition miss inside the service is not an application
      // failure: propagate the error so the whole operation rolls
      // back (nothing logged) and the executor reruns it serially —
      // the striped path would simply have taken the stripe lock.
      return result.status();
    }
    return fail("action failed: " + result.status().ToString());
  }

  // Release-after entries form an atomic unit with the action (§2/§4):
  // they only happen because the action succeeded, and they roll back
  // if verification fails below.
  for (const EnvironmentHeader::Entry& e : env.entries) {
    if (!e.release_after) continue;
    PROMISES_RETURN_IF_ERROR(
        ReleaseOneLocked(txn, e.promise, PromiseState::kReleased));
    stats_.released.fetch_add(1, std::memory_order_relaxed);
  }

  // §8: "the promise manager cannot rely on the application code being
  // always well-behaved, so the promise manager also has to check for
  // consistency after an action has been completed."
  Status verify = VerifyTouchedLocked(txn, scope);
  if (verify.IsViolated()) {
    stats_.violations_rolled_back.fetch_add(1, std::memory_order_relaxed);
    return fail("rolled back: " + verify.ToString());
  }
  PROMISES_RETURN_IF_ERROR(verify);

  ActionOutcome out;
  out.ok = true;
  out.outputs = std::move(result).value();
  return out;
}

Result<GrantOutcome> PromiseManager::RequestPromise(
    ClientId client, std::vector<Predicate> predicates,
    DurationMs duration_ms, std::vector<PromiseId> release_on_grant) {
  // Direct-API root: callers that skip the envelope path (the scaling
  // workload, embedders) still get a phase breakdown when sampled.
  ScopedSpan op_span(Tracer::Global().StartTrace(), "request-promise");
  std::set<std::string> classes;
  for (const Predicate& p : predicates) classes.insert(p.resource_class());
  for (PromiseId id : release_on_grant) AddPromiseClasses(&classes, id);
  LockScope scope;
  PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn,
                            BeginOperation(&scope, std::move(classes)));
  PROMISES_RETURN_IF_ERROR(ExpireDueLocked(txn.get(), scope));
  std::string log_payload;
  if (oplog_.load(std::memory_order_acquire) != nullptr) {
    // Rejected requests are logged too: they may consume a promise id,
    // so replay must reproduce them to keep later ids aligned. Message
    // id 0 exempts the synthesized record from deduplication on replay.
    Envelope env;
    env.message_id = MessageId(0);
    env.from = NameOf(client);
    env.to = config_.name;
    PromiseRequestHeader req;
    req.request_id = RequestId(1);
    req.predicates = predicates;
    req.duration_ms = duration_ms;
    req.release_on_grant = release_on_grant;
    env.promise_request = std::move(req);
    log_payload = env.ToXml();
  }
  PROMISES_ASSIGN_OR_RETURN(
      GrantOutcome out,
      GrantLocked(txn.get(), client, std::move(predicates), duration_ms,
                  release_on_grant));
  // Sequenced before the commit releases the operation locks, so the
  // log order matches the serialization order (the in-memory commit
  // itself cannot fail); the durable ack is awaited after.
  LogTicket ticket;
  if (!log_payload.empty()) {
    ticket = LogOperation(log_payload, out.consumed_id);
  }
  PROMISES_RETURN_IF_ERROR(txn->Commit());
  PROMISES_RETURN_IF_ERROR(AwaitLogDurable(ticket));
  return out;
}

Status PromiseManager::Release(ClientId client,
                               const std::vector<PromiseId>& ids) {
  ScopedSpan op_span(Tracer::Global().StartTrace(), "release");
  std::set<std::string> classes;
  for (PromiseId id : ids) AddPromiseClasses(&classes, id);
  LockScope scope;
  PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn,
                            BeginOperation(&scope, std::move(classes)));
  PROMISES_RETURN_IF_ERROR(ExpireDueLocked(txn.get(), scope));
  std::string problems;
  for (PromiseId id : ids) {
    auto id_classes = table_.ClassesOf(id);
    if (!id_classes || !scope.CoversAll(*id_classes)) {
      // Gone (released/expired), or appeared after lock planning —
      // either way not releasable by this operation.
      problems += " " + id.ToString() + " not active;";
      continue;
    }
    const PromiseRecord* rec = table_.Find(id);
    if (rec == nullptr) {
      problems += " " + id.ToString() + " not active;";
      continue;
    }
    if (rec->owner != client) {
      problems += " " + id.ToString() + " owned by another client;";
      continue;
    }
    PROMISES_RETURN_IF_ERROR(
        ReleaseOneLocked(txn.get(), id, PromiseState::kReleased));
    stats_.released.fetch_add(1, std::memory_order_relaxed);
  }
  PROMISES_RETURN_IF_ERROR(DrainPendingScoped(txn.get(), scope));
  LogTicket ticket;
  if (oplog_.load(std::memory_order_acquire) != nullptr) {
    Envelope env;
    env.message_id = MessageId(0);  // exempt from dedup on replay
    env.from = NameOf(client);
    env.to = config_.name;
    env.release = ReleaseHeader{ids};
    ticket = LogOperation(env.ToXml());
  }
  PROMISES_RETURN_IF_ERROR(txn->Commit());
  PROMISES_RETURN_IF_ERROR(AwaitLogDurable(ticket));
  if (!problems.empty()) {
    return Status::NotFound("some releases failed:" + problems);
  }
  return Status::OK();
}

Result<ActionOutcome> PromiseManager::Execute(ClientId client,
                                              const ActionBody& action,
                                              const EnvironmentHeader& env) {
  ScopedSpan op_span(Tracer::Global().StartTrace(), "execute");
  std::set<std::string> classes;
  for (const EnvironmentHeader::Entry& e : env.entries) {
    AddPromiseClasses(&classes, e.promise);
  }
  AddActionClasses(&classes, action);
  LockScope scope;
  PROMISES_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn,
                            BeginOperation(&scope, std::move(classes)));
  PROMISES_RETURN_IF_ERROR(ExpireDueLocked(txn.get(), scope));
  PROMISES_ASSIGN_OR_RETURN(
      ActionOutcome out,
      ExecuteLocked(txn.get(), &scope, client, action, env));
  PROMISES_RETURN_IF_ERROR(DrainPendingScoped(txn.get(), scope));
  LogTicket ticket;
  if (oplog_.load(std::memory_order_acquire) != nullptr) {
    Envelope log_env;
    log_env.message_id = MessageId(0);  // exempt from dedup on replay
    log_env.from = NameOf(client);
    log_env.to = config_.name;
    log_env.environment = env;
    log_env.action = action;
    ticket = LogOperation(log_env.ToXml());
  }
  PROMISES_RETURN_IF_ERROR(txn->Commit());
  PROMISES_RETURN_IF_ERROR(AwaitLogDurable(ticket));
  return out;
}

ClientId PromiseManager::ClientFor(const std::string& name) {
  std::lock_guard<std::mutex> lk(client_mu_);
  auto it = client_ids_.find(name);
  if (it != client_ids_.end()) return it->second;
  ClientId id = client_id_gen_.Next();
  client_ids_[name] = id;
  client_names_[id] = name;
  return id;
}

const std::string& PromiseManager::NameOf(ClientId client) {
  static const std::string kUnknown = "unknown-client";
  std::lock_guard<std::mutex> lk(client_mu_);
  auto it = client_names_.find(client);
  return it == client_names_.end() ? kUnknown : it->second;
}

PromiseManager::LogTicket PromiseManager::LogOperation(
    const std::string& payload, PromiseId consumed) {
  LogTicket ticket;
  OperationLog* log = oplog_.load(std::memory_order_acquire);
  if (log == nullptr) return ticket;
  ticket.log = log;
  // The sequencing point: the record's position in the log is fixed
  // here, while this operation still holds its stripe locks.
  ScopedSpan append_span("oplog-append");
  Result<uint64_t> seq =
      log->AppendOperation(clock_, payload, consumed.value());
  if (!seq.ok()) {
    append_span.set_status(StatusCodeToString(seq.status().code()));
    ticket.enqueue_error = seq.status();
    return ticket;
  }
  ticket.sequence = *seq;
  return ticket;
}

Status PromiseManager::AwaitLogDurable(const LogTicket& ticket) {
  if (ticket.log == nullptr) return Status::OK();
  Status cause = ticket.enqueue_error;
  if (cause.ok()) {
    // Off the critical section: the operation's locks are released,
    // only its reply is held back until the group is durable.
    ScopedSpan wait_span("oplog-group-wait");
    cause = ticket.log->WaitDurable(ticket.sequence);
    if (!cause.ok()) {
      wait_span.set_status(StatusCodeToString(cause.code()));
    }
  }
  if (cause.ok()) return Status::OK();
  DetachLog(ticket.log, cause);
  return Status::DataLoss(
      "operation committed in memory but its log record was lost (log "
      "detached): " +
      cause.ToString());
}

void PromiseManager::DetachLog(OperationLog* expected, const Status& cause) {
  OperationLog* want = expected;
  if (!oplog_.compare_exchange_strong(want, nullptr,
                                      std::memory_order_acq_rel)) {
    return;  // another operation already detached it
  }
  static Counter* detached_total = MetricsRegistry::Global().GetCounter(
      "promises_oplog_detached_total");
  detached_total->Increment();
  ScopedSpan detach_span("oplog-detached");
  detach_span.set_status(StatusCodeToString(cause.code()));
}

Status PromiseManager::AttachLog(OperationLog* log) {
  if (log == nullptr || !log->IsOpen()) {
    return Status::InvalidArgument("log must be open");
  }
  {
    std::lock_guard<std::mutex> lk(config_mu_);
    if (!delegated_.empty()) {
      return Status::FailedPrecondition(
          "recovery logging is not supported with delegated classes");
    }
  }
  {
    // A queued request granted later by a drain would fire outside the
    // logged command stream (the same reason RequestPromiseOrQueue
    // refuses while attached).
    std::lock_guard<std::mutex> lk(pending_mu_);
    if (!pending_.empty()) {
      return Status::FailedPrecondition(
          "cannot attach a log while requests are queued as pending");
    }
  }
  {
    // The capture's cut LSN belongs to the log that was attached when
    // it was chosen; swapping logs mid-capture would splice two
    // sequence spaces.
    std::lock_guard<std::mutex> lk(capture_mu_);
    if (capture_.active) {
      return Status::FailedPrecondition(
          "cannot attach a log while a checkpoint capture is active");
    }
  }
  oplog_.store(log, std::memory_order_release);
  return Status::OK();
}

Status PromiseManager::ReplayLog(const std::vector<LogRecord>& records,
                                 SimulatedClock* clock) {
  if (oplog_.load(std::memory_order_acquire) != nullptr) {
    return Status::FailedPrecondition("detach the log before replaying");
  }
  uint64_t max_promise_id = 0;
  for (const LogRecord& record : records) {
    clock->AdvanceTo(record.timestamp);
    // The record carries the promise id its operation consumed at
    // runtime; pinning the generator reproduces it even though the
    // original allocation order (under striped concurrency) may not
    // have matched the log order.
    if (record.promise_id != 0) {
      promise_ids_.Pin(record.promise_id);
      max_promise_id = std::max(max_promise_id, record.promise_id);
    }
    if (StartsWith(record.payload, "<")) {
      PROMISES_ASSIGN_OR_RETURN(Envelope env,
                                Envelope::FromXml(record.payload));
      PROMISES_ASSIGN_OR_RETURN(Envelope reply, Handle(env));
      (void)reply;  // outcomes replay deterministically
    } else {
      // External events: "damage|<cls>|<qty>" / "lose|<cls>|<id>".
      std::vector<std::string> parts = Split(record.payload, '|');
      if (parts.size() == 3 && parts[0] == "damage") {
        PROMISES_ASSIGN_OR_RETURN(int64_t qty, ParseInt64(parts[2]));
        PROMISES_RETURN_IF_ERROR(
            ReportExternalDamage(parts[1], qty).status());
      } else if (parts.size() == 3 && parts[0] == "lose") {
        PROMISES_RETURN_IF_ERROR(
            ReportInstanceLost(parts[1], parts[2]).status());
      } else {
        return Status::InvalidArgument("unknown log record: " +
                                       record.payload);
      }
    }
  }
  // Leave the generator past every replayed id: the last record need
  // not carry the maximum (allocation could run ahead of log order).
  if (max_promise_id != 0) promise_ids_.Pin(max_promise_id + 1);
  return Status::OK();
}

Status PromiseManager::ReplayLogParallel(const std::vector<LogRecord>& records,
                                         SimulatedClock* clock, int workers) {
  if (workers <= 1 || records.size() < 2) return ReplayLog(records, clock);
  if (oplog_.load(std::memory_order_acquire) != nullptr) {
    return Status::FailedPrecondition("detach the log before replaying");
  }
  ScopedSpan replay_span("tail-replay");
  static Counter* tail_records_total = MetricsRegistry::Global().GetCounter(
      "promises_recovery_tail_records_total");
  static Counter* tail_segments_total = MetricsRegistry::Global().GetCounter(
      "promises_recovery_tail_segments_total");
  tail_records_total->Increment(records.size());

  // Phase 1 (parallel): parse each record and derive its dependency
  // footprint — the resource classes it plans (closed under
  // federation) and the promise ids it references or consumed.
  struct Planned {
    const LogRecord* record = nullptr;
    bool is_envelope = false;
    Envelope envelope;
    bool barrier = false;
    std::set<std::string> classes;
    std::vector<uint64_t> promise_ids;
  };
  std::vector<Planned> planned(records.size());
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status first_error;
  auto note_error = [&](const Status& st) {
    std::lock_guard<std::mutex> lk(error_mu);
    if (first_error.ok()) first_error = st;
    failed.store(true, std::memory_order_release);
  };
  {
    std::atomic<size_t> next_index{0};
    auto parse_worker = [&] {
      for (;;) {
        size_t i = next_index.fetch_add(1, std::memory_order_relaxed);
        if (i >= records.size()) break;
        if (failed.load(std::memory_order_acquire)) break;
        Planned& p = planned[i];
        p.record = &records[i];
        const std::string& payload = records[i].payload;
        if (StartsWith(payload, "<")) {
          Result<Envelope> env = Envelope::FromXml(payload);
          if (!env.ok()) {
            note_error(env.status());
            break;
          }
          p.is_envelope = true;
          p.envelope = std::move(*env);
          // Actions run arbitrary service code (the class-planning
          // heuristic is best-effort) and polls touch the global
          // pending queue: both replay serially, as barriers.
          p.barrier = p.envelope.action.has_value() ||
                      p.envelope.poll.has_value();
          if (p.envelope.promise_request) {
            for (const Predicate& pred :
                 p.envelope.promise_request->predicates) {
              p.classes.insert(pred.resource_class());
            }
            for (PromiseId id :
                 p.envelope.promise_request->release_on_grant) {
              p.promise_ids.push_back(id.value());
            }
          }
          if (p.envelope.release) {
            for (PromiseId id : p.envelope.release->promises) {
              p.promise_ids.push_back(id.value());
            }
          }
          if (p.envelope.environment) {
            for (const EnvironmentHeader::Entry& e :
                 p.envelope.environment->entries) {
              if (e.promise.valid()) p.promise_ids.push_back(e.promise.value());
            }
          }
          ExpandClasses(&p.classes);
        } else {
          // External events hunt broken promises over every class.
          p.barrier = true;
        }
        if (records[i].promise_id != 0) {
          p.promise_ids.push_back(records[i].promise_id);
        }
      }
    };
    size_t nparse = std::min<size_t>(static_cast<size_t>(workers),
                                     records.size());
    std::vector<std::thread> pool;
    for (size_t w = 1; w < nparse; ++w) pool.emplace_back(parse_worker);
    parse_worker();
    for (std::thread& t : pool) t.join();
  }
  if (failed.load(std::memory_order_acquire)) {
    replay_span.set_status(StatusCodeToString(first_error.code()));
    return first_error;
  }

  // Phase 2 (serial): union-find over "c:<class>" / "p:<promise id>"
  // keys. Promises already in the table (the restored snapshot) seed
  // the structure, so a tail release whose envelope names only a
  // promise id lands in the component of the classes that promise
  // reserves. Expiry stays inside components too: AddDueClasses only
  // widens an operation to due promises OVERLAPPING its classes, and
  // overlap means same component.
  std::map<std::string, std::string> parent;
  auto find = [&parent](std::string key) {
    parent.try_emplace(key, key);
    while (parent[key] != key) {
      parent[key] = parent[parent[key]];  // path halving
      key = parent[key];
    }
    return key;
  };
  auto unite = [&](const std::string& a, const std::string& b) {
    std::string ra = find(a);
    std::string rb = find(b);
    if (ra != rb) parent[rb] = std::move(ra);
  };
  for (const std::string& cls : table_.ReferencedClasses()) {
    for (const PromiseRecord& rec : table_.RecordsForClass(cls)) {
      unite("c:" + cls, "p:" + std::to_string(rec.id.value()));
    }
  }
  for (size_t i = 0; i < planned.size(); ++i) {
    const Planned& p = planned[i];
    if (p.barrier) continue;
    std::string self = "r:" + std::to_string(i);
    for (const std::string& cls : p.classes) unite(self, "c:" + cls);
    for (uint64_t id : p.promise_ids) {
      unite(self, "p:" + std::to_string(id));
    }
  }

  uint64_t max_promise_id = 0;
  for (const Planned& p : planned) {
    max_promise_id = std::max(max_promise_id, p.record->promise_id);
  }

  auto replay_one = [&](const Planned& p) -> Status {
    // Pin logical time and the consumed promise id to this record for
    // the duration of its re-execution; worker threads replaying other
    // components concurrently see their own record's time.
    ScopedTimeOverride time_pin(p.record->timestamp);
    if (p.record->promise_id != 0) {
      tls_forced_promise_id = p.record->promise_id;
    }
    Status st;
    if (p.is_envelope) {
      st = Handle(p.envelope).status();
    } else {
      std::vector<std::string> parts = Split(p.record->payload, '|');
      if (parts.size() == 3 && parts[0] == "damage") {
        Result<int64_t> qty = ParseInt64(parts[2]);
        st = qty.ok() ? ReportExternalDamage(parts[1], *qty).status()
                      : qty.status();
      } else if (parts.size() == 3 && parts[0] == "lose") {
        st = ReportInstanceLost(parts[1], parts[2]).status();
      } else {
        st = Status::InvalidArgument("unknown log record: " +
                                     p.record->payload);
      }
    }
    tls_forced_promise_id = 0;
    return st;
  };

  // Phases 3+4: split at barriers; within a segment, group records by
  // component and replay the groups concurrently (each group in log
  // order). Components share no class, so their stripe footprints are
  // disjoint — grants and releases never late-lock.
  auto run_segment = [&](size_t begin, size_t end) {
    if (begin >= end || failed.load(std::memory_order_acquire)) return;
    tail_segments_total->Increment();
    std::map<std::string, std::vector<const Planned*>> groups;
    std::vector<std::string> order;
    for (size_t i = begin; i < end; ++i) {
      std::string root = find("r:" + std::to_string(i));
      auto [it, inserted] = groups.try_emplace(root);
      if (inserted) order.push_back(root);
      it->second.push_back(&planned[i]);
    }
    Timestamp seg_max = 0;
    for (size_t i = begin; i < end; ++i) {
      seg_max = std::max(seg_max, planned[i].record->timestamp);
    }
    size_t nworkers =
        std::min<size_t>(static_cast<size_t>(workers), order.size());
    if (nworkers <= 1) {
      for (size_t i = begin;
           i < end && !failed.load(std::memory_order_acquire); ++i) {
        Status st = replay_one(planned[i]);
        if (!st.ok()) note_error(st);
      }
    } else {
      std::atomic<size_t> next_group{0};
      const auto& groups_ref = groups;  // read-only from here on
      auto group_worker = [&] {
        for (;;) {
          size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
          if (g >= order.size()) break;
          if (failed.load(std::memory_order_acquire)) break;
          for (const Planned* p : groups_ref.at(order[g])) {
            if (failed.load(std::memory_order_acquire)) break;
            Status st = replay_one(*p);
            if (!st.ok()) {
              note_error(st);
              break;
            }
          }
        }
      };
      std::vector<std::thread> pool;
      for (size_t w = 1; w < nworkers; ++w) pool.emplace_back(group_worker);
      group_worker();
      for (std::thread& t : pool) t.join();
    }
    clock->AdvanceTo(seg_max);
  };

  size_t seg_begin = 0;
  for (size_t i = 0; i < planned.size(); ++i) {
    if (!planned[i].barrier) continue;
    run_segment(seg_begin, i);
    if (failed.load(std::memory_order_acquire)) break;
    clock->AdvanceTo(planned[i].record->timestamp);
    Status st = replay_one(planned[i]);
    if (!st.ok()) note_error(st);
    if (failed.load(std::memory_order_acquire)) break;
    seg_begin = i + 1;
  }
  if (!failed.load(std::memory_order_acquire)) {
    run_segment(seg_begin, planned.size());
  }
  if (failed.load(std::memory_order_acquire)) {
    replay_span.set_status(StatusCodeToString(first_error.code()));
    return first_error;
  }
  if (max_promise_id != 0) promise_ids_.Pin(max_promise_id + 1);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Fuzzy checkpoint capture (see core/checkpoint.h and DESIGN.md §10)

void PromiseManager::CaptureScopeClasses(const LockScope& scope) {
  if (!capture_active_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(capture_mu_);
  if (!capture_.active || capture_.poisoned) return;
  if (scope.whole_manager) {
    // Root-exclusive: no striped operation is in flight, so every
    // pending class is untouched-since-cut and capturable right now.
    while (!capture_.pending.empty() && !capture_.poisoned) {
      CaptureClassLocked(*capture_.pending.begin());
    }
    return;
  }
  for (const std::string& cls : scope.classes) {
    if (capture_.poisoned) break;
    if (capture_.pending.count(cls) > 0) CaptureClassLocked(cls);
  }
}

void PromiseManager::CaptureClassIfPending(const std::string& cls) {
  if (!capture_active_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(capture_mu_);
  if (!capture_.active || capture_.poisoned) return;
  if (capture_.pending.count(cls) > 0) CaptureClassLocked(cls);
}

void PromiseManager::PoisonCapture(const std::string& reason) {
  // Caller holds capture_mu_.
  capture_.poisoned = true;
  capture_.poison_reason = reason;
}

void PromiseManager::CaptureClassLocked(const std::string& cls) {
  capture_.pending.erase(cls);
  CheckpointData* data = capture_.data.get();
  if (rm_->HasPool(cls)) {
    Result<int64_t> qty = rm_->ExportPoolQuantity(cls);
    if (!qty.ok()) {
      PoisonCapture("pool export failed for '" + cls +
                    "': " + qty.status().ToString());
      return;
    }
    data->pools[cls] = *qty;
  }
  if (rm_->HasInstanceClass(cls)) {
    Result<std::vector<InstanceView>> instances = rm_->ExportInstances(cls);
    if (!instances.ok()) {
      PoisonCapture("instance export failed for '" + cls +
                    "': " + instances.status().ToString());
      return;
    }
    data->instances[cls] = std::move(*instances);
  }
  for (PromiseRecord& rec : table_.RecordsForClass(cls)) {
    // A promise spanning several classes is stored once (keyed by id);
    // whichever class captures first wins, and the record cannot have
    // changed in between because every one of its classes was pending.
    uint64_t id = rec.id.value();
    data->promises.emplace(id, std::move(rec));
  }
  ResourceEngine* engine = EngineIfExists(cls);
  if (engine != nullptr) {
    std::string blob = engine->SerializeState();
    if (!blob.empty()) data->engine_state[cls] = std::move(blob);
  }
}

std::set<std::string> PromiseManager::CheckpointClasses() const {
  std::set<std::string> classes;
  for (std::string& cls : rm_->PoolClasses()) classes.insert(std::move(cls));
  for (std::string& cls : rm_->InstanceClasses()) {
    classes.insert(std::move(cls));
  }
  std::set<std::string> referenced = table_.ReferencedClasses();
  classes.insert(referenced.begin(), referenced.end());
  {
    std::lock_guard<std::mutex> lk(engines_mu_);
    for (const auto& [cls, engine] : engines_) {
      (void)engine;
      classes.insert(cls);
    }
  }
  {
    std::lock_guard<std::mutex> lk(config_mu_);
    for (const auto& [cls, members] : federated_) {
      (void)members;
      classes.insert(cls);
    }
  }
  return classes;
}

Result<CheckpointData> PromiseManager::CaptureCheckpoint() {
  static Counter* captures_total = MetricsRegistry::Global().GetCounter(
      "promises_checkpoint_captures_total");
  static Counter* poisoned_total = MetricsRegistry::Global().GetCounter(
      "promises_checkpoint_poisoned_total");
  if (oplog_.load(std::memory_order_acquire) == nullptr) {
    return Status::FailedPrecondition(
        "checkpoint capture requires an attached log (the cut is a log "
        "sequence number)");
  }

  // Clears capture state after a failure so the next attempt (or the
  // next CaptureCheckpoint call) starts clean.
  auto deactivate = [this]() -> std::unique_ptr<CheckpointData> {
    std::lock_guard<std::mutex> lk(capture_mu_);
    std::unique_ptr<CheckpointData> data = std::move(capture_.data);
    capture_ = CaptureState{};
    capture_active_.store(false, std::memory_order_release);
    return data;
  };

  constexpr int kMaxAttempts = 5;
  std::string last_poison;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    ScopedSpan capture_span("checkpoint-capture");
    std::set<std::string> classes = CheckpointClasses();

    // Activation: a momentary root-exclusive barrier (O(1) work under
    // the lock). Every striped operation holds the root key shared
    // from BeginOperation until commit, so root-exclusive drains all
    // in-flight operations — the cut chosen here has no laggards, and
    // every operation sequenced after it observes capture_active_ in
    // its BeginOperation hook before touching any class.
    {
      LockScope scope;
      Result<std::unique_ptr<Transaction>> txn_or =
          BeginOperation(&scope, {}, /*whole_manager=*/true);
      if (!txn_or.ok()) return txn_or.status();
      std::unique_ptr<Transaction> txn = std::move(txn_or).value();
      OperationLog* log = oplog_.load(std::memory_order_acquire);
      if (log == nullptr) {
        return Status::FailedPrecondition("log detached during capture");
      }
      Result<LogCut> cut = log->CutPoint();
      if (!cut.ok()) return cut.status();
      {
        std::lock_guard<std::mutex> lk(capture_mu_);
        if (capture_.active) {
          return Status::FailedPrecondition(
              "a checkpoint capture is already active");
        }
        capture_ = CaptureState{};
        capture_.active = true;
        capture_.cut_lsn = cut->sequence;
        capture_.pending = classes;
        capture_.data = std::make_unique<CheckpointData>();
        capture_.data->cut_lsn = cut->sequence;
        capture_.data->captured_at = cut->last_timestamp;
        capture_.data->promise_id_watermark = cut->promise_id_watermark;
        capture_active_.store(true, std::memory_order_release);
      }
      Status commit = txn->Commit();
      if (!commit.ok()) {
        (void)deactivate();
        return commit;
      }
    }

    // Sweep: capture each still-pending class under its stripe through
    // the normal operation path. Traffic keeps flowing; operations that
    // get to a pending class first capture it themselves (the
    // BeginOperation hook), so each iteration strictly shrinks the
    // pending set no matter who wins the stripe.
    bool poisoned = false;
    for (;;) {
      std::string next;
      {
        std::lock_guard<std::mutex> lk(capture_mu_);
        if (capture_.poisoned) {
          poisoned = true;
          last_poison = capture_.poison_reason;
          break;
        }
        if (capture_.pending.empty()) break;
        next = *capture_.pending.begin();
      }
      LockScope scope;
      Result<std::unique_ptr<Transaction>> txn_or =
          BeginOperation(&scope, {next});
      if (!txn_or.ok()) {
        (void)deactivate();
        return txn_or.status();
      }
      // The hook inside BeginOperation did the capture; nothing to do
      // under the lock but release it.
      Status commit = (*txn_or)->Commit();
      if (!commit.ok()) {
        (void)deactivate();
        return commit;
      }
    }

    std::unique_ptr<CheckpointData> data = deactivate();
    if (poisoned || data == nullptr) {
      poisoned_total->Increment();
      capture_span.set_status("poisoned");
      continue;
    }

    // Idempotency table, in FIFO (eviction) order so restore rebuilds
    // the same eviction queue. The LSN filter drops replies from
    // operations sequenced after the cut — tail replay regenerates
    // them; lsn 0 entries predate the log and are always kept.
    {
      std::set<DedupKey> seen;
      std::lock_guard<std::mutex> lk(dedup_mu_);
      for (const DedupKey& key : dedup_fifo_) {
        if (!seen.insert(key).second) continue;
        auto it = dedup_completed_.find(key);
        if (it == dedup_completed_.end()) continue;
        if (it->second.lsn != 0 && it->second.lsn > data->cut_lsn) continue;
        CheckpointDedupEntry entry;
        entry.from = key.first;
        entry.message_id = key.second;
        entry.lsn = it->second.lsn;
        entry.reply_xml = it->second.reply.ToXml();
        data->dedup.push_back(std::move(entry));
      }
    }
    // Client registry. Captured after the sweep, so it may include
    // clients first seen after the cut — a harmless superset: the
    // name<->id mappings are append-only and tail replay reuses them.
    {
      std::lock_guard<std::mutex> lk(client_mu_);
      for (const auto& [id, name] : client_names_) {
        data->clients.emplace_back(id.value(), name);
      }
    }
    captures_total->Increment();
    return std::move(*data);
  }
  return Status::Unavailable(
      "checkpoint capture poisoned " + std::to_string(kMaxAttempts) +
      " times (raw resource-manager writes keep racing the sweep): " +
      last_poison);
}

Status PromiseManager::RestoreCheckpoint(const CheckpointData& data,
                                         SimulatedClock* clock) {
  if (oplog_.load(std::memory_order_acquire) != nullptr) {
    return Status::FailedPrecondition("detach the log before restoring");
  }
  {
    std::lock_guard<std::mutex> lk(capture_mu_);
    if (capture_.active) {
      return Status::FailedPrecondition(
          "cannot restore while a capture is active");
    }
  }
  if (table_.size() != 0) {
    return Status::FailedPrecondition(
        "restore requires a freshly constructed manager");
  }
  // Same contract as ReplayLog: resource definitions, federations and
  // services must already be registered, and this manager is quiesced
  // (no concurrent operations), so raw restore calls need no stripes.
  clock->AdvanceTo(data.captured_at);
  {
    std::lock_guard<std::mutex> lk(client_mu_);
    uint64_t max_client = 0;
    for (const auto& [id, name] : data.clients) {
      client_names_[ClientId(id)] = name;
      client_ids_[name] = ClientId(id);
      max_client = std::max(max_client, id);
    }
    if (max_client != 0) client_id_gen_.Pin(max_client + 1);
  }
  if (data.promise_id_watermark != 0) {
    // Tail records always consume ids above the watermark (the cut was
    // chosen under the activation barrier, after every in-flight
    // allocation), so the absolute pin cannot collide with replay.
    promise_ids_.Pin(data.promise_id_watermark + 1);
  }
  for (const auto& [cls, quantity] : data.pools) {
    PROMISES_RETURN_IF_ERROR(rm_->RestorePoolQuantity(cls, quantity));
  }
  for (const auto& [cls, instances] : data.instances) {
    for (const InstanceView& inst : instances) {
      PROMISES_RETURN_IF_ERROR(
          rm_->RestoreInstance(cls, inst.id, inst.status, inst.properties));
    }
  }
  for (const auto& [id, rec] : data.promises) {
    (void)id;
    PROMISES_RETURN_IF_ERROR(table_.Insert(rec));
  }
  for (const auto& [cls, blob] : data.engine_state) {
    PROMISES_ASSIGN_OR_RETURN(ResourceEngine * engine, EngineFor(cls));
    PROMISES_RETURN_IF_ERROR(engine->RestoreState(blob));
  }
  if (config_.dedup_capacity > 0) {
    std::lock_guard<std::mutex> lk(dedup_mu_);
    for (const CheckpointDedupEntry& entry : data.dedup) {
      PROMISES_ASSIGN_OR_RETURN(Envelope reply,
                                Envelope::FromXml(entry.reply_xml));
      DedupKey key{entry.from, entry.message_id};
      if (dedup_completed_
              .emplace(key, DedupEntry{std::move(reply), entry.lsn})
              .second) {
        dedup_fifo_.push_back(key);
        while (dedup_fifo_.size() > config_.dedup_capacity) {
          dedup_completed_.erase(dedup_fifo_.front());
          dedup_fifo_.pop_front();
        }
      }
    }
  }
  return Status::OK();
}

Result<Envelope> PromiseManager::Handle(const Envelope& request) {
  // Server-side span root: nest under the inbound envelope's context
  // when the wire carried one; otherwise start a fresh trace, so
  // embedders that call Handle without stamping a trace still get the
  // same phase breakdown.
  TraceContext trace_parent;
  if (request.trace && request.trace->sampled) {
    trace_parent = *request.trace;
  } else {
    trace_parent = Tracer::Global().StartTrace();
  }
  ScopedSpan handle_span(trace_parent, "handle");
  static Counter* requests_total = MetricsRegistry::Global().GetCounter(
      "promises_manager_requests_total");
  static Counter* deadline_sheds_total = MetricsRegistry::Global().GetCounter(
      "promises_manager_deadline_sheds_total");
  static Counter* replays_total = MetricsRegistry::Global().GetCounter(
      "promises_manager_duplicates_replayed_total");
  requests_total->Increment();

  // Shard guard: an envelope routed under a different world view than
  // this shard's identity is refused before the dedup table or any
  // lock stripe — the sender must re-plan against the live topology.
  if (config_.shard_index >= 0 && request.route) {
    static Counter* route_rejects_total =
        MetricsRegistry::Global().GetCounter(
            "promises_manager_route_rejects_total");
    if (request.route->topology_version != config_.topology_version) {
      handle_span.set_status("route-stale-topology");
      route_rejects_total->Increment();
      return Status::FailedPrecondition(
          "route: topology version " +
          std::to_string(request.route->topology_version) +
          " does not match shard's version " +
          std::to_string(config_.topology_version));
    }
    if (request.route->shard != config_.shard_index) {
      handle_span.set_status("route-wrong-shard");
      route_rejects_total->Increment();
      return Status::FailedPrecondition(
          "route: envelope for shard " +
          std::to_string(request.route->shard) + " reached shard " +
          std::to_string(config_.shard_index));
    }
  }

  // Deadline shed, before everything else: a request whose propagated
  // deadline already lapsed gets a tiny <overload> reply — the client
  // has given up, so executing it (or even touching the dedup table or
  // a lock stripe) is pure waste. Sheds are deliberately NOT cached:
  // a later retry with the same message id and a live deadline must
  // execute for real.
  if (request.deadline != 0 && clock_->Now() >= request.deadline) {
    handle_span.set_status("shed-deadline");
    deadline_sheds_total->Increment();
    stats_.deadline_sheds.fetch_add(1, std::memory_order_relaxed);
    Envelope shed;
    shed.message_id = request.message_id;
    shed.from = config_.name;
    shed.to = request.from;
    shed.overload = OverloadHeader{"deadline", 0};
    return shed;
  }

  // Idempotency layer: a message id the sender already completed gets
  // its original reply back, verbatim — no re-execution, no re-logging
  // (so replay never sees the duplicate either). Envelopes without a
  // valid message id (notably the log records synthesized by the
  // direct API, which all carry id 0) always execute.
  const bool dedup_eligible = config_.dedup_capacity > 0 &&
                              request.message_id.valid() &&
                              !request.from.empty();
  if (!dedup_eligible) return HandleInner(request, nullptr);

  DedupKey key{request.from, request.message_id.value()};
  {
    ScopedSpan dedup_span("dedup");
    std::lock_guard<std::mutex> lk(dedup_mu_);
    auto it = dedup_completed_.find(key);
    if (it != dedup_completed_.end()) {
      dedup_span.set_status("replayed");
      replays_total->Increment();
      stats_.duplicates_replayed.fetch_add(1, std::memory_order_relaxed);
      return it->second.reply;
    }
    if (!dedup_in_progress_.insert(key).second) {
      // A duplicate delivery raced the original, which is still
      // executing. Refuse (retryably) instead of running it twice; the
      // retry will find the cached reply.
      dedup_span.set_status("in-flight-duplicate");
      return Status::Unavailable("duplicate of in-flight request " +
                                 request.message_id.ToString() + " from '" +
                                 request.from + "'");
    }
  }

  Result<Envelope> reply = HandleInner(request, &key);

  {
    std::lock_guard<std::mutex> lk(dedup_mu_);
    dedup_in_progress_.erase(key);
    // Only completed requests are remembered: an errored envelope made
    // no state change, so re-executing the retry is the right call.
    // Logged operations were already inserted (LSN-tagged) at their
    // sequencing point inside HandleInner; this covers the unlogged
    // path (lsn 0: always inside any checkpoint cut).
    if (reply.ok() && dedup_completed_.count(key) == 0) {
      dedup_completed_.emplace(key, DedupEntry{*reply, 0});
      dedup_fifo_.push_back(key);
      while (dedup_fifo_.size() > config_.dedup_capacity) {
        dedup_completed_.erase(dedup_fifo_.front());
        dedup_fifo_.pop_front();
      }
    }
  }
  return reply;
}

std::set<std::string> PromiseManager::PlanEnvelope(
    const Envelope& request) const {
  // Plan the union of every part of the combined envelope.
  std::set<std::string> classes;
  if (request.promise_request) {
    for (const Predicate& p : request.promise_request->predicates) {
      classes.insert(p.resource_class());
    }
    for (PromiseId id : request.promise_request->release_on_grant) {
      AddPromiseClasses(&classes, id);
    }
  }
  if (request.poll) {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (const PendingRequest& req : pending_) {
      if (req.ticket != request.poll->ticket) continue;
      for (const Predicate& p : req.predicates) {
        classes.insert(p.resource_class());
      }
      break;
    }
  }
  if (request.release) {
    for (PromiseId id : request.release->promises) {
      AddPromiseClasses(&classes, id);
    }
  }
  if (request.environment) {
    for (const EnvironmentHeader::Entry& e : request.environment->entries) {
      AddPromiseClasses(&classes, e.promise);
    }
  }
  if (request.action) AddActionClasses(&classes, *request.action);
  return classes;
}

std::set<std::string> PromiseManager::PlanEnvelopeClasses(
    const Envelope& request) const {
  std::set<std::string> classes = PlanEnvelope(request);
  PlanClosure(&classes);
  return classes;
}

Result<Envelope> PromiseManager::HandleInner(const Envelope& request,
                                             const DedupKey* dedup_key) {
  std::set<std::string> classes = PlanEnvelope(request);

  LockScope scope;
  std::unique_ptr<Transaction> txn;
  {
    // Covers planning the stripe set and acquiring every class lock
    // (the 2PL lock manager's own blocking waits nest underneath as
    // lock-wait spans).
    ScopedSpan lock_span("lock-acquire");
    Result<std::unique_ptr<Transaction>> txn_or =
        BeginOperation(&scope, std::move(classes));
    if (!txn_or.ok()) {
      lock_span.set_status(StatusCodeToString(txn_or.status().code()));
      return txn_or.status();
    }
    txn = std::move(txn_or).value();
  }
  ClientId client = ClientFor(request.from);
  PROMISES_RETURN_IF_ERROR(ExpireDueLocked(txn.get(), scope));

  Envelope reply;
  reply.message_id =
      transport_ != nullptr ? transport_->NextMessageId() : MessageId(1);
  reply.from = config_.name;
  reply.to = request.from;

  bool grant_rejected = false;
  PromiseId fresh_promise;
  PromiseId consumed_id;  // for the log record (replay id pinning)

  if (request.promise_request) {
    const PromiseRequestHeader& pr = *request.promise_request;
    Result<GrantOutcome> out_or = [&] {
      // Predicate evaluation against current resource state is the
      // grant decision's cost center.
      ScopedSpan grant_span("predicate-eval");
      Result<GrantOutcome> r =
          GrantLocked(txn.get(), client, pr.predicates, pr.duration_ms,
                      pr.release_on_grant);
      if (r.ok() && !r->accepted) grant_span.set_status("rejected");
      return r;
    }();
    PROMISES_ASSIGN_OR_RETURN(GrantOutcome out, std::move(out_or));
    PromiseResponseHeader resp;
    resp.promise_id = out.promise_id;
    resp.result = out.accepted ? PromiseResultCode::kAccepted
                               : PromiseResultCode::kRejected;
    // §6 'pending': queue an ungrantable request when asked. Not
    // available with an attached log (queued grants bypass the command
    // stream) or combined with atomic updates.
    if (!out.accepted && pr.queue_if_unavailable &&
        oplog_.load(std::memory_order_acquire) == nullptr &&
        pr.release_on_grant.empty()) {
      resp.result = PromiseResultCode::kPending;
      Timestamp deadline = clock_->Now() + config_.pending_patience_ms;
      std::lock_guard<std::mutex> lk(pending_mu_);
      resp.pending_ticket = next_ticket_++;
      pending_.push_back(PendingRequest{resp.pending_ticket, client,
                                        pr.predicates, pr.duration_ms,
                                        deadline});
    }
    resp.granted_duration_ms = out.duration_ms;
    resp.correlation = pr.request_id;
    resp.reason = out.reason;
    resp.counter_offer = out.counter_offer;
    reply.promise_response = std::move(resp);
    grant_rejected = !out.accepted;
    fresh_promise = out.promise_id;
    consumed_id = out.consumed_id;
  } else if (request.poll) {
    // Resolve a queued request's ticket (processed only when the
    // envelope carries no new promise-request).
    PROMISES_RETURN_IF_ERROR(DrainPendingScoped(txn.get(), scope));
    PromiseResponseHeader resp;
    resp.correlation = RequestId(request.poll->ticket);
    bool found = false;
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      auto fit = fulfilled_.find(request.poll->ticket);
      if (fit != fulfilled_.end() && fit->second.first == client) {
        GrantOutcome out = std::move(fit->second.second);
        fulfilled_.erase(fit);
        resp.result = out.accepted ? PromiseResultCode::kAccepted
                                   : PromiseResultCode::kRejected;
        resp.promise_id = out.promise_id;
        resp.granted_duration_ms = out.duration_ms;
        resp.reason = out.reason;
        found = true;
      } else {
        for (const PendingRequest& req : pending_) {
          if (req.ticket == request.poll->ticket && req.client == client) {
            resp.result = PromiseResultCode::kPending;
            resp.pending_ticket = req.ticket;
            found = true;
            break;
          }
        }
      }
    }
    if (!found) {
      resp.result = PromiseResultCode::kRejected;
      resp.reason = "unknown ticket " + std::to_string(request.poll->ticket);
    }
    reply.promise_response = std::move(resp);
  }

  if (request.release) {
    for (PromiseId id : request.release->promises) {
      auto id_classes = table_.ClassesOf(id);
      if (!id_classes || !scope.CoversAll(*id_classes)) continue;
      const PromiseRecord* rec = table_.Find(id);
      if (rec == nullptr || rec->owner != client) continue;
      PROMISES_RETURN_IF_ERROR(
          ReleaseOneLocked(txn.get(), id, PromiseState::kReleased));
      stats_.released.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (request.action) {
    if (grant_rejected) {
      // The action depended on the rejected request; §4 atomic unit.
      ActionResultBody r;
      r.ok = false;
      r.error = "skipped: accompanying promise request was rejected";
      reply.action_result = std::move(r);
      stats_.actions.fetch_add(1, std::memory_order_relaxed);
      stats_.action_failures.fetch_add(1, std::memory_order_relaxed);
    } else {
      EnvironmentHeader env;
      if (request.environment) env = *request.environment;
      // Convention: promise id 0 in an environment refers to the
      // promise granted by this same envelope's request.
      for (EnvironmentHeader::Entry& e : env.entries) {
        if (!e.promise.valid() && fresh_promise.valid()) {
          e.promise = fresh_promise;
        }
      }
      Result<ActionOutcome> out_or = [&] {
        ScopedSpan action_span("action-exec");
        Result<ActionOutcome> r =
            ExecuteLocked(txn.get(), &scope, client, *request.action, env);
        if (r.ok() && !r->ok) action_span.set_status("action-failed");
        return r;
      }();
      PROMISES_ASSIGN_OR_RETURN(ActionOutcome out, std::move(out_or));
      ActionResultBody r;
      r.ok = out.ok;
      r.error = out.error;
      r.outputs = std::move(out.outputs);
      reply.action_result = std::move(r);
    }
  }

  PROMISES_RETURN_IF_ERROR(DrainPendingScoped(txn.get(), scope));
  LogTicket ticket;
  if (oplog_.load(std::memory_order_acquire) != nullptr) {
    ticket = LogOperation(request.ToXml(), consumed_id);
  }
  bool dedup_inserted = false;
  if (dedup_key != nullptr && ticket.log != nullptr &&
      ticket.enqueue_error.ok()) {
    // Sequencing-point insert: the reply joins the dedup table tagged
    // with its record's LSN while the stripe locks are still held, so a
    // fuzzy checkpoint's cut filter (lsn <= cut) keeps exactly the
    // replies whose operations the snapshot covers.
    std::lock_guard<std::mutex> lk(dedup_mu_);
    dedup_inserted =
        dedup_completed_.emplace(*dedup_key, DedupEntry{reply, ticket.sequence})
            .second;
    if (dedup_inserted) {
      dedup_fifo_.push_back(*dedup_key);
      while (dedup_fifo_.size() > config_.dedup_capacity) {
        dedup_completed_.erase(dedup_fifo_.front());
        dedup_fifo_.pop_front();
      }
    }
  }
  Status commit_status = txn->Commit();
  if (!commit_status.ok()) {
    if (dedup_inserted) {
      // The reply never happened; a retry must re-execute.
      std::lock_guard<std::mutex> lk(dedup_mu_);
      dedup_completed_.erase(*dedup_key);
    }
    return commit_status;
  }
  // A durability failure cannot fail the envelope reply: error replies
  // are not cached by the dedup layer, so a client retry would
  // re-execute an operation that already committed. The loss is still
  // loud — detach counter, error span — and direct-API callers get
  // kDataLoss (see AwaitLogDurable).
  //
  // Inside an epoch the durable wait is deferred: the operation's
  // sequence is handed to the executor, which waits once per epoch on
  // the maximum before completing any reply (so "reply implies
  // durable" still holds end to end). An enqueue failure is handled
  // here either way — AwaitLogDurable does not block on those.
  if (tls_epoch_ != nullptr && ticket.log != nullptr &&
      ticket.enqueue_error.ok()) {
    if (ticket.sequence > tls_epoch_->log_sequence) {
      tls_epoch_->log_sequence = ticket.sequence;
    }
  } else {
    (void)AwaitLogDurable(ticket);
  }
  return reply;
}

Result<std::unique_ptr<Transaction>> PromiseManager::AcquireEpoch() {
  LockScope scope;
  return BeginOperation(&scope, {}, /*whole_manager=*/true);
}

PromiseManager::EpochOpResult PromiseManager::HandleInEpoch(
    const Envelope& request, const std::set<std::string>* allowed) {
  EpochTls ctx;
  ctx.allowed = allowed;
  tls_epoch_ = &ctx;
  EpochOpResult out;
  out.reply = Handle(request);
  tls_epoch_ = nullptr;
  out.partition_miss = ctx.miss;
  out.log_sequence = ctx.log_sequence;
  return out;
}

Status PromiseManager::WaitEpochDurable(uint64_t max_sequence) {
  if (max_sequence == 0) return Status::OK();
  LogTicket ticket;
  ticket.log = oplog_.load(std::memory_order_acquire);
  ticket.sequence = max_sequence;
  if (ticket.log == nullptr) return Status::OK();  // detached meanwhile
  // The epoch is the group: no further committers are coming, so the
  // writer should flush now rather than linger out its window.
  ticket.log->KickFlush();
  return AwaitLogDurable(ticket);
}

void PromiseManager::RegisterService(const std::string& name, ServiceFn fn) {
  std::lock_guard<std::mutex> lk(config_mu_);
  services_[name] = std::move(fn);
}

Status PromiseManager::FederateClass(const std::string& virtual_cls,
                                     std::vector<std::string> members) {
  {
    std::lock_guard<std::mutex> lk(engines_mu_);
    if (engines_.count(virtual_cls)) {
      return Status::FailedPrecondition("class '" + virtual_cls +
                                        "' already has an engine; federate "
                                        "before use");
    }
  }
  std::lock_guard<std::mutex> lk(config_mu_);
  if (federated_.count(virtual_cls) || delegated_.count(virtual_cls)) {
    return Status::FailedPrecondition("class '" + virtual_cls +
                                      "' already has an engine; federate "
                                      "before use");
  }
  if (rm_->HasPool(virtual_cls) || rm_->HasInstanceClass(virtual_cls)) {
    return Status::AlreadyExists("'" + virtual_cls +
                                 "' names a concrete resource class");
  }
  if (members.empty()) {
    return Status::InvalidArgument("federation needs at least one member");
  }
  for (const std::string& member : members) {
    if (!rm_->HasInstanceClass(member)) {
      return Status::NotFound("member '" + member +
                              "' is not an instance class");
    }
  }
  for (const std::string& member : members) {
    member_to_virtual_[member].push_back(virtual_cls);
  }
  federated_[virtual_cls] = std::move(members);
  return Status::OK();
}

Status PromiseManager::DelegateClass(const std::string& cls,
                                     const std::string& upstream) {
  if (transport_ == nullptr) {
    return Status::FailedPrecondition(
        "delegation requires a transport; construct the manager with one");
  }
  {
    std::lock_guard<std::mutex> lk(engines_mu_);
    if (engines_.count(cls)) {
      return Status::FailedPrecondition(
          "class '" + cls + "' already has an engine; delegate before use");
    }
  }
  std::lock_guard<std::mutex> lk(config_mu_);
  delegated_[cls] = upstream;
  return Status::OK();
}

Result<std::vector<PromiseId>> PromiseManager::BreakUntilConsistent(
    std::unique_ptr<Transaction> txn, const std::string& cls,
    const std::string& reason, const std::string& log_payload) {
  std::vector<PromiseRecord> broken;
  Timestamp now = clock_->Now();
  while (true) {
    Status verify = VerifyAllLocked(txn.get());
    if (verify.ok()) break;
    if (!verify.IsViolated()) return verify;
    // Break the newest promise covering the damaged class: later
    // promises lose to earlier ones (a simple, predictable policy).
    std::vector<const PromiseRecord*> candidates =
        table_.ActiveForClass(cls, now);
    if (candidates.empty()) {
      // No direct promise names the damaged class, yet verification
      // still fails — the damage hit a member of a federated virtual
      // class (the covering promise lives on the virtual class). Widen
      // the hunt to every active promise.
      candidates = table_.Active(now);
    }
    if (candidates.empty()) {
      return Status::Internal(
          "external damage on '" + cls +
          "' cannot be absorbed by breaking promises: " + verify.ToString());
    }
    const PromiseRecord* victim = candidates.front();
    for (const PromiseRecord* r : candidates) {
      if (victim->id < r->id) victim = r;
    }
    PromiseRecord copy = *victim;
    PROMISES_RETURN_IF_ERROR(
        ReleaseOneLocked(txn.get(), victim->id, PromiseState::kViolated));
    copy.state = PromiseState::kViolated;
    broken.push_back(std::move(copy));
    stats_.promises_broken.fetch_add(1, std::memory_order_relaxed);
  }
  // Sequenced before the commit releases the whole-manager lock, like
  // every other logged operation.
  LogTicket ticket = LogOperation(log_payload);
  PROMISES_RETURN_IF_ERROR(txn->Commit());
  // Notify outside the transaction so handlers may call back into the
  // manager.
  std::vector<PromiseId> ids;
  for (const PromiseRecord& r : broken) {
    ids.push_back(r.id);
    if (violation_handler_) violation_handler_(r, reason);
  }
  PROMISES_RETURN_IF_ERROR(AwaitLogDurable(ticket));
  return ids;
}

Result<std::vector<PromiseId>> PromiseManager::ReportExternalDamage(
    const std::string& cls, int64_t quantity_lost) {
  if (quantity_lost <= 0) {
    return Status::InvalidArgument("quantity lost must be > 0");
  }
  LockScope scope;
  PROMISES_ASSIGN_OR_RETURN(
      std::unique_ptr<Transaction> txn,
      BeginOperation(&scope, {}, /*whole_manager=*/true));
  PROMISES_RETURN_IF_ERROR(ExpireDueLocked(txn.get(), scope));
  PROMISES_ASSIGN_OR_RETURN(int64_t on_hand,
                            rm_->GetQuantity(txn.get(), cls));
  int64_t loss = std::min(quantity_lost, on_hand);
  PROMISES_RETURN_IF_ERROR(rm_->AdjustQuantity(txn.get(), cls, -loss));
  return BreakUntilConsistent(
      std::move(txn), cls,
      "external damage destroyed " + std::to_string(loss) + " units of '" +
          cls + "'",
      "damage|" + cls + "|" + std::to_string(quantity_lost));
}

Result<std::vector<PromiseId>> PromiseManager::ReportInstanceLost(
    const std::string& cls, const std::string& id) {
  LockScope scope;
  PROMISES_ASSIGN_OR_RETURN(
      std::unique_ptr<Transaction> txn,
      BeginOperation(&scope, {}, /*whole_manager=*/true));
  PROMISES_RETURN_IF_ERROR(ExpireDueLocked(txn.get(), scope));
  PROMISES_RETURN_IF_ERROR(
      rm_->SetInstanceStatus(txn.get(), cls, id, InstanceStatus::kTaken));
  return BreakUntilConsistent(std::move(txn), cls,
                              "instance '" + id + "' of '" + cls +
                                  "' was lost",
                              "lose|" + cls + "|" + id);
}

size_t PromiseManager::ExpireDue() {
  LockScope scope;
  Result<std::unique_ptr<Transaction>> txn =
      BeginOperation(&scope, {}, /*whole_manager=*/true);
  if (!txn.ok()) return 0;
  uint64_t before = stats_.expired.load(std::memory_order_relaxed);
  if (!ExpireDueLocked(txn->get(), scope).ok()) {
    return 0;  // txn destructor rolls back
  }
  if (!DrainPendingScoped(txn->get(), scope).ok()) return 0;
  if (!(*txn)->Commit().ok()) return 0;
  return stats_.expired.load(std::memory_order_relaxed) - before;
}

const PromiseRecord* PromiseManager::FindPromise(PromiseId id) const {
  return table_.Find(id);
}

PromiseManagerStats PromiseManager::stats() const {
  PromiseManagerStats s;
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.granted = stats_.granted.load(std::memory_order_relaxed);
  s.rejected = stats_.rejected.load(std::memory_order_relaxed);
  s.released = stats_.released.load(std::memory_order_relaxed);
  s.expired = stats_.expired.load(std::memory_order_relaxed);
  s.updates = stats_.updates.load(std::memory_order_relaxed);
  s.actions = stats_.actions.load(std::memory_order_relaxed);
  s.action_failures = stats_.action_failures.load(std::memory_order_relaxed);
  s.violations_rolled_back =
      stats_.violations_rolled_back.load(std::memory_order_relaxed);
  s.expired_use_errors =
      stats_.expired_use_errors.load(std::memory_order_relaxed);
  s.promises_broken = stats_.promises_broken.load(std::memory_order_relaxed);
  s.duplicates_replayed =
      stats_.duplicates_replayed.load(std::memory_order_relaxed);
  s.deadline_sheds = stats_.deadline_sheds.load(std::memory_order_relaxed);
  return s;
}

ResourceEngine* PromiseManager::EngineIfExists(const std::string& cls) {
  std::lock_guard<std::mutex> lk(engines_mu_);
  auto it = engines_.find(cls);
  return it == engines_.end() ? nullptr : it->second.get();
}

std::string PromiseManager::DumpState() const {
  Timestamp now = clock_->Now();
  std::string out = "promise-manager '" + config_.name + "' at t=" +
                    std::to_string(now) + "\n";
  out += "  active promises: " + std::to_string(table_.size()) + "\n";
  for (const PromiseRecord* rec : table_.Active(now)) {
    out += "    " + rec->id.ToString() + " owner=" +
           rec->owner.ToString() + " expires=" +
           std::to_string(rec->expires_at) + "\n";
    for (const Predicate& pred : rec->predicates) {
      out += "      " + pred.ToString() + "\n";
    }
  }
  out += "  engines:\n";
  std::lock_guard<std::mutex> lk(engines_mu_);
  for (const auto& [cls, engine] : engines_) {
    out += "    " + cls + ": " +
           std::string(TechniqueToString(engine->technique())) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------
// ActionContext

ResourceManager* ActionContext::rm() const { return manager_->rm_; }

bool ActionContext::InEnvironment(PromiseId promise) const {
  return std::find(env_promises_.begin(), env_promises_.end(), promise) !=
         env_promises_.end();
}

Status ActionContext::EnsurePromiseLocked(PromiseId promise) {
  auto classes = manager_->table_.ClassesOf(promise);
  if (!classes) return Status::OK();  // gone; callers report not-active
  for (const std::string& cls : *classes) {
    PROMISES_RETURN_IF_ERROR(
        manager_->EnsureClassLocked(txn_, scope_, cls));
  }
  return Status::OK();
}

namespace {

/// Locates the predicate of `rec` on `cls` whose units cover the n-th
/// take, returning the predicate and the unit index within it.
Result<std::pair<const Predicate*, int64_t>> LocateUnit(
    const PromiseRecord& rec, const std::string& cls, int64_t n) {
  int64_t base = 0;
  for (const Predicate& pred : rec.predicates) {
    if (pred.resource_class() != cls) continue;
    int64_t capacity;
    if (pred.kind() == PredicateKind::kNamed) {
      capacity = 1;
    } else if (pred.kind() == PredicateKind::kProperty) {
      capacity = pred.count();
    } else {
      continue;  // quantity predicates have no instances
    }
    if (n < base + capacity) {
      return std::make_pair(&pred, n - base);
    }
    base += capacity;
  }
  return Status::FailedPrecondition(
      "promise " + rec.id.ToString() + " has no remaining instance units on '" +
      cls + "' (all " + std::to_string(base) + " consumed)");
}

}  // namespace

Result<std::string> ActionContext::PeekInstance(PromiseId promise,
                                                const std::string& cls) {
  PROMISES_RETURN_IF_ERROR(EnsurePromiseLocked(promise));
  PROMISES_RETURN_IF_ERROR(manager_->EnsureClassLocked(txn_, scope_, cls));
  const PromiseRecord* rec = manager_->table_.Find(promise);
  if (rec == nullptr || !rec->ActiveAt(manager_->clock_->Now())) {
    return Status::Expired("promise " + promise.ToString() + " is not active");
  }
  int64_t n = taken_[{promise, cls}];
  PROMISES_ASSIGN_OR_RETURN(auto located, LocateUnit(*rec, cls, n));
  PROMISES_ASSIGN_OR_RETURN(ResourceEngine * engine,
                            manager_->EngineFor(cls));
  return engine->ResolveInstance(txn_, promise, *located.first,
                                 located.second);
}

Result<std::string> ActionContext::TakeInstance(PromiseId promise,
                                                const std::string& cls) {
  if (!InEnvironment(promise)) {
    return Status::FailedPrecondition(
        "promise " + promise.ToString() +
        " is not part of this action's environment");
  }
  PROMISES_RETURN_IF_ERROR(EnsurePromiseLocked(promise));
  PROMISES_RETURN_IF_ERROR(manager_->EnsureClassLocked(txn_, scope_, cls));
  const PromiseRecord* rec = manager_->table_.Find(promise);
  if (rec == nullptr || !rec->ActiveAt(manager_->clock_->Now())) {
    return Status::Expired("promise " + promise.ToString() +
                           " is not active");
  }
  int64_t n = taken_[{promise, cls}];
  PROMISES_ASSIGN_OR_RETURN(auto located, LocateUnit(*rec, cls, n));
  PROMISES_ASSIGN_OR_RETURN(ResourceEngine * engine,
                            manager_->EngineFor(cls));
  PROMISES_ASSIGN_OR_RETURN(
      std::string instance,
      engine->TakeInstance(txn_, promise, *located.first, located.second,
                           manager_->rm_));
  ++taken_[{promise, cls}];
  return instance;
}

Status ActionContext::TakeQuantity(const std::string& cls, int64_t n) {
  if (n <= 0) return Status::InvalidArgument("take amount must be > 0");
  if (manager_->config_.strict_actions) {
    return Status::FailedPrecondition(
        "strict mode: consuming '" + cls +
        "' requires a covering promise (use TakeQuantityUnder)");
  }
  PROMISES_RETURN_IF_ERROR(manager_->EnsureClassLocked(txn_, scope_, cls));
  return manager_->rm_->AdjustQuantity(txn_, cls, -n);
}

Status ActionContext::TakeQuantityUnder(PromiseId promise,
                                        const std::string& cls, int64_t n) {
  if (n <= 0) return Status::InvalidArgument("take amount must be > 0");
  if (!InEnvironment(promise)) {
    return Status::FailedPrecondition(
        "promise " + promise.ToString() +
        " is not part of this action's environment");
  }
  PROMISES_RETURN_IF_ERROR(EnsurePromiseLocked(promise));
  PROMISES_RETURN_IF_ERROR(manager_->EnsureClassLocked(txn_, scope_, cls));
  const PromiseRecord* rec = manager_->table_.Find(promise);
  if (rec == nullptr || !rec->ActiveAt(manager_->clock_->Now())) {
    return Status::Expired("promise " + promise.ToString() +
                           " is not active");
  }
  PROMISES_RETURN_IF_ERROR(manager_->rm_->AdjustQuantity(txn_, cls, -n));
  PROMISES_ASSIGN_OR_RETURN(ResourceEngine * engine,
                            manager_->EngineFor(cls));
  for (const Predicate& pred : rec->predicates) {
    if (pred.resource_class() == cls &&
        pred.kind() == PredicateKind::kQuantity) {
      return engine->NoteConsumed(txn_, promise, pred, n);
    }
  }
  // No quantity predicate on this class: plain unprotected consumption.
  return Status::OK();
}

Result<ActionResultBody> ActionContext::ForwardUpstream(
    PromiseId promise, const std::string& cls, ActionBody action,
    bool release_after) {
  if (!InEnvironment(promise)) {
    return Status::FailedPrecondition(
        "promise " + promise.ToString() +
        " is not part of this action's environment");
  }
  PROMISES_RETURN_IF_ERROR(EnsurePromiseLocked(promise));
  PROMISES_RETURN_IF_ERROR(manager_->EnsureClassLocked(txn_, scope_, cls));
  PROMISES_ASSIGN_OR_RETURN(ResourceEngine * engine, manager_->EngineFor(cls));
  if (engine->technique() != Technique::kDelegated) {
    return Status::FailedPrecondition("class '" + cls +
                                      "' is not delegated upstream");
  }
  auto* delegation = static_cast<DelegationEngine*>(engine);
  PROMISES_ASSIGN_OR_RETURN(PromiseId upstream_id,
                            delegation->UpstreamPromise(promise));
  Envelope env;
  env.message_id = manager_->transport_->NextMessageId();
  env.from = manager_->config_.name;
  env.to = delegation->upstream_endpoint();
  env.environment = EnvironmentHeader{{{upstream_id, release_after}}};
  env.action = std::move(action);
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, manager_->transport_->Send(env));
  if (!reply.action_result) {
    return Status::Internal("upstream sent no action-result");
  }
  return *reply.action_result;
}

}  // namespace promises
