#include "core/engine.h"

namespace promises {

std::string_view TechniqueToString(Technique t) {
  switch (t) {
    case Technique::kSatisfiability: return "satisfiability";
    case Technique::kResourcePool: return "resource-pool";
    case Technique::kAllocatedTags: return "allocated-tags";
    case Technique::kTentative: return "tentative";
    case Technique::kDelegated: return "delegated";
  }
  return "unknown";
}

TechniquePolicy TechniquePolicy::Heuristic() {
  TechniquePolicy p;
  p.mode_ = DefaultMode::kHeuristic;
  return p;
}

TechniquePolicy TechniquePolicy::SatisfiabilityEverywhere() {
  TechniquePolicy p;
  p.mode_ = DefaultMode::kSatisfiability;
  return p;
}

Technique TechniquePolicy::For(const std::string& resource_class,
                               bool is_pool) const {
  auto it = overrides_.find(resource_class);
  if (it != overrides_.end()) return it->second;
  if (mode_ == DefaultMode::kSatisfiability) return Technique::kSatisfiability;
  return is_pool ? Technique::kResourcePool : Technique::kTentative;
}

}  // namespace promises
