#include "core/delegation_engine.h"

namespace promises {

void DelegationEngine::SendUpstreamRelease(PromiseId upstream_id) {
  Envelope env;
  env.message_id = transport_->NextMessageId();
  env.from = self_;
  env.to = upstream_;
  env.release = ReleaseHeader{{upstream_id}};
  // A failed release is tolerated: the upstream promise simply expires.
  (void)transport_->Send(env);
}

Status DelegationEngine::Reserve(Transaction* txn,
                                 const PromiseRecord& record,
                                 const Predicate& pred) {
  Envelope env;
  env.message_id = transport_->NextMessageId();
  env.from = self_;
  env.to = upstream_;
  PromiseRequestHeader req;
  req.request_id = request_ids_.Next();
  req.predicates.push_back(pred);
  Timestamp now = ctx_.clock->Now();
  req.duration_ms = record.expires_at == kTimestampMax
                        ? 0
                        : std::max<DurationMs>(0, record.expires_at - now);
  env.promise_request = std::move(req);

  PROMISES_ASSIGN_OR_RETURN(Envelope reply, transport_->Send(env));
  if (!reply.promise_response) {
    return Status::Internal("upstream '" + upstream_ +
                            "' sent no promise-response");
  }
  if (reply.promise_response->result != PromiseResultCode::kAccepted) {
    return Status::FailedPrecondition(
        "upstream '" + upstream_ + "' rejected delegated promise for " +
        pred.ToString() + ": " + reply.promise_response->reason);
  }
  PromiseId upstream_id = reply.promise_response->promise_id;
  AssignKey key{record.id, pred.ToString()};
  upstream_of_[key] = upstream_id;
  txn->PushUndo([this, key, upstream_id] {
    upstream_of_.erase(key);
    SendUpstreamRelease(upstream_id);  // compensation, not undo (§8)
  });
  return Status::OK();
}

Status DelegationEngine::Unreserve(Transaction* txn, PromiseId id,
                                   const Predicate& pred) {
  AssignKey key{id, pred.ToString()};
  auto it = upstream_of_.find(key);
  if (it == upstream_of_.end()) {
    return Status::Internal("no delegated promise for " + id.ToString() +
                            " on '" + cls_ + "'");
  }
  PromiseId upstream_id = it->second;
  upstream_of_.erase(it);
  SendUpstreamRelease(upstream_id);
  txn->PushUndo([this, key, upstream_id] {
    // Compensation for the compensations is impossible once the remote
    // release went out; re-record the mapping so local state stays
    // coherent, accepting that the upstream guarantee may be gone. The
    // next VerifyConsistent pass surfaces it if the client still needs
    // the promise.
    upstream_of_[key] = upstream_id;
  });
  return Status::OK();
}

Status DelegationEngine::VerifyConsistent(Transaction* txn, Timestamp now) {
  // The upstream maker upholds the delegated predicates; local actions
  // cannot violate them. Nothing to verify here.
  (void)txn;
  (void)now;
  return Status::OK();
}

Result<std::string> DelegationEngine::ResolveInstance(Transaction* txn,
                                                      PromiseId id,
                                                      const Predicate& pred,
                                                      int64_t already_taken) {
  (void)txn;
  (void)id;
  (void)pred;
  (void)already_taken;
  return Status::Unimplemented(
      "delegated resources are consumed by forwarding actions upstream");
}

Result<PromiseId> DelegationEngine::UpstreamPromise(PromiseId id) const {
  for (const auto& [key, upstream_id] : upstream_of_) {
    if (key.first == id) return upstream_id;
  }
  return Status::NotFound("no upstream promise recorded for " +
                          id.ToString());
}

}  // namespace promises
