#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"
#include "core/promise_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "predicate/parser.h"

namespace promises {

namespace {

struct CheckpointMetrics {
  Counter* installs;
  Counter* install_failures;
  Counter* snapshot_recoveries;
  Counter* full_replays;
  Counter* periodic_captures;
  Counter* periodic_skips;

  static CheckpointMetrics& Get() {
    static CheckpointMetrics m{
        MetricsRegistry::Global().GetCounter(
            "promises_checkpoint_installs_total"),
        MetricsRegistry::Global().GetCounter(
            "promises_checkpoint_install_failures_total"),
        MetricsRegistry::Global().GetCounter(
            "promises_recovery_snapshot_total"),
        MetricsRegistry::Global().GetCounter(
            "promises_recovery_full_replay_total"),
        MetricsRegistry::Global().GetCounter(
            "promises_checkpoint_periodic_captures_total"),
        MetricsRegistry::Global().GetCounter(
            "promises_checkpoint_periodic_skips_total"),
    };
    return m;
  }
};

Status SyncFileAndDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::Unavailable("open for fsync failed for '" + path +
                               "': " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    Status st = Status::Unavailable("fsync failed for '" + path +
                                    "': " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) {
    return Status::Unavailable("open for fsync failed for directory '" + dir +
                               "': " + std::strerror(errno));
  }
  if (::fsync(dfd) != 0) {
    Status st = Status::Unavailable("fsync failed for directory '" + dir +
                                    "': " + std::strerror(errno));
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::OK();
}

void EncodeU64(std::string* out, uint64_t v) {
  EncodeField(out, std::to_string(v));
}

void EncodeI64(std::string* out, int64_t v) {
  EncodeField(out, std::to_string(v));
}

Result<int64_t> DecodeI64(std::string_view* cursor) {
  PROMISES_ASSIGN_OR_RETURN(std::string field, DecodeField(cursor));
  return ParseInt64(field);
}

Result<uint64_t> DecodeU64(std::string_view* cursor) {
  PROMISES_ASSIGN_OR_RETURN(int64_t v, DecodeI64(cursor));
  if (v < 0) return Status::DataLoss("negative value in checkpoint field");
  return static_cast<uint64_t>(v);
}

// Values carry an explicit type tag so restore never depends on the
// lossy textual heuristics of Value::FromText (a *string* property
// that happens to look like a number must stay a string).
void EncodeValue(std::string* out, const Value& v) {
  std::string repr;
  switch (v.type()) {
    case ValueType::kBool:
      repr = v.as_bool() ? "b:1" : "b:0";
      break;
    case ValueType::kInt:
      repr = "i:" + std::to_string(v.as_int());
      break;
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "d:%.17g", v.as_double());
      repr = buf;
      break;
    }
    case ValueType::kString:
      repr = "s:" + v.as_string();
      break;
  }
  EncodeField(out, repr);
}

Result<Value> DecodeValue(std::string_view* cursor) {
  std::string field;
  PROMISES_ASSIGN_OR_RETURN(field, DecodeField(cursor));
  if (field.size() < 2 || field[1] != ':') {
    return Status::DataLoss("malformed value field in checkpoint");
  }
  std::string body = field.substr(2);
  switch (field[0]) {
    case 'b':
      return Value(body == "1");
    case 'i': {
      PROMISES_ASSIGN_OR_RETURN(int64_t i, ParseInt64(body));
      return Value(i);
    }
    case 'd': {
      char* end = nullptr;
      double d = std::strtod(body.c_str(), &end);
      if (end == body.c_str() || *end != '\0') {
        return Status::DataLoss("malformed double in checkpoint: " + body);
      }
      return Value(d);
    }
    case 's':
      return Value(std::move(body));
  }
  return Status::DataLoss("unknown value type tag in checkpoint: " + field);
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint at '" + path + "'");
  }
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Unavailable("read failed for '" + path + "'");
  }
  return contents;
}

}  // namespace

std::string SerializeCheckpoint(const CheckpointData& data) {
  std::string body;
  EncodeU64(&body, data.cut_lsn);
  EncodeI64(&body, data.captured_at);
  EncodeU64(&body, data.promise_id_watermark);

  EncodeU64(&body, data.clients.size());
  for (const auto& [id, name] : data.clients) {
    EncodeU64(&body, id);
    EncodeField(&body, name);
  }

  EncodeU64(&body, data.pools.size());
  for (const auto& [cls, quantity] : data.pools) {
    EncodeField(&body, cls);
    EncodeI64(&body, quantity);
  }

  EncodeU64(&body, data.instances.size());
  for (const auto& [cls, instances] : data.instances) {
    EncodeField(&body, cls);
    EncodeU64(&body, instances.size());
    for (const InstanceView& inst : instances) {
      EncodeField(&body, inst.id);
      EncodeI64(&body, static_cast<int64_t>(inst.status));
      EncodeU64(&body, inst.properties.size());
      for (const auto& [name, value] : inst.properties) {
        EncodeField(&body, name);
        EncodeValue(&body, value);
      }
    }
  }

  EncodeU64(&body, data.promises.size());
  for (const auto& [id, rec] : data.promises) {
    EncodeU64(&body, id);
    EncodeU64(&body, rec.owner.value());
    EncodeI64(&body, rec.granted_at);
    EncodeI64(&body, rec.expires_at);
    EncodeI64(&body, static_cast<int64_t>(rec.state));
    EncodeU64(&body, rec.predicates.size());
    for (const Predicate& pred : rec.predicates) {
      EncodeField(&body, pred.ToString());
    }
  }

  EncodeU64(&body, data.engine_state.size());
  for (const auto& [cls, blob] : data.engine_state) {
    EncodeField(&body, cls);
    EncodeField(&body, blob);
  }

  EncodeU64(&body, data.dedup.size());
  for (const CheckpointDedupEntry& entry : data.dedup) {
    EncodeField(&body, entry.from);
    EncodeU64(&body, entry.message_id);
    EncodeU64(&body, entry.lsn);
    EncodeField(&body, entry.reply_xml);
  }

  std::string out = "pmckpt|1|" + std::to_string(body.size()) + "|" +
                    std::to_string(OperationLog::Checksum(body)) + "\n";
  out += body;
  return out;
}

Result<CheckpointData> ParseCheckpoint(const std::string& content) {
  size_t newline = content.find('\n');
  if (newline == std::string::npos) {
    return Status::DataLoss("checkpoint has no header line");
  }
  std::vector<std::string> header = Split(content.substr(0, newline), '|');
  if (header.size() != 4 || header[0] != "pmckpt") {
    return Status::DataLoss("checkpoint header is malformed");
  }
  if (header[1] != "1") {
    return Status::DataLoss("unsupported checkpoint version '" + header[1] +
                            "'");
  }
  Result<int64_t> length = ParseInt64(header[2]);
  Result<int64_t> checksum = ParseInt64(header[3]);
  if (!length.ok() || !checksum.ok()) {
    return Status::DataLoss("checkpoint header is malformed");
  }
  std::string_view body(content);
  body.remove_prefix(newline + 1);
  if (static_cast<int64_t>(body.size()) != *length) {
    return Status::DataLoss("checkpoint body truncated: header claims " +
                            std::to_string(*length) + " bytes, file has " +
                            std::to_string(body.size()));
  }
  if (OperationLog::Checksum(std::string(body)) !=
      static_cast<uint32_t>(*checksum)) {
    return Status::DataLoss("checkpoint checksum mismatch");
  }

  std::string_view cursor = body;
  CheckpointData data;
  PROMISES_ASSIGN_OR_RETURN(data.cut_lsn, DecodeU64(&cursor));
  PROMISES_ASSIGN_OR_RETURN(data.captured_at, DecodeI64(&cursor));
  PROMISES_ASSIGN_OR_RETURN(data.promise_id_watermark, DecodeU64(&cursor));

  PROMISES_ASSIGN_OR_RETURN(uint64_t nclients, DecodeU64(&cursor));
  for (uint64_t i = 0; i < nclients; ++i) {
    PROMISES_ASSIGN_OR_RETURN(uint64_t id, DecodeU64(&cursor));
    PROMISES_ASSIGN_OR_RETURN(std::string name, DecodeField(&cursor));
    data.clients.emplace_back(id, std::move(name));
  }

  PROMISES_ASSIGN_OR_RETURN(uint64_t npools, DecodeU64(&cursor));
  for (uint64_t i = 0; i < npools; ++i) {
    PROMISES_ASSIGN_OR_RETURN(std::string cls, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(int64_t quantity, DecodeI64(&cursor));
    data.pools[std::move(cls)] = quantity;
  }

  PROMISES_ASSIGN_OR_RETURN(uint64_t nclasses, DecodeU64(&cursor));
  for (uint64_t i = 0; i < nclasses; ++i) {
    PROMISES_ASSIGN_OR_RETURN(std::string cls, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(uint64_t ninst, DecodeU64(&cursor));
    std::vector<InstanceView> instances;
    for (uint64_t j = 0; j < ninst; ++j) {
      InstanceView inst;
      PROMISES_ASSIGN_OR_RETURN(inst.id, DecodeField(&cursor));
      PROMISES_ASSIGN_OR_RETURN(int64_t status, DecodeI64(&cursor));
      if (status < 0 || status > 2) {
        return Status::DataLoss("invalid instance status in checkpoint");
      }
      inst.status = static_cast<InstanceStatus>(status);
      PROMISES_ASSIGN_OR_RETURN(uint64_t nprops, DecodeU64(&cursor));
      for (uint64_t k = 0; k < nprops; ++k) {
        PROMISES_ASSIGN_OR_RETURN(std::string name, DecodeField(&cursor));
        PROMISES_ASSIGN_OR_RETURN(Value value, DecodeValue(&cursor));
        inst.properties[std::move(name)] = std::move(value);
      }
      instances.push_back(std::move(inst));
    }
    data.instances[std::move(cls)] = std::move(instances);
  }

  PROMISES_ASSIGN_OR_RETURN(uint64_t npromises, DecodeU64(&cursor));
  for (uint64_t i = 0; i < npromises; ++i) {
    PROMISES_ASSIGN_OR_RETURN(uint64_t id, DecodeU64(&cursor));
    PromiseRecord rec;
    rec.id = PromiseId(id);
    PROMISES_ASSIGN_OR_RETURN(uint64_t owner, DecodeU64(&cursor));
    rec.owner = ClientId(owner);
    PROMISES_ASSIGN_OR_RETURN(rec.granted_at, DecodeI64(&cursor));
    PROMISES_ASSIGN_OR_RETURN(rec.expires_at, DecodeI64(&cursor));
    PROMISES_ASSIGN_OR_RETURN(int64_t state, DecodeI64(&cursor));
    if (state < 0 || state > 3) {
      return Status::DataLoss("invalid promise state in checkpoint");
    }
    rec.state = static_cast<PromiseState>(state);
    PROMISES_ASSIGN_OR_RETURN(uint64_t npreds, DecodeU64(&cursor));
    for (uint64_t j = 0; j < npreds; ++j) {
      PROMISES_ASSIGN_OR_RETURN(std::string text, DecodeField(&cursor));
      PROMISES_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate(text));
      rec.predicates.push_back(std::move(pred));
    }
    data.promises.emplace(id, std::move(rec));
  }

  PROMISES_ASSIGN_OR_RETURN(uint64_t nengines, DecodeU64(&cursor));
  for (uint64_t i = 0; i < nengines; ++i) {
    PROMISES_ASSIGN_OR_RETURN(std::string cls, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(std::string blob, DecodeField(&cursor));
    data.engine_state[std::move(cls)] = std::move(blob);
  }

  PROMISES_ASSIGN_OR_RETURN(uint64_t ndedup, DecodeU64(&cursor));
  for (uint64_t i = 0; i < ndedup; ++i) {
    CheckpointDedupEntry entry;
    PROMISES_ASSIGN_OR_RETURN(entry.from, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(entry.message_id, DecodeU64(&cursor));
    PROMISES_ASSIGN_OR_RETURN(entry.lsn, DecodeU64(&cursor));
    PROMISES_ASSIGN_OR_RETURN(entry.reply_xml, DecodeField(&cursor));
    data.dedup.push_back(std::move(entry));
  }

  if (!cursor.empty()) {
    return Status::DataLoss("checkpoint has " +
                            std::to_string(cursor.size()) +
                            " trailing bytes");
  }
  return data;
}

Status WriteCheckpointFile(const std::string& path,
                           const CheckpointData& data) {
  std::string contents = SerializeCheckpoint(data);
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot create '" + tmp +
                               "': " + std::strerror(errno));
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool flushed = std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (written != contents.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Unavailable("short write installing checkpoint '" + path +
                               "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::Unavailable("rename failed installing checkpoint '" +
                                    path + "': " + std::strerror(errno));
    std::remove(tmp.c_str());
    return st;
  }
  // The rename itself must survive a crash: fsync the directory.
  return SyncFileAndDir(path);
}

Result<CheckpointData> LoadCheckpointFile(const std::string& path) {
  PROMISES_ASSIGN_OR_RETURN(std::string contents, ReadWholeFile(path));
  return ParseCheckpoint(contents);
}

// ---------------------------------------------------------------------
// CheckpointWriter

CheckpointWriter::CheckpointWriter(PromiseManager* pm, OperationLog* log,
                                   std::string path)
    : pm_(pm), log_(log), path_(std::move(path)) {}

CheckpointWriter::~CheckpointWriter() { Stop(); }

Result<uint64_t> CheckpointWriter::RunOnce() {
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  Result<CheckpointData> data = pm_->CaptureCheckpoint();
  if (!data.ok()) {
    metrics.install_failures->Increment();
    return data.status();
  }
  // The snapshot reflects every record up to the cut; none of them may
  // be lost to a crash after the old log prefix is truncated, so the
  // cut must be durable before the checkpoint is published.
  Status st = log_->WaitDurable(data->cut_lsn);
  ScopedSpan install_span("checkpoint-install");
  if (st.ok()) st = WriteCheckpointFile(path_, *data);
  if (st.ok()) {
    // Compaction strictly after the rename landed: until then the full
    // log is the only recoverable copy of the prefix.
    st = log_->TruncateBefore(data->cut_lsn);
  }
  if (!st.ok()) {
    install_span.set_status(StatusCodeToString(st.code()));
    metrics.install_failures->Increment();
    return st;
  }
  metrics.installs->Increment();
  last_installed_lsn_.store(data->cut_lsn, std::memory_order_relaxed);
  return data->cut_lsn;
}

void CheckpointWriter::TickOnce() {
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  // Idle servers checkpoint nothing: when no LSN landed since the last
  // install, re-capturing would rewrite an identical snapshot and
  // re-truncate an already-compacted prefix for no recovery benefit.
  Result<LogCut> cut = log_->CutPoint();
  if (cut.ok() &&
      cut->sequence <= last_installed_lsn_.load(std::memory_order_relaxed)) {
    periodic_skips_.fetch_add(1, std::memory_order_relaxed);
    metrics.periodic_skips->Increment();
    return;
  }
  ScopedSpan span("checkpoint-capture");
  periodic_captures_.fetch_add(1, std::memory_order_relaxed);
  metrics.periodic_captures->Increment();
  Result<uint64_t> installed = RunOnce();
  if (!installed.ok()) {
    span.set_status(StatusCodeToString(installed.status().code()));
  }
}

Status CheckpointWriter::Start(DurationMs interval_ms) {
  if (interval_ms <= 0) {
    return Status::InvalidArgument("checkpoint interval must be > 0");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) {
    return Status::FailedPrecondition("checkpoint writer already running");
  }
  stopping_ = false;
  running_ = true;
  worker_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                       [this] { return stopping_; })) {
        break;
      }
      lock.unlock();
      // Failures are loud through metrics/spans but do not stop the
      // cadence; the next tick retries with a fresh cut.
      TickOnce();
      lock.lock();
    }
  });
  return Status::OK();
}

void CheckpointWriter::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stopping_ = true;
    running_ = false;
    worker = std::move(worker_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
}

// ---------------------------------------------------------------------
// Recovery

Status RecoverWithCheckpoint(PromiseManager* pm, SimulatedClock* clock,
                             const std::string& checkpoint_path,
                             const std::string& log_path,
                             const RecoveryOptions& options,
                             RecoveryReport* report) {
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  RecoveryReport local;
  RecoveryReport* rep = report != nullptr ? report : &local;
  *rep = RecoveryReport{};

  // A crash during install can leave the temp file behind; its rename
  // never published it, so it is not part of the recoverable state.
  std::remove((checkpoint_path + ".tmp").c_str());

  Result<CheckpointData> ckpt = LoadCheckpointFile(checkpoint_path);
  if (!ckpt.ok() && !ckpt.status().IsNotFound() &&
      !ckpt.status().IsDataLoss()) {
    return ckpt.status();
  }

  std::vector<LogRecord> records;
  LogScanStats stats{};
  Result<std::vector<LogRecord>> read = OperationLog::ReadForRecovery(
      log_path, &stats, options.allow_mid_log_corruption);
  if (read.ok()) {
    records = std::move(*read);
  } else if (!read.status().IsNotFound()) {
    return read.status();  // e.g. refusing to scan past mid-log corruption
  }
  rep->scan = stats;
  rep->total_records = records.size();

  if (!read.ok() && !ckpt.ok()) {
    return Status::NotFound("nothing to recover: no checkpoint at '" +
                            checkpoint_path + "' and no log at '" + log_path +
                            "'");
  }

  if (ckpt.ok()) {
    if (stats.exists && stats.base_sequence > ckpt->cut_lsn) {
      return Status::DataLoss(
          "log was compacted past the checkpoint cut (log base " +
          std::to_string(stats.base_sequence) + " > cut " +
          std::to_string(ckpt->cut_lsn) +
          "): records between them are unrecoverable");
    }
    std::vector<LogRecord> tail;
    tail.reserve(records.size());
    for (LogRecord& record : records) {
      if (record.sequence > ckpt->cut_lsn) tail.push_back(std::move(record));
    }
    rep->used_checkpoint = true;
    rep->checkpoint_lsn = ckpt->cut_lsn;
    rep->tail_records = tail.size();
    PROMISES_RETURN_IF_ERROR(pm->RestoreCheckpoint(*ckpt, clock));
    PROMISES_RETURN_IF_ERROR(
        pm->ReplayLogParallel(tail, clock, options.replay_workers));
    metrics.snapshot_recoveries->Increment();
    return Status::OK();
  }

  // No usable checkpoint. Full replay is sound only while the log still
  // starts at its origin; once compacted, the prefix lives exclusively
  // in the (damaged or missing) checkpoint.
  if (stats.exists && stats.base_sequence != 0) {
    if (ckpt.status().IsDataLoss()) {
      return Status::DataLoss("checkpoint at '" + checkpoint_path +
                              "' is damaged and the log prefix before " +
                              std::to_string(stats.base_sequence) +
                              " has been compacted away: " +
                              ckpt.status().ToString());
    }
    return Status::DataLoss(
        "log prefix before " + std::to_string(stats.base_sequence) +
        " has been compacted away but no checkpoint exists at '" +
        checkpoint_path + "'");
  }
  rep->tail_records = records.size();
  PROMISES_RETURN_IF_ERROR(
      pm->ReplayLogParallel(records, clock, options.replay_workers));
  metrics.full_replays->Increment();
  return Status::OK();
}

}  // namespace promises
