// §5 'Resource Pool' engine — escrow-style reserved counters.
//
// "In managing anonymous interchangeable resources, it is common to
// keep the available instances of each resource in a pool, and move
// them to a separate 'allocated' pool to ensure that a promise can be
// honoured... The digital equivalent can be implemented by keeping a
// count of available and allocated items... This technique is similar
// to escrow locking [8]."
//
// Grant and release are O(1) against the running `reserved` counter —
// the ablation point against the satisfiability engine's O(#promises)
// scan (experiment E2) and the concurrency point against exclusive
// locks (experiment E5). Consumption under a promise (NoteConsumed)
// draws down the reservation, mirroring goods leaving the 'allocated'
// pool when they are sold.

#ifndef PROMISES_CORE_POOL_ENGINE_H_
#define PROMISES_CORE_POOL_ENGINE_H_

#include <map>
#include <string>
#include <utility>

#include "core/engine.h"

namespace promises {

class ResourcePoolEngine : public ResourceEngine {
 public:
  ResourcePoolEngine(std::string resource_class, EngineContext ctx)
      : cls_(std::move(resource_class)), ctx_(ctx) {}

  Technique technique() const override { return Technique::kResourcePool; }
  const std::string& resource_class() const override { return cls_; }

  Status Reserve(Transaction* txn, const PromiseRecord& record,
                 const Predicate& pred) override;
  Status Unreserve(Transaction* txn, PromiseId id,
                   const Predicate& pred) override;
  Status VerifyConsistent(Transaction* txn, Timestamp now) override;
  Result<std::string> ResolveInstance(Transaction* txn, PromiseId id,
                                      const Predicate& pred,
                                      int64_t already_taken) override;
  Status NoteConsumed(Transaction* txn, PromiseId id, const Predicate& pred,
                      int64_t amount) override;
  Result<int64_t> QuantityHeadroom(Transaction* txn, Timestamp now) override;
  std::string SerializeState() const override;
  Status RestoreState(const std::string& blob) override;

  /// Units currently moved to the 'allocated' side.
  int64_t reserved() const { return reserved_; }

 private:
  // One ledger entry per (promise, predicate): units still held in
  // escrow for it (initially the predicate amount, drawn down by
  // consumption).
  using LedgerKey = std::pair<PromiseId, std::string>;
  static LedgerKey KeyOf(PromiseId id, const Predicate& pred) {
    return {id, pred.ToString()};
  }

  std::string cls_;
  EngineContext ctx_;
  // Engine state is serialized by this class's lock-manager stripe
  // ("pm:<name>/c:<cls>"), held exclusively by any operation touching
  // the class; mutations register undo closures on the transaction.
  int64_t reserved_ = 0;
  std::map<LedgerKey, int64_t> remaining_;
};

}  // namespace promises

#endif  // PROMISES_CORE_POOL_ENGINE_H_
