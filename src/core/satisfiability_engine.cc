#include "core/satisfiability_engine.h"

#include <algorithm>

#include "common/string_util.h"
#include "predicate/evaluator.h"

namespace promises {

Status SatisfiabilityEngine::Reserve(Transaction* txn,
                                     const PromiseRecord& record,
                                     const Predicate& pred) {
  (void)pred;  // The check is global: the candidate is already tabled.
  std::string reason;
  PROMISES_ASSIGN_OR_RETURN(
      bool ok, CheckNow(txn, ctx_.clock->Now(), &reason));
  if (!ok) {
    return Status::FailedPrecondition("promise " + record.id.ToString() +
                                      " not grantable on '" + cls_ +
                                      "': " + reason);
  }
  return Status::OK();
}

Status SatisfiabilityEngine::Unreserve(Transaction* txn, PromiseId id,
                                       const Predicate& pred) {
  // Removal from the promise table is the release; only the
  // consumption ledger needs clearing.
  auto key = std::make_pair(id, pred.ToString());
  auto it = consumed_.find(key);
  if (it != consumed_.end()) {
    int64_t old = it->second;
    consumed_.erase(it);
    txn->PushUndo([this, key, old] { consumed_[key] = old; });
  }
  return Status::OK();
}

Status SatisfiabilityEngine::NoteConsumed(Transaction* txn, PromiseId id,
                                          const Predicate& pred,
                                          int64_t amount) {
  if (pred.kind() != PredicateKind::kQuantity || amount <= 0) {
    return Status::OK();
  }
  auto key = std::make_pair(id, pred.ToString());
  consumed_[key] += amount;
  txn->PushUndo([this, key, amount] {
    auto it = consumed_.find(key);
    if (it == consumed_.end()) return;
    it->second -= amount;
    if (it->second <= 0) consumed_.erase(it);
  });
  return Status::OK();
}

Status SatisfiabilityEngine::VerifyConsistent(Transaction* txn,
                                              Timestamp now) {
  std::string reason;
  PROMISES_ASSIGN_OR_RETURN(bool ok, CheckNow(txn, now, &reason));
  if (!ok) {
    return Status::Violated("promises over '" + cls_ +
                            "' no longer satisfiable: " + reason);
  }
  return Status::OK();
}

Result<std::string> SatisfiabilityEngine::ResolveInstance(
    Transaction* txn, PromiseId id, const Predicate& pred,
    int64_t already_taken) {
  if (is_pool_) {
    return Status::Unimplemented("pool resources have no instances");
  }
  std::string reason;
  std::string resolved;
  PROMISES_ASSIGN_OR_RETURN(
      bool ok, CheckNow(txn, ctx_.clock->Now(), &reason, id, &pred,
                        already_taken, &resolved));
  if (!ok) {
    return Status::FailedPrecondition("cannot resolve instance for " +
                                      id.ToString() + ": " + reason);
  }
  if (resolved.empty()) {
    return Status::FailedPrecondition(
        "promise " + id.ToString() + " has no remaining units under " +
        pred.ToString());
  }
  return resolved;
}

Result<int64_t> SatisfiabilityEngine::QuantityHeadroom(Transaction* txn,
                                                       Timestamp now) {
  if (!is_pool_) {
    return Status::Unimplemented("instance classes have no quantity headroom");
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t quantity, ctx_.rm->GetQuantity(txn, cls_));
  int64_t promised = 0;
  for (const PromiseRecord* r : ctx_.table->ActiveForClass(cls_, now)) {
    for (const Predicate& p : r->predicates) {
      if (p.resource_class() != cls_ ||
          p.kind() != PredicateKind::kQuantity) {
        continue;
      }
      int64_t demand = p.amount();
      auto cit = consumed_.find(std::make_pair(r->id, p.ToString()));
      if (cit != consumed_.end()) {
        demand = std::max<int64_t>(0, demand - cit->second);
      }
      promised += demand;
    }
  }
  return std::max<int64_t>(0, quantity - promised);
}

Result<int64_t> SatisfiabilityEngine::CountHeadroom(Transaction* txn,
                                                    Timestamp now,
                                                    const Predicate& pred) {
  if (is_pool_ || pred.kind() != PredicateKind::kProperty) {
    return Status::Unimplemented("count headroom needs a property predicate "
                                 "on an instance class");
  }
  PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                            ctx_.rm->ListInstances(txn, cls_));
  const Schema* schema = ctx_.rm->GetSchema(cls_);

  std::vector<size_t> rights;
  std::map<std::string, size_t> right_of_id;
  for (size_t i = 0; i < instances.size(); ++i) {
    if (instances[i].status == InstanceStatus::kAvailable) {
      right_of_id[instances[i].id] = rights.size();
      rights.push_back(i);
    }
  }

  // Seed an incremental matcher with every existing demand; then add
  // units of `pred` until no augmenting path remains.
  IncrementalMatcher matcher(rights.size());
  uint64_t next_demand = 1;
  for (const PromiseRecord* r : ctx_.table->ActiveForClass(cls_, now)) {
    for (const Predicate& p : r->predicates) {
      if (p.resource_class() != cls_) continue;
      std::vector<size_t> candidates;
      int64_t units = 0;
      if (p.kind() == PredicateKind::kNamed) {
        auto it = right_of_id.find(p.instance_id());
        if (it != right_of_id.end()) candidates.push_back(it->second);
        units = 1;
      } else if (p.kind() == PredicateKind::kProperty) {
        for (size_t ri = 0; ri < rights.size(); ++ri) {
          PROMISES_ASSIGN_OR_RETURN(
              bool m, InstanceMatches(p, instances[rights[ri]], schema));
          if (m) candidates.push_back(ri);
        }
        units = p.count();
      } else {
        continue;
      }
      for (int64_t u = 0; u < units; ++u) {
        // Existing promises are satisfiable by invariant; a failed add
        // here means state drifted (e.g. mid-consumption) — treat the
        // unit as absorbing no headroom.
        (void)matcher.AddDemand(next_demand++, candidates);
      }
    }
  }

  std::vector<size_t> candidates;
  for (size_t ri = 0; ri < rights.size(); ++ri) {
    PROMISES_ASSIGN_OR_RETURN(
        bool m, InstanceMatches(pred, instances[rights[ri]], schema));
    if (m) candidates.push_back(ri);
  }
  int64_t headroom = 0;
  while (matcher.AddDemand(next_demand++, candidates)) ++headroom;
  return headroom;
}

Result<bool> SatisfiabilityEngine::CheckNow(
    Transaction* txn, Timestamp now, std::string* reason,
    PromiseId resolve_for, const Predicate* resolve_pred,
    int64_t resolve_taken, std::string* resolved) {
  std::vector<const PromiseRecord*> active =
      ctx_.table->ActiveForClass(cls_, now);

  if (is_pool_) {
    PROMISES_ASSIGN_OR_RETURN(int64_t quantity,
                              ctx_.rm->GetQuantity(txn, cls_));
    int64_t promised = 0;
    for (const PromiseRecord* r : active) {
      for (const Predicate& p : r->predicates) {
        if (p.resource_class() == cls_ &&
            p.kind() == PredicateKind::kQuantity) {
          int64_t demand = p.amount();
          auto cit = consumed_.find(std::make_pair(r->id, p.ToString()));
          if (cit != consumed_.end()) {
            demand = std::max<int64_t>(0, demand - cit->second);
          }
          promised += demand;
        }
      }
    }
    if (promised > quantity) {
      *reason = "promised " + std::to_string(promised) + " exceeds " +
                std::to_string(quantity) + " on hand";
      return false;
    }
    return true;
  }

  // Instance class: build the §5 bipartite graph.
  PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                            ctx_.rm->ListInstances(txn, cls_));
  const Schema* schema = ctx_.rm->GetSchema(cls_);

  // Right side: untaken (available) instances.
  std::vector<size_t> rights;  // index into `instances`
  std::map<std::string, size_t> right_of_id;
  for (size_t i = 0; i < instances.size(); ++i) {
    if (instances[i].status == InstanceStatus::kAvailable) {
      right_of_id[instances[i].id] = rights.size();
      rights.push_back(i);
    }
  }

  // Left side: demand units from every active promise on this class.
  std::vector<Unit> units;
  for (const PromiseRecord* r : active) {
    for (const Predicate& p : r->predicates) {
      if (p.resource_class() != cls_) continue;
      int64_t demand_count;
      if (p.kind() == PredicateKind::kNamed) {
        demand_count = 1;
      } else if (p.kind() == PredicateKind::kProperty) {
        demand_count = p.count();
      } else {
        continue;
      }
      // While an action consumes units under a promise it holds, the
      // consumed units no longer need backing.
      if (resolve_for.valid() && r->id == resolve_for &&
          resolve_pred != nullptr && p.Equals(*resolve_pred)) {
        demand_count = std::max<int64_t>(0, demand_count - resolve_taken);
      }
      std::vector<size_t> candidates;
      if (p.kind() == PredicateKind::kNamed) {
        auto it = right_of_id.find(p.instance_id());
        if (it != right_of_id.end()) candidates.push_back(it->second);
      } else {
        for (size_t ri = 0; ri < rights.size(); ++ri) {
          PROMISES_ASSIGN_OR_RETURN(
              bool m, InstanceMatches(p, instances[rights[ri]], schema));
          if (m) candidates.push_back(ri);
        }
      }
      for (int64_t u = 0; u < demand_count; ++u) {
        units.push_back(Unit{r->id, &p, candidates});
      }
    }
  }

  BipartiteGraph graph(units.size(), rights.size());
  for (size_t l = 0; l < units.size(); ++l) {
    for (size_t r : units[l].candidates) graph.AddEdge(l, r);
  }
  MatchingResult m = MaxMatching(graph);
  if (!m.Saturating()) {
    *reason = std::to_string(units.size()) + " demand units vs " +
              std::to_string(rights.size()) + " available instances; only " +
              std::to_string(m.size) + " satisfiable";
    return false;
  }

  if (resolve_for.valid() && resolved != nullptr && resolve_pred != nullptr) {
    for (size_t l = 0; l < units.size(); ++l) {
      if (units[l].promise == resolve_for &&
          units[l].pred->Equals(*resolve_pred)) {
        size_t r = m.match_left[l];
        if (r != MatchingResult::kUnmatched) {
          *resolved = instances[rights[r]].id;
        }
        break;
      }
    }
  }
  return true;
}

std::string SatisfiabilityEngine::SerializeState() const {
  std::string out;
  EncodeField(&out, "sat1");
  EncodeField(&out, std::to_string(consumed_.size()));
  for (const auto& [key, units] : consumed_) {
    EncodeField(&out, std::to_string(key.first.value()));
    EncodeField(&out, key.second);
    EncodeField(&out, std::to_string(units));
  }
  return out;
}

Status SatisfiabilityEngine::RestoreState(const std::string& blob) {
  std::string_view cursor(blob);
  auto next = [&cursor]() -> Result<int64_t> {
    PROMISES_ASSIGN_OR_RETURN(std::string field, DecodeField(&cursor));
    return ParseInt64(field);
  };
  PROMISES_ASSIGN_OR_RETURN(std::string tag, DecodeField(&cursor));
  if (tag != "sat1") {
    return Status::InvalidArgument("satisfiability engine '" + cls_ +
                                   "': unknown state tag '" + tag + "'");
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t entries, next());
  std::map<std::pair<PromiseId, std::string>, int64_t> consumed;
  for (int64_t i = 0; i < entries; ++i) {
    PROMISES_ASSIGN_OR_RETURN(int64_t id, next());
    PROMISES_ASSIGN_OR_RETURN(std::string pred, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(int64_t units, next());
    consumed[{PromiseId(static_cast<uint64_t>(id)), std::move(pred)}] = units;
  }
  consumed_ = std::move(consumed);
  return Status::OK();
}

}  // namespace promises
