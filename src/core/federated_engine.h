// §3.3 polymorphic federation across providers.
//
// "A hotel booking service could aggregate availability information
// from a number of providers, each with their own schemas for
// describing available rooms. A single predicate could be used to
// obtain a promise from any of these providers, as long as they all
// exported the set of properties required by the predicate."
//
// A FederatedEngine guards a *virtual* resource class whose population
// is the union of several concrete member classes. A property
// predicate over the virtual class may be backed by instances of any
// member whose schema exports every property the predicate uses
// (Schema::Exports is the §3.3 polymorphism test). Allocation is
// eager tag-style: chosen instances are marked 'promised' in their
// member class, so federation composes soundly with any
// status-marking engine guarding the members directly.

#ifndef PROMISES_CORE_FEDERATED_ENGINE_H_
#define PROMISES_CORE_FEDERATED_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"

namespace promises {

class FederatedEngine : public ResourceEngine {
 public:
  FederatedEngine(std::string virtual_class, std::vector<std::string> members,
                  EngineContext ctx)
      : cls_(std::move(virtual_class)),
        members_(std::move(members)),
        ctx_(ctx) {}

  Technique technique() const override { return Technique::kAllocatedTags; }
  const std::string& resource_class() const override { return cls_; }

  Status Reserve(Transaction* txn, const PromiseRecord& record,
                 const Predicate& pred) override;
  Status Unreserve(Transaction* txn, PromiseId id,
                   const Predicate& pred) override;
  Status VerifyConsistent(Transaction* txn, Timestamp now) override;
  /// Returns the qualified id "member/instance" of the next backing
  /// unit (without consuming it).
  Result<std::string> ResolveInstance(Transaction* txn, PromiseId id,
                                      const Predicate& pred,
                                      int64_t already_taken) override;
  /// Consumes the next backing unit IN ITS MEMBER CLASS and returns
  /// the qualified "member/instance" id.
  Result<std::string> TakeInstance(Transaction* txn, PromiseId id,
                                   const Predicate& pred,
                                   int64_t already_taken,
                                   ResourceManager* rm) override;
  Result<int64_t> CountHeadroom(Transaction* txn, Timestamp now,
                                const Predicate& pred) override;
  std::string SerializeState() const override;
  Status RestoreState(const std::string& blob) override;

  const std::vector<std::string>& members() const { return members_; }

 private:
  struct Assignment {
    std::string member;
    std::string instance;
  };
  using AssignKey = std::pair<PromiseId, std::string>;
  static AssignKey KeyOf(PromiseId id, const Predicate& pred) {
    return {id, pred.ToString()};
  }

  /// Member classes whose schema exports every property `pred` uses.
  Result<std::vector<std::string>> EligibleMembers(const Predicate& pred);

  std::string cls_;
  std::vector<std::string> members_;
  EngineContext ctx_;
  // Serialized by the virtual class's lock-manager stripe (the planned
  // scope closes over members, so member engines are covered too);
  // undo via transactions.
  std::map<AssignKey, std::vector<Assignment>> assignments_;
};

}  // namespace promises

#endif  // PROMISES_CORE_FEDERATED_ENGINE_H_
