// Pluggable promise-checking engines (§5 implementation techniques).
//
// "The Promises model places no limitations on ... the way that promise
// managers should implement these predicates to guarantee that they
// hold ... promise managers and resource managers are free to implement
// what ever form of constraint checking or isolation mechanism is best
// for the type of resource being protected."
//
// One engine instance guards one resource class. The promise manager
// routes each predicate to its class's engine:
//
//   kSatisfiability  §5 'Satisfiability Check' — stateless; re-checks
//                    the promise table against resource state (the
//                    prototype's mechanism, §8). Property views use
//                    bipartite matching.
//   kResourcePool    §5 'Resource Pool' — escrow-style O(1) reserved
//                    counter for anonymous pools (cf. O'Neil [8]).
//   kAllocatedTags   §5 'Allocated Tags' — eager soft-lock marking of
//                    chosen instances ('available'->'promised').
//   kTentative       §5 'Tentative allocation' — tags plus reallocation
//                    of tentative choices via augmenting paths.
//   kDelegated       §5 'Delegation' — promises backed by promises from
//                    a third-party promise maker.
//
// All engine mutations run inside the operation's local ACID
// transaction (§8) and must register undo closures so a violated or
// failed operation rolls back completely.

#ifndef PROMISES_CORE_ENGINE_H_
#define PROMISES_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "core/promise.h"
#include "core/promise_table.h"
#include "predicate/ast.h"
#include "resource/resource_manager.h"
#include "txn/transaction.h"

namespace promises {

enum class Technique {
  kSatisfiability,
  kResourcePool,
  kAllocatedTags,
  kTentative,
  kDelegated,
};

std::string_view TechniqueToString(Technique t);

/// Everything an engine may consult while checking.
struct EngineContext {
  ResourceManager* rm = nullptr;
  const PromiseTable* table = nullptr;
  const Clock* clock = nullptr;
};

/// Guards one resource class with one §5 technique.
class ResourceEngine {
 public:
  virtual ~ResourceEngine() = default;

  virtual Technique technique() const = 0;
  virtual const std::string& resource_class() const = 0;

  /// Attempts to secure `pred` for promise `record`. Called after the
  /// record is (tentatively) in the promise table. Returns
  /// kFailedPrecondition with a reason when the guarantee cannot be
  /// given; any state changes must be undoable through `txn`.
  virtual Status Reserve(Transaction* txn, const PromiseRecord& record,
                         const Predicate& pred) = 0;

  /// Releases the reservation `pred` of promise `id` (explicit release,
  /// expiry, or atomic-update handback). Must be undoable via `txn`.
  virtual Status Unreserve(Transaction* txn, PromiseId id,
                           const Predicate& pred) = 0;

  /// Post-action / post-grant verification (§8 promise checking): every
  /// promise active at `now` on this class must still be satisfiable
  /// from current resource state. Returns kViolated when not.
  virtual Status VerifyConsistent(Transaction* txn, Timestamp now) = 0;

  /// Which instance may the holder of `id` consume next under `pred`?
  /// `already_taken` instances were consumed under this predicate
  /// earlier in the same action. Pool engines return kUnimplemented.
  virtual Result<std::string> ResolveInstance(Transaction* txn, PromiseId id,
                                              const Predicate& pred,
                                              int64_t already_taken) = 0;

  /// Resolves AND consumes the next instance backing `pred` of promise
  /// `id`: the instance is marked 'taken' and its id returned. The
  /// default implementation takes in this engine's own class;
  /// federated engines override to take in the owning member class
  /// (returning a "member/instance" qualified id).
  virtual Result<std::string> TakeInstance(Transaction* txn, PromiseId id,
                                           const Predicate& pred,
                                           int64_t already_taken,
                                           ResourceManager* rm) {
    PROMISES_ASSIGN_OR_RETURN(
        std::string instance, ResolveInstance(txn, id, pred, already_taken));
    PROMISES_RETURN_IF_ERROR(rm->SetInstanceStatus(
        txn, resource_class(), instance, InstanceStatus::kTaken));
    return instance;
  }

  /// Largest amount a fresh quantity promise on this class could be
  /// granted right now (§6's "accepted with the condition XX" /
  /// counter-offer support). Engines without quantity semantics return
  /// kUnimplemented.
  virtual Result<int64_t> QuantityHeadroom(Transaction* txn, Timestamp now) {
    (void)txn;
    (void)now;
    return Status::Unimplemented("engine has no quantity headroom");
  }

  /// Largest `count` for which a fresh property promise with `pred`'s
  /// expression could be granted right now (counter-offer support for
  /// §3.3 property views). Engines without instance semantics return
  /// kUnimplemented.
  virtual Result<int64_t> CountHeadroom(Transaction* txn, Timestamp now,
                                        const Predicate& pred) {
    (void)txn;
    (void)now;
    (void)pred;
    return Status::Unimplemented("engine has no count headroom");
  }

  /// Opaque serialization of engine-internal state that is NOT
  /// derivable from the promise table + resource manager: escrow
  /// draw-down ledgers, instance assignments, matcher state.
  /// Checkpoints store the blob per class; RestoreState reinstalls it
  /// into a fresh engine after the table and resource manager have
  /// been restored. The default covers stateless engines: empty blob
  /// out, only an empty blob accepted back.
  virtual std::string SerializeState() const { return std::string(); }
  virtual Status RestoreState(const std::string& blob) {
    if (!blob.empty()) {
      return Status::InvalidArgument(
          "engine for '" + resource_class() +
          "' holds no internal state but the checkpoint carries some");
    }
    return Status::OK();
  }

  /// Records that the holder of `id` consumed `amount` units of this
  /// class under `pred` (quantity predicates only). Escrow-style
  /// engines draw the consumption down from the reservation so that a
  /// partially-consumed promise no longer demands the consumed units
  /// (§5 resource pool: sold goods leave the 'allocated' pool). Default
  /// no-op for engines without quantity state.
  virtual Status NoteConsumed(Transaction* txn, PromiseId id,
                              const Predicate& pred, int64_t amount) {
    (void)txn;
    (void)id;
    (void)pred;
    (void)amount;
    return Status::OK();
  }
};

/// Chooses the §5 technique per resource class ("simple heuristics to
/// choose an appropriate implementation technique for each class of
/// resources" — §10 future work, implemented here as explicit policy
/// with a heuristic default).
class TechniquePolicy {
 public:
  /// Default technique when no override exists: kResourcePool for pool
  /// classes (O(1) escrow counters fit count-only state), kTentative
  /// for instance classes (best grant rate at modest cost).
  static TechniquePolicy Heuristic();

  /// The prototype configuration: satisfiability checking everywhere.
  static TechniquePolicy SatisfiabilityEverywhere();

  void Set(const std::string& resource_class, Technique t) {
    overrides_[resource_class] = t;
  }

  Technique For(const std::string& resource_class, bool is_pool) const;

 private:
  enum class DefaultMode { kHeuristic, kSatisfiability };
  DefaultMode mode_ = DefaultMode::kHeuristic;
  std::map<std::string, Technique> overrides_;
};

}  // namespace promises

#endif  // PROMISES_CORE_ENGINE_H_
