// The Promise Manager (§2, §8) — the paper's core contribution.
//
// "A promise manager sits between clients and application services and
// implements Promise functionality on behalf of a number of services
// and resource managers. The job of a promise manager is to work with
// application services and resource managers to grant or deny promise
// requests, check on resource availability and ensure that promises are
// not violated."
//
// Faithful to the §8 prototype:
//  * every client request (grant / action / release / update) is
//    processed inside one local ACID transaction covering the action
//    code, the promise-table changes and the post-action consistency
//    check;
//  * actions that violate unreleased promises are rolled back and the
//    client receives a failure;
//  * promise expiry is swept lazily at the start of each operation (and
//    on demand via ExpireDue);
//  * the three §4 atomicity units are honoured: multi-predicate
//    requests grant all-or-nothing, <environment release-after> binds a
//    release to its action's success, and release_on_grant performs
//    atomic promise update (old promises return only if the new ones
//    are granted... and are kept when the new request is rejected).
//
// Concurrency model (striped operation locking)
// ---------------------------------------------
// Operations no longer serialize on a single per-manager lock. Each
// operation plans the set of resource classes its predicates, promise
// environment and action parameters touch, then acquires through the
// 2PL lock manager:
//
//   "pm:<name>"            kShared   (intention; kExclusive for
//                                     whole-manager operations)
//   "pm:<name>/c:<cls>"    kExclusive, in sorted class order
//
// The planned class set is closed under federation (virtual class <->
// members, both directions) and under due-promise overlap, so expiry
// sweeping and engine side effects stay inside the held stripes. A
// service that touches an unplanned class acquires its stripe lazily
// through the ActionContext helpers — out of the deterministic order,
// so the lock manager's deadlock detection may abort the action (the
// operation rolls back, §8 style). Whole-manager operations
// (ReportExternalDamage / ReportInstanceLost / ExpireDue) take the
// root key exclusively instead. Post-action verification covers the
// held stripes plus any class the action wrote through the resource
// manager behind the manager's back (derived from the transaction's
// exclusive resource keys).
//
// Logged operations keep their stripe scope: durability no longer
// forces whole-manager serialization. Each operation enqueues its log
// record at OperationLog's sequencing point BEFORE committing (i.e.
// before its stripe locks release), so log-append order is a valid
// serialization order — any two conflicting operations ordered by 2PL
// are log-ordered the same way, and non-conflicting striped
// operations commute. The durable ack (group commit) is awaited AFTER
// the commit, off the critical section. Records carry the promise id
// they consumed, so replay reproduces ids even though concurrent
// allocation order may differ from log order.

#ifndef PROMISES_CORE_PROMISE_MANAGER_H_
#define PROMISES_CORE_PROMISE_MANAGER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/oplog.h"
#include "core/promise.h"
#include "core/promise_table.h"
#include "core/service_api.h"
#include "protocol/message.h"
#include "protocol/transport.h"
#include "resource/resource_manager.h"
#include "txn/transaction.h"

namespace promises {

struct PromiseManagerConfig {
  /// Transport endpoint name of this manager.
  std::string name = "promise-manager";
  /// Duration used when a request asks for 0 (unspecified).
  DurationMs default_duration_ms = 60'000;
  /// Upper bound; the manager "might offer a guarantee that expires
  /// sooner than the client wished" (§6).
  DurationMs max_duration_ms = 3'600'000;
  /// §5 technique per resource class.
  TechniquePolicy policy = TechniquePolicy::Heuristic();
  /// §2: "the restrictions could be enforced to some degree by promise
  /// and resource managers". When true, actions may only consume
  /// resources under a covering environment promise — unprotected
  /// TakeQuantity is refused instead of being caught (or not) by the
  /// post-action check. Reads and deposits remain free.
  bool strict_actions = false;
  /// How long a queued request (§6's 'pending' result, implemented by
  /// RequestPromiseOrQueue) waits for resources to free before it is
  /// finally rejected.
  DurationMs pending_patience_ms = 60'000;
  /// Federated-cluster shard guard (DESIGN.md §13). When shard_index
  /// is >= 0, Handle() validates any <route> header on the inbound
  /// envelope: the stamped shard must equal shard_index and the
  /// stamped topology version must equal topology_version, otherwise
  /// the request fails kFailedPrecondition before touching the dedup
  /// table or any lock stripe — a router holding a stale (or newer)
  /// topology must re-plan, not land on the wrong shard's books.
  /// Envelopes without a <route> header pass untouched (unrouted
  /// single-manager traffic). -1 disables the guard entirely.
  int32_t shard_index = -1;
  uint64_t topology_version = 0;
  /// Exactly-once processing: Handle keeps the reply envelopes of the
  /// most recent `dedup_capacity` completed requests, keyed by
  /// (sender, message id), and replays the cached reply when the same
  /// message arrives again — so an at-least-once client (retries after
  /// lost requests/replies, duplicate deliveries) observes each request
  /// processed exactly once. FIFO-evicted; 0 disables deduplication.
  size_t dedup_capacity = 4096;
};

/// Outcome of a promise request — a normal value, not an error (§9:
/// "unfulfillable promise requests are rejected immediately").
struct GrantOutcome {
  bool accepted = false;
  PromiseId promise_id;
  DurationMs duration_ms = 0;
  std::string reason;
  /// §6 "accepted with the condition XX": when a rejected request's
  /// quantity/property predicates have a weaker variant that is
  /// currently grantable, this carries the strongest such predicate
  /// list (textual form) as a counter-offer. Empty when no weaker
  /// variant exists (including any named predicate in the bundle).
  /// Exact for single-predicate requests; best-effort for
  /// multi-predicate ones, and conservative for atomic updates
  /// (computed with the handbacks still held).
  std::string counter_offer;
  /// Promise id the request consumed from the generator, including on
  /// rejections that happened after allocation (resource shortfall).
  /// Invalid (0) when the request was rejected before allocating.
  /// Persisted in the operation log so replay can pin the generator.
  PromiseId consumed_id;
};

/// Outcome of an application action executed through the manager.
struct ActionOutcome {
  bool ok = false;
  std::string error;
  std::map<std::string, Value> outputs;
};

struct PromiseManagerStats {
  uint64_t requests = 0;
  uint64_t granted = 0;
  uint64_t rejected = 0;
  uint64_t released = 0;
  uint64_t expired = 0;
  uint64_t updates = 0;             ///< release_on_grant exchanges
  uint64_t actions = 0;
  uint64_t action_failures = 0;
  uint64_t violations_rolled_back = 0;
  uint64_t expired_use_errors = 0;  ///< §2 'promise-expired' errors
  uint64_t promises_broken = 0;     ///< broken by external events (§2)
  uint64_t duplicates_replayed = 0; ///< replies served from the dedup table
  uint64_t deadline_sheds = 0;      ///< dead-on-arrival requests refused
};

/// The lock-manager stripes one operation holds: the root intention key
/// (kShared, or kExclusive for whole-manager operations) plus one
/// exclusive stripe per resource class. The class set is closed under
/// federation, so engine side effects on member classes stay covered.
struct LockScope {
  bool whole_manager = false;
  std::set<std::string> classes;

  bool Covers(const std::string& cls) const {
    return whole_manager || classes.count(cls) > 0;
  }
  bool CoversAll(const std::vector<std::string>& cls_list) const {
    if (whole_manager) return true;
    for (const std::string& c : cls_list) {
      if (classes.count(c) == 0) return false;
    }
    return true;
  }
};

class PromiseManager {
 public:
  /// `transport` may be null for purely in-process use; when provided,
  /// the manager registers itself under `config.name` and unregisters
  /// on destruction.
  PromiseManager(PromiseManagerConfig config, Clock* clock,
                 ResourceManager* rm, TransactionManager* tm,
                 Transport* transport = nullptr);
  ~PromiseManager();

  PromiseManager(const PromiseManager&) = delete;
  PromiseManager& operator=(const PromiseManager&) = delete;

  // --- Direct (in-process) API ---

  /// Requests promises for all `predicates` atomically (§4).
  /// `release_on_grant` promises are handed back in the same atomic
  /// unit — the §4 upgrade/weaken primitive. `duration_ms` 0 selects
  /// the configured default.
  Result<GrantOutcome> RequestPromise(
      ClientId client, std::vector<Predicate> predicates,
      DurationMs duration_ms = 0,
      std::vector<PromiseId> release_on_grant = {});

  /// Releases promises explicitly. Releasing an unknown/expired id is
  /// reported in the Status but others in the batch still release.
  Status Release(ClientId client, const std::vector<PromiseId>& ids);

  /// Executes an application action under `env` (§8 flow: validate
  /// environment, run service, process release-after, verify touched
  /// promises, commit or roll back).
  Result<ActionOutcome> Execute(ClientId client, const ActionBody& action,
                                const EnvironmentHeader& env = {});

  // --- Pending requests (§6: "Promise responses could also return
  // other results, such as 'pending'") ---

  /// Ticket identifying a queued promise request.
  using PendingTicket = uint64_t;

  struct QueuedOutcome {
    /// Granted immediately (outcome valid) or queued (ticket valid).
    bool queued = false;
    GrantOutcome outcome;
    PendingTicket ticket = 0;
  };

  /// Like RequestPromise, but a currently-ungrantable request joins a
  /// FIFO wait queue instead of being rejected. Queued requests are
  /// retried whenever resources may have freed (releases, expiry,
  /// actions) and lapse after `pending_patience_ms`.
  Result<QueuedOutcome> RequestPromiseOrQueue(
      ClientId client, std::vector<Predicate> predicates,
      DurationMs duration_ms = 0);

  /// Resolution state of a queued request: `queued` while waiting;
  /// otherwise the final outcome (granted, or rejected after patience
  /// ran out). Resolved tickets are consumed by the poll.
  Result<QueuedOutcome> PollPending(ClientId client, PendingTicket ticket);

  /// Withdraws a queued request.
  Status CancelPending(ClientId client, PendingTicket ticket);

  size_t pending_requests() const {
    std::lock_guard<std::mutex> lk(pending_mu_);
    return pending_.size();
  }

  // --- Protocol entry point (§6) ---

  /// Handles one envelope that may combine a <promise-request>,
  /// <release>, <environment> and <action>; returns the reply envelope
  /// with the corresponding <promise-response> / <action-result>.
  ///
  /// Exactly-once: a request whose (from, message id) was already
  /// processed returns the original cached reply without re-executing
  /// (and without re-logging), so client retries and duplicate
  /// deliveries are harmless. A duplicate of a request still in flight
  /// on another thread fails with kUnavailable (retryable) rather than
  /// racing it. Envelopes with message id 0 bypass deduplication.
  Result<Envelope> Handle(const Envelope& request);

  /// Stable ClientId for a protocol-level sender name.
  ClientId ClientFor(const std::string& name);

  // --- Epoch-batched execution (DESIGN.md §14) ---
  //
  // The facade core/epoch_executor.h drives. An epoch owns the whole
  // manager (root key exclusive) for its duration; every batched
  // envelope then executes on a pre-serialized transaction that skips
  // the lock manager entirely — the epoch's class partitioning is the
  // serialization guarantee (lock-free within a partition). Durability
  // is batched too: HandleInEpoch returns each operation's log
  // sequence instead of awaiting it, and the executor waits once per
  // epoch on the maximum before completing any reply.

  /// Outcome of one batched envelope.
  struct EpochOpResult {
    Result<Envelope> reply = Status::Internal("not executed");
    /// The operation's planned or runtime class closure escaped the
    /// partition it was assigned to; nothing committed or logged. The
    /// executor must re-run it in the epoch's serial phase.
    bool partition_miss = false;
    /// Log sequence of the operation's record; 0 when nothing was
    /// logged. The epoch waits once on the max over the batch.
    uint64_t log_sequence = 0;
  };

  /// Takes the whole manager exclusively for an epoch (a real
  /// transaction through the lock manager, so in-flight striped
  /// traffic drains first and the fuzzy-capture hooks fire). Commit
  /// the returned transaction to end the epoch.
  Result<std::unique_ptr<Transaction>> AcquireEpoch();

  /// Planned class closure of `request` — what the epoch sealer
  /// partitions on. Recomputed (and re-checked) at execution time, so
  /// a stale plan degrades to a partition miss, never to a race.
  std::set<std::string> PlanEnvelopeClasses(const Envelope& request) const;

  /// Executes one envelope inside an epoch (the caller holds the
  /// epoch transaction). `allowed` restricts the operation's runtime
  /// closure to the worker's partition classes; nullptr (the serial
  /// phase) allows everything.
  EpochOpResult HandleInEpoch(const Envelope& request,
                              const std::set<std::string>* allowed);

  /// Waits for every log record up to `max_sequence` to be durable —
  /// the epoch's single group-commit wait. 0 is a no-op; on failure
  /// the log is detached exactly like the per-operation path.
  Status WaitEpochDurable(uint64_t max_sequence);

  // --- Configuration ---

  void RegisterService(const std::string& name, ServiceFn fn);

  /// Marks `cls` as delegated to the promise maker at transport
  /// endpoint `upstream` (§5 Delegation). Requires a transport.
  Status DelegateClass(const std::string& cls, const std::string& upstream);

  /// Declares `virtual_cls` as the federation of existing instance
  /// classes (§3.3 polymorphic providers): property predicates over
  /// the virtual class are backed by instances of any member whose
  /// schema exports the predicate's properties.
  Status FederateClass(const std::string& virtual_cls,
                       std::vector<std::string> members);

  // --- External violations (§2) ---
  //
  // "Promise violation is still possible for other reasons (an accident
  // might damage previously-promised stock or a third party may default
  // on a promise they have made) but these incidents can now be treated
  // as serious exceptions."

  /// Invoked (outside the operation transaction) for each promise the
  /// manager had to break because of an external event.
  using ViolationHandler =
      std::function<void(const PromiseRecord&, const std::string& reason)>;
  void SetViolationHandler(ViolationHandler handler) {
    violation_handler_ = std::move(handler);
  }

  /// Records that `quantity_lost` units of pool `cls` were destroyed by
  /// an external event. Unlike a client action, the loss is reality and
  /// is NOT rolled back; instead, promises are broken (newest first)
  /// until the remaining set is honourable again. Returns the broken
  /// promise ids. Whole-manager operation: takes the root key
  /// exclusively (the broken-promise hunt may widen to any class).
  Result<std::vector<PromiseId>> ReportExternalDamage(const std::string& cls,
                                                      int64_t quantity_lost);

  /// Records that a specific instance was destroyed/withdrawn. The
  /// instance is marked taken; promises that can no longer be backed
  /// are broken and returned. Whole-manager operation.
  Result<std::vector<PromiseId>> ReportInstanceLost(const std::string& cls,
                                                    const std::string& id);

  // --- Durability (§8's ACID 'D', substituting the prototype's DBMS) ---

  /// Attaches an operation log: every subsequent state-changing client
  /// operation (request / release / action / external event) is
  /// appended, making the manager recoverable with ReplayLog. Logged
  /// operations keep their striped lock scope; each record is enqueued
  /// at the log's sequencing point before the operation's commit, so
  /// append order is a valid serialization order, and each record
  /// carries the promise id it consumed so replay reproduces ids
  /// exactly (see the file header). When the log has a group-commit
  /// writer running, the durable ack is awaited after commit; on
  /// append/durability failure the log is detached (counted by the
  /// promises_oplog_detached_total metric) and the failing operation
  /// returns kDataLoss — its in-memory effect stands, but it is not in
  /// the log. Not supported for managers with delegated classes
  /// (distributed recovery is out of scope; see DESIGN.md) or with
  /// requests already queued as pending.
  Status AttachLog(OperationLog* log);

  /// Replays a recovered log against this (freshly constructed)
  /// manager: the same resource definitions must already be in the RM,
  /// and `clock` must be the manager's own SimulatedClock, which is
  /// advanced to each record's timestamp so expiry decisions replay
  /// identically. Must be called before AttachLog.
  Status ReplayLog(const std::vector<LogRecord>& records,
                   SimulatedClock* clock);

  /// ReplayLog with `workers` threads. Records are partitioned into
  /// connected components over shared resource classes / promise ids;
  /// independent components replay concurrently (each in log order,
  /// with the record's timestamp pinned thread-locally). Whole-manager
  /// records (external damage, ExpireDue-style) act as barriers.
  /// `workers` <= 1 falls back to the sequential ReplayLog.
  Status ReplayLogParallel(const std::vector<LogRecord>& records,
                           SimulatedClock* clock, int workers);

  // --- Checkpointing (bounded recovery; see core/checkpoint.h) ---

  /// Captures a fuzzy checkpoint at a cut LSN chosen under a momentary
  /// root-exclusive barrier. Requires an attached log (the cut is the
  /// log's sequencing point). The sweep runs per-stripe while normal
  /// traffic continues; concurrent operations copy-on-read any
  /// still-pending class before touching it. Retries a bounded number
  /// of times if a raw resource-manager write poisons the capture.
  Result<CheckpointData> CaptureCheckpoint();

  /// Restores a checkpoint into this freshly constructed manager (same
  /// contract as ReplayLog: resource definitions, federations and
  /// services must already be registered; call before AttachLog).
  /// Advances `clock` to the capture timestamp and pins the promise-id
  /// generator past the watermark so tail replay reproduces ids.
  Status RestoreCheckpoint(const CheckpointData& data, SimulatedClock* clock);

  // --- Maintenance & introspection ---

  /// Sweeps promises whose deadline passed; returns how many expired.
  /// Whole-manager operation (covers every class).
  size_t ExpireDue();

  /// Promise still in the table (active), or nullptr. Not synchronized
  /// with concurrent operations; intended for quiesced inspection.
  const PromiseRecord* FindPromise(PromiseId id) const;

  size_t active_promises() const { return table_.size(); }
  PromiseManagerStats stats() const;
  const std::string& name() const { return config_.name; }

  /// Engine guarding `cls` if one has been created yet.
  ResourceEngine* EngineIfExists(const std::string& cls);

  /// Human-readable dump of the promise table and engine assignments
  /// (ops/debug tooling; quiesced use only).
  std::string DumpState() const;

 private:
  friend class ActionContext;

  std::string RootKey() const { return "pm:" + config_.name; }
  std::string StripeKey(const std::string& cls) const {
    return "pm:" + config_.name + "/c:" + cls;
  }

  /// Begins the per-request ACID transaction and acquires the
  /// operation's lock scope: root intention key plus one exclusive
  /// stripe per planned class (closed under federation and due-promise
  /// overlap), in deterministic sorted order. `whole_manager` (forced
  /// while a log is attached) takes the root key exclusively instead.
  Result<std::unique_ptr<Transaction>> BeginOperation(
      LockScope* scope, std::set<std::string> classes,
      bool whole_manager = false);

  /// Closes `classes` under federation: virtual class -> members (its
  /// engine marks instances there) and member -> virtual classes (an
  /// action damaging a member must re-verify the virtual engine).
  void ExpandClasses(std::set<std::string>* classes) const;

  /// Adds the classes of due promises whose class set overlaps
  /// `classes` (to fixpoint), so the lazy expiry sweep can remove them
  /// entirely inside the held stripes.
  void AddDueClasses(std::set<std::string>* classes) const;

  /// ExpandClasses + AddDueClasses to a joint fixpoint.
  void PlanClosure(std::set<std::string>* classes) const;

  /// Acquires `cls`'s stripe (and its federation closure) if the scope
  /// does not already cover it. Late, out-of-plan acquisition: may be
  /// refused with kDeadlock by cycle detection.
  Status EnsureClassLocked(Transaction* txn, LockScope* scope,
                           const std::string& cls);

  Result<ResourceEngine*> EngineFor(const std::string& cls);

  // --- Fuzzy-capture hooks (CaptureCheckpoint) ---

  /// Fast-path hook at the end of BeginOperation: while a capture is
  /// active, copies every still-pending class the scope covers (all
  /// pending classes for whole-manager scopes) into the checkpoint
  /// before the operation can mutate them. Lock-free when no capture
  /// is running.
  void CaptureScopeClasses(const LockScope& scope);

  /// Same hook for late stripe acquisition (EnsureClassLocked): caller
  /// just acquired `cls`'s stripe and has not yet mutated it.
  void CaptureClassIfPending(const std::string& cls);

  /// Marks the active capture unusable (raw resource-manager write to
  /// an uncaptured class, or an export failure); CaptureCheckpoint
  /// discards it and retries with a fresh cut.
  void PoisonCapture(const std::string& reason);

  /// Copies `cls`'s at-cut state (pool quantity / instances / promise
  /// records / engine blob) into the capture and removes it from the
  /// pending set. Caller holds capture_mu_ AND cls's stripe.
  void CaptureClassLocked(const std::string& cls);

  /// Every class a capture must cover: pool + instance classes, plus
  /// classes referenced by promises or engines (federated virtuals).
  std::set<std::string> CheckpointClasses() const;

  /// Lazy expiry sweep inside an operation: expires the due promises
  /// whose classes the scope fully covers (uncovered ones belong to
  /// other operations or the whole-manager ExpireDue).
  Status ExpireDueLocked(Transaction* txn, const LockScope& scope);

  /// Grant path. On logical rejection, rolls the transaction back to
  /// the undo mark so the operation can continue (reply still sent).
  /// Requires the scope to cover every predicate/handback class.
  Result<GrantOutcome> GrantLocked(Transaction* txn, ClientId client,
                                   std::vector<Predicate> predicates,
                                   DurationMs duration_ms,
                                   const std::vector<PromiseId>& handbacks);

  /// Releases one promise: engine unreserve + table removal (undoable).
  Status ReleaseOneLocked(Transaction* txn, PromiseId id,
                          PromiseState final_state);

  /// §8 post-step over every existing engine (whole-manager paths).
  Status VerifyAllLocked(Transaction* txn);

  /// §8 post-step, scoped: verifies the engines of the held stripes
  /// plus any class the transaction wrote through the resource manager
  /// (exclusive "pool:"/"class:" keys), late-locking the latter.
  Status VerifyTouchedLocked(Transaction* txn, LockScope* scope);

  /// Action path including release-after and verification.
  Result<ActionOutcome> ExecuteLocked(Transaction* txn, LockScope* scope,
                                      ClientId client,
                                      const ActionBody& action,
                                      const EnvironmentHeader& env);

  /// Idempotency-table key: sender's protocol name + message id.
  using DedupKey = std::pair<std::string, uint64_t>;

  /// Thread-local context set while HandleInEpoch runs on this
  /// thread: switches BeginOperation to pre-serialized transactions,
  /// arms the partition guard in BeginOperation/EnsureClassLocked,
  /// and defers the durable wait to the epoch's group wait.
  struct EpochTls {
    const std::set<std::string>* allowed = nullptr;
    bool miss = false;
    uint64_t log_sequence = 0;
  };
  static thread_local EpochTls* tls_epoch_;

  /// Classes an envelope's parts reference (pre-closure); the shared
  /// planning step of HandleInner and PlanEnvelopeClasses.
  std::set<std::string> PlanEnvelope(const Envelope& request) const;

  /// Handle minus the idempotency layer: always executes the envelope.
  /// When `dedup_key` is non-null, the reply is inserted into the
  /// completed-dedup table at the operation's log sequencing point
  /// (inside the stripe locks), tagged with the record's LSN — so a
  /// checkpoint's LSN filter sees exactly the replies at its cut.
  Result<Envelope> HandleInner(const Envelope& request,
                               const DedupKey* dedup_key);

  /// Shared tail of the ReportExternal* entry points: breaks promises
  /// on `cls` (newest first) until every engine verifies again, logs
  /// `log_payload` at the sequencing point (when a log is attached),
  /// then commits, notifies the violation handler and awaits the
  /// durable ack.
  Result<std::vector<PromiseId>> BreakUntilConsistent(
      std::unique_ptr<Transaction> txn, const std::string& cls,
      const std::string& reason, const std::string& log_payload);

  /// Adds the predicate classes of promise `id` (if still present) to
  /// `classes` — lock planning for handbacks / releases / environments.
  void AddPromiseClasses(std::set<std::string>* classes, PromiseId id) const;

  /// Lock-planning heuristic for actions: any string parameter naming a
  /// known resource class is assumed touched (well-behaved services
  /// address resources by class-name parameters; ill-behaved ones fall
  /// back to lazy locking and the post-action write check).
  void AddActionClasses(std::set<std::string>* classes,
                        const ActionBody& action) const;

  bool IsDelegated(const std::string& cls) const;
  bool IsFederated(const std::string& cls) const;

  PromiseManagerConfig config_;
  Clock* clock_;
  ResourceManager* rm_;
  TransactionManager* tm_;
  Transport* transport_;

  // Synchronization map (see file header for the lock-ordering policy):
  //  * promise/engine/resource *state* is guarded by the lock-manager
  //    stripes an operation holds (LockScope);
  //  * table_ additionally guards its own map structure internally;
  //  * engines_mu_ guards the engines_ map shape (engine objects are
  //    guarded by their class stripe; creation is serialized because
  //    EngineFor(cls) is only called while holding cls's stripe);
  //  * config_mu_ guards delegated_/federated_/member_to_virtual_/
  //    services_ registration maps;
  //  * pending_mu_ guards the pending-request queue and fulfilled map;
  //  * client_mu_ guards the client-name registry.
  // All of these are leaf mutexes: nothing acquires a lock-manager key
  // or another mutex while holding one.
  PromiseTable table_;
  mutable std::mutex engines_mu_;
  std::map<std::string, std::unique_ptr<ResourceEngine>> engines_;
  mutable std::mutex config_mu_;
  std::map<std::string, std::string> delegated_;  // class -> upstream
  std::map<std::string, std::vector<std::string>> federated_;
  // instance class -> virtual classes federating over it.
  std::map<std::string, std::vector<std::string>> member_to_virtual_;
  std::map<std::string, ServiceFn> services_;
  std::map<std::string, ClientId> client_ids_;  // guarded by client_mu_

  IdGenerator<PromiseId> promise_ids_;
  IdGenerator<ClientId> client_id_gen_;

  /// Handle to an in-flight log append: produced by LogOperation at
  /// the sequencing point (before the operation commits), redeemed by
  /// AwaitLogDurable after the commit releases the stripe locks.
  struct LogTicket {
    OperationLog* log = nullptr;  ///< null: nothing was logged
    uint64_t sequence = 0;
    Status enqueue_error;  ///< append refused/failed at the sequencing point
  };

  /// Enqueues `payload` at the attached log's sequencing point (no-op
  /// ticket when detached / replaying). `consumed` is the promise id
  /// the operation allocated, if any. Call before txn->Commit() so log
  /// order matches serialization order.
  LogTicket LogOperation(const std::string& payload,
                         PromiseId consumed = PromiseId());
  /// Waits for the ticket's record to be durable. On failure detaches
  /// the log (once, with a metrics counter + error span) and returns
  /// kDataLoss: the operation's in-memory effect stands but did not
  /// reach the log. OK for empty tickets.
  Status AwaitLogDurable(const LogTicket& ticket);
  /// Detaches `expected` (idempotent CAS) after a durability failure.
  void DetachLog(OperationLog* expected, const Status& cause);
  /// Name under which `client` was registered (for synthesizing log
  /// envelopes from direct-API calls).
  const std::string& NameOf(ClientId client);

  /// Retries queued requests inside the current operation: claims the
  /// entries whose classes the scope covers (plus lapsed ones), grants
  /// or re-queues them in ticket (FIFO) order.
  Status DrainPendingScoped(Transaction* txn, const LockScope& scope);

  ViolationHandler violation_handler_;
  // Atomic: read lock-free on every operation's fast path and cleared
  // by whichever concurrent operation first observes a durability
  // failure (DetachLog CAS).
  std::atomic<OperationLog*> oplog_{nullptr};
  // Client registry has its own mutex: ClientFor is called from client
  // threads outside the operation locks.
  mutable std::mutex client_mu_;
  std::map<ClientId, std::string> client_names_;

  struct PendingRequest {
    PendingTicket ticket;
    ClientId client;
    std::vector<Predicate> predicates;
    DurationMs duration_ms;
    Timestamp patience_deadline;
  };
  mutable std::mutex pending_mu_;
  std::vector<PendingRequest> pending_;  // FIFO (ticket order)
  std::map<PendingTicket, std::pair<ClientId, GrantOutcome>> fulfilled_;
  uint64_t next_ticket_ = 1;

  // Idempotency table (exactly-once processing). Keyed by the sender's
  // protocol name + message id; holds the full reply envelope so a
  // retry gets a byte-identical answer (same promise id, same result).
  // Repopulated by ReplayLog, since replay drives the same Handle path
  // — dedup therefore survives crash recovery. dedup_mu_ is a leaf
  // mutex, never held across a whole HandleInner call (HandleInner
  // takes it briefly at its sequencing point).
  struct DedupEntry {
    Envelope reply;
    /// LSN of the operation that produced the reply; 0 when it predates
    /// the log (no-log path, restored legacy entries).
    uint64_t lsn = 0;
  };
  mutable std::mutex dedup_mu_;
  std::map<DedupKey, DedupEntry> dedup_completed_;
  std::deque<DedupKey> dedup_fifo_;  // insertion order, for eviction
  std::set<DedupKey> dedup_in_progress_;

  // Fuzzy-capture state. capture_active_ is the lock-free fast-path
  // flag the hooks check on every operation; capture_mu_ guards the
  // rest. Lock order: operations take capture_mu_ while holding their
  // class stripes, and CaptureClassLocked reads engines_/table_ state
  // while holding capture_mu_ — so capture_mu_ orders BEFORE
  // engines_mu_ and the table's internal lock, and nothing may take
  // capture_mu_ while holding either of those.
  std::atomic<bool> capture_active_{false};
  mutable std::mutex capture_mu_;
  struct CaptureState {
    bool active = false;
    bool poisoned = false;
    std::string poison_reason;
    uint64_t cut_lsn = 0;
    std::set<std::string> pending;  ///< classes not yet captured
    std::unique_ptr<CheckpointData> data;
  };
  CaptureState capture_;

  struct AtomicStats {
    std::atomic<uint64_t> requests{0}, granted{0}, rejected{0}, released{0},
        expired{0}, updates{0}, actions{0}, action_failures{0},
        violations_rolled_back{0}, expired_use_errors{0},
        promises_broken{0}, duplicates_replayed{0}, deadline_sheds{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace promises

#endif  // PROMISES_CORE_PROMISE_MANAGER_H_
