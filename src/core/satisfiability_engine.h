// §5 'Satisfiability Check' engine — the prototype's mechanism (§8).
//
// "The promise manager keeps a record of all the promises it is
// currently committed to honouring and also has access to the current
// state of all resources covered by these promises. Whenever a new
// promise request is received, the manager checks that it and all
// relevant existing promises can be honoured, based on the current
// state of the resources involved."
//
// Stateless: truth lives in the promise table plus the resource
// manager, so Reserve and VerifyConsistent are the same computation
// (reported as kFailedPrecondition vs kViolated respectively).
//
//  * Pool classes: available quantity >= sum of promised amounts. The
//    summation realises §9's disjointness semantics — promises for
//    'balance>100' and 'balance>50' jointly require more than 150.
//  * Instance classes: bipartite matching between demand units (named
//    predicates pin one instance; count-k property predicates demand k
//    matching instances) and untaken instances; §3.2's rule that a
//    named-promised seat is excluded from anonymous-count promises
//    falls out of the matching.

#ifndef PROMISES_CORE_SATISFIABILITY_ENGINE_H_
#define PROMISES_CORE_SATISFIABILITY_ENGINE_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "matching/bipartite.h"

namespace promises {

class SatisfiabilityEngine : public ResourceEngine {
 public:
  SatisfiabilityEngine(std::string resource_class, bool is_pool,
                       EngineContext ctx)
      : cls_(std::move(resource_class)), is_pool_(is_pool), ctx_(ctx) {}

  Technique technique() const override { return Technique::kSatisfiability; }
  const std::string& resource_class() const override { return cls_; }

  Status Reserve(Transaction* txn, const PromiseRecord& record,
                 const Predicate& pred) override;
  Status Unreserve(Transaction* txn, PromiseId id,
                   const Predicate& pred) override;
  Status VerifyConsistent(Transaction* txn, Timestamp now) override;
  Result<std::string> ResolveInstance(Transaction* txn, PromiseId id,
                                      const Predicate& pred,
                                      int64_t already_taken) override;
  Status NoteConsumed(Transaction* txn, PromiseId id, const Predicate& pred,
                      int64_t amount) override;
  Result<int64_t> QuantityHeadroom(Transaction* txn, Timestamp now) override;
  Result<int64_t> CountHeadroom(Transaction* txn, Timestamp now,
                                const Predicate& pred) override;
  std::string SerializeState() const override;
  Status RestoreState(const std::string& blob) override;

 private:
  /// One demand unit in the satisfiability graph.
  struct Unit {
    PromiseId promise;
    const Predicate* pred;
    std::vector<size_t> candidates;  // indexes into available instances
  };

  /// Core check; `reason` receives a human-readable failure cause.
  /// `resolve_for`/`resolve_taken`: when promise is valid, also report
  /// the instance matched to that promise's (already_taken+1)-th unit
  /// via `resolved`.
  Result<bool> CheckNow(Transaction* txn, Timestamp now, std::string* reason,
                        PromiseId resolve_for = PromiseId(),
                        const Predicate* resolve_pred = nullptr,
                        int64_t resolve_taken = 0,
                        std::string* resolved = nullptr);

  std::string cls_;
  bool is_pool_;
  EngineContext ctx_;
  // Units already consumed under a (promise, quantity predicate) pair;
  // subtracted from the predicate's demand during checking so that a
  // partially-consumed promise no longer claims the consumed units.
  // Serialized by this class's lock-manager stripe; undo via
  // transactions.
  std::map<std::pair<PromiseId, std::string>, int64_t> consumed_;
};

}  // namespace promises

#endif  // PROMISES_CORE_SATISFIABILITY_ENGINE_H_
