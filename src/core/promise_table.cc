#include "core/promise_table.h"

#include <mutex>

namespace promises {

std::string_view PromiseStateToString(PromiseState s) {
  switch (s) {
    case PromiseState::kActive: return "active";
    case PromiseState::kReleased: return "released";
    case PromiseState::kExpired: return "expired";
    case PromiseState::kViolated: return "violated";
  }
  return "unknown";
}

Status PromiseTable::Insert(PromiseRecord record) {
  PromiseId id = record.id;
  if (!id.valid()) {
    return Status::InvalidArgument("promise id must be valid");
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (records_.count(id)) {
    return Status::AlreadyExists("promise " + id.ToString() +
                                 " already in table");
  }
  for (const Predicate& p : record.predicates) {
    by_class_[p.resource_class()].insert(id);
  }
  by_deadline_.emplace(record.expires_at, id);
  records_.emplace(id, std::move(record));
  return Status::OK();
}

Result<PromiseRecord> PromiseTable::Remove(PromiseId id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("promise " + id.ToString() + " not in table");
  }
  PromiseRecord record = std::move(it->second);
  for (const Predicate& p : record.predicates) {
    auto cit = by_class_.find(p.resource_class());
    if (cit != by_class_.end()) {
      cit->second.erase(id);
      if (cit->second.empty()) by_class_.erase(cit);
    }
  }
  by_deadline_.erase({record.expires_at, id});
  records_.erase(it);
  return record;
}

const PromiseRecord* PromiseTable::Find(PromiseId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

PromiseRecord* PromiseTable::FindMutable(PromiseId id) {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::optional<std::vector<std::string>> PromiseTable::ClassesOf(
    PromiseId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  std::vector<std::string> classes;
  classes.reserve(it->second.predicates.size());
  for (const Predicate& p : it->second.predicates) {
    classes.push_back(p.resource_class());
  }
  return classes;
}

std::vector<const PromiseRecord*> PromiseTable::ActiveForClass(
    const std::string& resource_class, Timestamp now) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<const PromiseRecord*> out;
  auto cit = by_class_.find(resource_class);
  if (cit == by_class_.end()) return out;
  for (PromiseId id : cit->second) {
    const PromiseRecord& r = records_.at(id);
    if (r.ActiveAt(now)) out.push_back(&r);
  }
  return out;
}

std::vector<const PromiseRecord*> PromiseTable::Active(Timestamp now) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<const PromiseRecord*> out;
  out.reserve(records_.size());
  for (const auto& [id, r] : records_) {
    (void)id;
    if (r.ActiveAt(now)) out.push_back(&r);
  }
  return out;
}

std::vector<PromiseId> PromiseTable::DueIds(Timestamp now) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<PromiseId> out;
  for (const auto& [deadline, id] : by_deadline_) {
    if (deadline > now) break;
    out.push_back(id);
  }
  return out;
}

std::vector<PromiseRecord> PromiseTable::RecordsForClass(
    const std::string& resource_class) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<PromiseRecord> out;
  auto cit = by_class_.find(resource_class);
  if (cit == by_class_.end()) return out;
  out.reserve(cit->second.size());
  for (PromiseId id : cit->second) {
    out.push_back(records_.at(id));
  }
  return out;
}

std::set<std::string> PromiseTable::ReferencedClasses() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::set<std::string> out;
  for (const auto& [cls, ids] : by_class_) {
    (void)ids;
    out.insert(cls);
  }
  return out;
}

}  // namespace promises
