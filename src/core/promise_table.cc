#include "core/promise_table.h"

#include <algorithm>
#include <array>
#include <mutex>

namespace promises {

std::string_view PromiseStateToString(PromiseState s) {
  switch (s) {
    case PromiseState::kActive: return "active";
    case PromiseState::kReleased: return "released";
    case PromiseState::kExpired: return "expired";
    case PromiseState::kViolated: return "violated";
  }
  return "unknown";
}

Status PromiseTable::Insert(PromiseRecord record) {
  PromiseId id = record.id;
  if (!id.valid()) {
    return Status::InvalidArgument("promise id must be valid");
  }
  Timestamp deadline = record.expires_at;
  std::vector<std::string> classes;
  classes.reserve(record.predicates.size());
  for (const Predicate& p : record.predicates) {
    classes.push_back(p.resource_class());
  }
  {
    // Record first, indexes after: a reader that finds an id through an
    // index is guaranteed to find the record too.
    RecordShard& shard = ShardOf(id);
    std::unique_lock<std::shared_mutex> lk(shard.mu);
    if (shard.records.count(id)) {
      return Status::AlreadyExists("promise " + id.ToString() +
                                   " already in table");
    }
    shard.records.emplace(id, std::move(record));
  }
  for (const std::string& cls : classes) {
    ClassShard& cshard = ClassShardOf(cls);
    std::unique_lock<std::shared_mutex> lk(cshard.mu);
    cshard.by_class[cls].insert(id);
  }
  {
    DeadlineShard& dshard = DeadlineShardOf(id);
    std::unique_lock<std::shared_mutex> lk(dshard.mu);
    dshard.by_deadline.emplace(deadline, id);
  }
  // Lower the due-sweep bound (never raised: see the header).
  Timestamp bound = min_deadline_.load(std::memory_order_relaxed);
  while (deadline < bound &&
         !min_deadline_.compare_exchange_weak(bound, deadline,
                                              std::memory_order_release,
                                              std::memory_order_relaxed)) {
  }
  size_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Result<PromiseRecord> PromiseTable::Remove(PromiseId id) {
  PromiseRecord record;
  {
    RecordShard& shard = ShardOf(id);
    std::unique_lock<std::shared_mutex> lk(shard.mu);
    auto it = shard.records.find(id);
    if (it == shard.records.end()) {
      return Status::NotFound("promise " + id.ToString() + " not in table");
    }
    record = std::move(it->second);
    shard.records.erase(it);
  }
  size_.fetch_sub(1, std::memory_order_release);
  for (const Predicate& p : record.predicates) {
    ClassShard& cshard = ClassShardOf(p.resource_class());
    std::unique_lock<std::shared_mutex> lk(cshard.mu);
    auto cit = cshard.by_class.find(p.resource_class());
    if (cit != cshard.by_class.end()) {
      cit->second.erase(id);
      if (cit->second.empty()) cshard.by_class.erase(cit);
    }
  }
  {
    DeadlineShard& dshard = DeadlineShardOf(id);
    std::unique_lock<std::shared_mutex> lk(dshard.mu);
    dshard.by_deadline.erase({record.expires_at, id});
  }
  return record;
}

const PromiseRecord* PromiseTable::Find(PromiseId id) const {
  const RecordShard& shard = ShardOf(id);
  std::shared_lock<std::shared_mutex> lk(shard.mu);
  auto it = shard.records.find(id);
  return it == shard.records.end() ? nullptr : &it->second;
}

PromiseRecord* PromiseTable::FindMutable(PromiseId id) {
  RecordShard& shard = ShardOf(id);
  std::shared_lock<std::shared_mutex> lk(shard.mu);
  auto it = shard.records.find(id);
  return it == shard.records.end() ? nullptr : &it->second;
}

std::optional<std::vector<std::string>> PromiseTable::ClassesOf(
    PromiseId id) const {
  const RecordShard& shard = ShardOf(id);
  std::shared_lock<std::shared_mutex> lk(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return std::nullopt;
  std::vector<std::string> classes;
  classes.reserve(it->second.predicates.size());
  for (const Predicate& p : it->second.predicates) {
    classes.push_back(p.resource_class());
  }
  return classes;
}

std::vector<const PromiseRecord*> PromiseTable::ActiveForClass(
    const std::string& resource_class, Timestamp now) const {
  std::vector<PromiseId> ids;
  {
    const ClassShard& cshard = ClassShardOf(resource_class);
    std::shared_lock<std::shared_mutex> lk(cshard.mu);
    auto cit = cshard.by_class.find(resource_class);
    if (cit == cshard.by_class.end()) return {};
    ids.assign(cit->second.begin(), cit->second.end());
  }
  std::vector<const PromiseRecord*> out;
  for (PromiseId id : ids) {
    // A record indexed under this class can only be erased by an
    // operation covering the class (which the caller excludes); a
    // missing record means the index read raced an unrelated remove's
    // index cleanup, so skipping it is the consistent view.
    const PromiseRecord* r = Find(id);
    if (r != nullptr && r->ActiveAt(now)) out.push_back(r);
  }
  return out;
}

std::vector<const PromiseRecord*> PromiseTable::Active(Timestamp now) const {
  std::vector<const PromiseRecord*> out;
  for (const RecordShard& shard : record_shards_) {
    std::shared_lock<std::shared_mutex> lk(shard.mu);
    for (const auto& [id, r] : shard.records) {
      (void)id;
      if (r.ActiveAt(now)) out.push_back(&r);
    }
  }
  return out;
}

std::vector<PromiseId> PromiseTable::DueIds(Timestamp now) const {
  // Planned on every operation: the lock-free bound makes the common
  // nothing-due case free of any shard lock.
  if (now < min_deadline_.load(std::memory_order_acquire)) return {};
  std::vector<PromiseId> out;
  for (const DeadlineShard& dshard : deadline_shards_) {
    std::shared_lock<std::shared_mutex> lk(dshard.mu);
    for (const auto& [deadline, id] : dshard.by_deadline) {
      if (deadline > now) break;
      out.push_back(id);
    }
  }
  // An empty sweep means the bound went stale-low (removals never
  // raise it, so one short-deadline promise would otherwise disable
  // the fast path forever). Repair it to the exact minimum, computed
  // with every deadline shard held at once: no Insert can add an entry
  // while all 16 locks are held, so the stored value can never jump
  // over a deadline the scan missed — an insert that lands after the
  // release re-lowers the bound itself (its CAS runs after its shard
  // emplace, hence after our store). Raising only here keeps Insert
  // and Remove lock-free on the bound.
  if (out.empty()) {
    std::array<std::shared_lock<std::shared_mutex>, kShardCount> locks;
    for (size_t i = 0; i < kShardCount; ++i) {
      locks[i] = std::shared_lock<std::shared_mutex>(deadline_shards_[i].mu);
    }
    Timestamp exact_min = kTimestampMax;
    for (const DeadlineShard& dshard : deadline_shards_) {
      if (!dshard.by_deadline.empty()) {
        exact_min = std::min(exact_min, dshard.by_deadline.begin()->first);
      }
    }
    min_deadline_.store(exact_min, std::memory_order_release);
  }
  return out;
}

std::vector<PromiseRecord> PromiseTable::RecordsForClass(
    const std::string& resource_class) const {
  std::vector<PromiseId> ids;
  {
    const ClassShard& cshard = ClassShardOf(resource_class);
    std::shared_lock<std::shared_mutex> lk(cshard.mu);
    auto cit = cshard.by_class.find(resource_class);
    if (cit == cshard.by_class.end()) return {};
    ids.assign(cit->second.begin(), cit->second.end());
  }
  std::vector<PromiseRecord> out;
  out.reserve(ids.size());
  for (PromiseId id : ids) {
    const RecordShard& shard = ShardOf(id);
    std::shared_lock<std::shared_mutex> lk(shard.mu);
    auto it = shard.records.find(id);
    if (it != shard.records.end()) out.push_back(it->second);
  }
  return out;
}

std::set<std::string> PromiseTable::ReferencedClasses() const {
  std::set<std::string> out;
  for (const ClassShard& cshard : class_shards_) {
    std::shared_lock<std::shared_mutex> lk(cshard.mu);
    for (const auto& [cls, ids] : cshard.by_class) {
      (void)ids;
      out.insert(cls);
    }
  }
  return out;
}

}  // namespace promises
