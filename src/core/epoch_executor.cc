#include "core/epoch_executor.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "obs/metrics.h"
#include "obs/trace.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace promises {

namespace {

Histogram* BatchSizeHistogram() {
  // Power-of-two buckets: batch sizes, not latencies.
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "promises_epoch_batch_size",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  return h;
}

}  // namespace

EpochExecutor::EpochExecutor(EpochExecutorConfig config,
                             PromiseManager* manager)
    : config_(std::move(config)), manager_(manager) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.max_batch < 1) config_.max_batch = 1;
}

EpochExecutor::~EpochExecutor() { Stop(); }

void EpochExecutor::PinToCore(int core) {
#ifdef __linux__
  // Felis idiom: a pinned worker keeps its partition's cache lines in
  // one L1/L2 across epochs. Best-effort — a failed pin just costs
  // locality, never correctness.
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) %
              static_cast<unsigned>(
                  std::max(1u, std::thread::hardware_concurrency())),
          &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

Status EpochExecutor::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("epoch executor already running");
  }
  {
    // Reset epoch state from any previous run: new workers start with
    // seen_generation == 0, so a generation left over from before the
    // last Stop() would read as "work pending" and send them into a
    // stale batch_ of already-destroyed requests.
    std::lock_guard<std::mutex> lk(work_mu_);
    work_generation_ = 0;
    workers_remaining_ = 0;
    epoch_pending_ = false;
    batch_.clear();
    worker_ranges_.clear();
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  leader_ = std::thread([this] { LeaderLoop(); });
  if (adopted_transport_ != nullptr) {
    // Re-adopt across a Stop()/Start() cycle: Stop restored the direct
    // handler, so without this clients would silently bypass the epoch
    // path after a restart.
    RouteThroughSubmit(adopted_transport_);
  }
  return Status::OK();
}

void EpochExecutor::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk1(inbox_mu_);
    std::lock_guard<std::mutex> lk2(work_mu_);
    stop_.store(true, std::memory_order_release);
  }
  inbox_cv_.notify_all();
  work_cv_.notify_all();
  if (leader_.joinable()) leader_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Fail whatever never made it into an epoch.
  std::vector<EpochRequest*> orphans;
  {
    std::lock_guard<std::mutex> lk(inbox_mu_);
    orphans.swap(inbox_);
  }
  for (EpochRequest* req : orphans) {
    req->reply = Status::Unavailable("epoch executor stopped");
    CompleteRequest(req);
  }
  if (adopted_transport_ != nullptr) {
    // Restore the direct per-operation handler while stopped. The
    // adoption itself is remembered so Start() can re-route.
    PromiseManager* manager = manager_;
    adopted_transport_->Register(manager_->name(),
                                 [manager](const Envelope& request) {
                                   return manager->Handle(request);
                                 });
  }
  running_.store(false, std::memory_order_release);
}

void EpochExecutor::AdoptTransportEndpoint(Transport* transport) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  adopted_transport_ = transport;
  RouteThroughSubmit(transport);
}

void EpochExecutor::RouteThroughSubmit(Transport* transport) {
  transport->Register(manager_->name(), [this](const Envelope& request) {
    return Submit(request);
  });
}

Result<Envelope> EpochExecutor::Submit(const Envelope& request) {
  if (!running_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return Status::Unavailable("epoch executor is not running");
  }
  static thread_local std::shared_ptr<EpochWaiter> tls_waiter;
  if (tls_waiter == nullptr) tls_waiter = std::make_shared<EpochWaiter>();
  EpochRequest req;
  req.request = &request;
  req.waiter = tls_waiter;
  {
    std::lock_guard<std::mutex> lk(tls_waiter->mu);
    tls_waiter->ready = false;
  }
  {
    std::lock_guard<std::mutex> lk(inbox_mu_);
    if (stop_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("epoch executor is not running");
    }
    inbox_.push_back(&req);
  }
  inbox_cv_.notify_one();
  std::unique_lock<std::mutex> lk(tls_waiter->mu);
  tls_waiter->cv.wait(lk, [&] { return tls_waiter->ready; });
  return std::move(req.reply);
}

void EpochExecutor::CompleteRequest(EpochRequest* req) {
  // Take a reference first: the instant `ready` becomes observable the
  // submitter may return, destroy the request and even exit its
  // thread, so the notify must outlive both. Signaling with the mutex
  // released spares the woken submitter an immediate block on it.
  std::shared_ptr<EpochWaiter> waiter = std::move(req->waiter);
  {
    std::lock_guard<std::mutex> lk(waiter->mu);
    waiter->ready = true;
  }
  waiter->cv.notify_one();
}

void EpochExecutor::LeaderLoop() {
  while (true) {
    std::vector<EpochRequest*> batch;
    {
      std::unique_lock<std::mutex> lk(inbox_mu_);
      inbox_cv_.wait(lk, [&] {
        return stop_.load(std::memory_order_relaxed) || !inbox_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      // Seal window: grow the batch until it is full or the oldest
      // request has waited seal_interval_us.
      const auto seal_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.seal_interval_us);
      while (inbox_.size() < config_.max_batch &&
             !stop_.load(std::memory_order_relaxed)) {
        if (inbox_cv_.wait_until(lk, seal_deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      if (inbox_.size() <= config_.max_batch) {
        batch.swap(inbox_);
      } else {
        // Cap the epoch at max_batch and leave the rest queued: the
        // overflow seeds the next epoch, so sealing never waits on
        // released clients waking up to resubmit.
        batch.assign(inbox_.begin(),
                     inbox_.begin() + static_cast<long>(config_.max_batch));
        inbox_.erase(inbox_.begin(),
                     inbox_.begin() + static_cast<long>(config_.max_batch));
      }
      {
        // Publish "an epoch is coming" before releasing the inbox: a
        // Stop() that sets stop_ after this point (it takes inbox_mu_
        // then work_mu_, the same order) wakes the workers into the
        // pending epoch instead of letting them exit under the
        // leader's barrier. inbox_mu_ -> work_mu_ matches Stop().
        std::lock_guard<std::mutex> wk(work_mu_);
        epoch_pending_ = true;
      }
    }
    RunEpoch(std::move(batch));
  }
}

void EpochExecutor::RunEpoch(std::vector<EpochRequest*> batch) {
  static Counter* epochs_total =
      MetricsRegistry::Global().GetCounter("promises_epoch_epochs_total");
  static Counter* ops_total =
      MetricsRegistry::Global().GetCounter("promises_epoch_ops_total");
  static Counter* serial_total = MetricsRegistry::Global().GetCounter(
      "promises_epoch_serial_ops_total");
  static Counter* miss_total = MetricsRegistry::Global().GetCounter(
      "promises_epoch_partition_misses_total");

  const uint64_t epoch_number =
      stats_.epochs.fetch_add(1, std::memory_order_relaxed) + 1;
  epochs_total->Increment();
  ops_total->Increment(batch.size());
  stats_.ops.fetch_add(batch.size(), std::memory_order_relaxed);
  uint64_t largest = stats_.largest_batch.load(std::memory_order_relaxed);
  while (batch.size() > largest &&
         !stats_.largest_batch.compare_exchange_weak(
             largest, batch.size(), std::memory_order_relaxed)) {
  }
  BatchSizeHistogram()->Observe(static_cast<int64_t>(batch.size()));

  TraceContext trace = Tracer::Global().StartTrace();
  ScopedSpan epoch_span(trace, "epoch");

  // 1. Seal: take the whole manager exclusively. Striped traffic
  // drains first; fuzzy-capture hooks fire for every pending class.
  std::unique_ptr<Transaction> epoch_txn;
  {
    ScopedSpan seal_span(trace, "epoch-seal");
    Status last = Status::OK();
    for (int attempt = 0; attempt < config_.acquire_retries; ++attempt) {
      Result<std::unique_ptr<Transaction>> txn_or = manager_->AcquireEpoch();
      if (txn_or.ok()) {
        epoch_txn = std::move(txn_or).value();
        break;
      }
      last = txn_or.status();
    }
    if (epoch_txn == nullptr) {
      seal_span.set_status("acquire-failed");
      ClearEpochPending();
      for (EpochRequest* req : batch) {
        req->reply = last;
        CompleteRequest(req);
      }
      return;
    }
  }

  // 2. Partition: plan each request's closure, assign single-partition
  // operations to the worker their classes hash to, everything else to
  // the serial phase; sort so each worker's slice is contiguous.
  {
    ScopedSpan partition_span(trace, "epoch-partition");
    batch_.clear();
    batch_.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EpochRequest* req = batch[i];
      req->classes = manager_->PlanEnvelopeClasses(*req->request);
      EpochRoutine routine;
      routine.request = req;
      routine.epoch = epoch_number;
      routine.index = static_cast<uint32_t>(i);
      int32_t partition = -1;
      for (const std::string& cls : req->classes) {
        const uint64_t h = std::hash<std::string>{}(cls);
        const int32_t p = static_cast<int32_t>(
            h % static_cast<uint64_t>(config_.workers));
        if (partition == -1) {
          partition = p;
          routine.sched_key = h;
        } else if (partition != p) {
          partition = -1;  // spans partitions: serial phase
          break;
        }
      }
      if (req->classes.empty()) partition = -1;
      routine.partition = partition;
      batch_.push_back(routine);
    }
    std::sort(batch_.begin(), batch_.end(),
              [](const EpochRoutine& a, const EpochRoutine& b) {
                // Serial routines (-1) sort last; ties break by
                // arrival order for determinism.
                const uint32_t pa = static_cast<uint32_t>(a.partition);
                const uint32_t pb = static_cast<uint32_t>(b.partition);
                if (pa != pb) return pa < pb;
                if (a.sched_key != b.sched_key) {
                  return a.sched_key < b.sched_key;
                }
                return a.index < b.index;
              });
    worker_ranges_.assign(static_cast<size_t>(config_.workers), {0, 0});
    size_t pos = 0;
    for (int p = 0; p < config_.workers; ++p) {
      const size_t begin = pos;
      while (pos < batch_.size() && batch_[pos].partition == p) ++pos;
      worker_ranges_[static_cast<size_t>(p)] = {begin, pos};
    }
  }

  // 3. Execute: one barrier per epoch. Workers run their partitions
  // lock-free; the leader then reruns serial + missed operations.
  {
    ScopedSpan execute_span(trace, "epoch-execute");
    {
      std::lock_guard<std::mutex> lk(work_mu_);
      workers_remaining_ = config_.workers;
      ++work_generation_;
    }
    work_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lk(work_mu_);
      done_cv_.wait(lk, [&] { return workers_remaining_ == 0; });
      // Barrier reached: the workers are no longer needed for this
      // epoch, so a pending stop may now take them.
      epoch_pending_ = false;
    }
    if (stop_.load(std::memory_order_acquire)) work_cv_.notify_all();
    // Serial phase: cross-partition and empty-closure routines (sorted
    // to the tail), then any partition miss, all under the epoch's
    // exclusivity with no partition restriction.
    size_t serial_begin = batch_.size();
    while (serial_begin > 0 && batch_[serial_begin - 1].partition == -1) {
      --serial_begin;
    }
    for (size_t i = serial_begin; i < batch_.size(); ++i) {
      EpochRequest* req = batch_[i].request;
      PromiseManager::EpochOpResult out =
          manager_->HandleInEpoch(*req->request, nullptr);
      req->reply = std::move(out.reply);
      req->log_sequence = out.log_sequence;
      serial_total->Increment();
      stats_.serial_ops.fetch_add(1, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < serial_begin; ++i) {
      EpochRequest* req = batch_[i].request;
      if (!req->miss) continue;
      PromiseManager::EpochOpResult out =
          manager_->HandleInEpoch(*req->request, nullptr);
      req->reply = std::move(out.reply);
      req->log_sequence = out.log_sequence;
      miss_total->Increment();
      serial_total->Increment();
      stats_.partition_misses.fetch_add(1, std::memory_order_relaxed);
      stats_.serial_ops.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // 4. Group-durable: one wait for the epoch's whole log suffix. A
  // durability failure detaches the log loudly (same policy as the
  // per-operation envelope path) but cannot un-commit the batch, so
  // replies still go out.
  uint64_t max_sequence = 0;
  for (const EpochRequest* req : batch) {
    max_sequence = std::max(max_sequence, req->log_sequence);
  }
  {
    ScopedSpan durable_span(trace, "epoch-durable");
    Status durable = manager_->WaitEpochDurable(max_sequence);
    if (!durable.ok()) durable_span.set_status(durable.ToString());
  }

  // 5. Release: end the epoch, then complete every submitter. Each
  // request gets its own wake-up — only the threads whose replies are
  // ready run, not the whole closed-loop population.
  (void)epoch_txn->Commit();
  for (EpochRequest* req : batch) CompleteRequest(req);
}

void EpochExecutor::ClearEpochPending() {
  {
    std::lock_guard<std::mutex> lk(work_mu_);
    epoch_pending_ = false;
  }
  if (stop_.load(std::memory_order_acquire)) work_cv_.notify_all();
}

void EpochExecutor::ExecuteRange(size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    EpochRoutine& routine = batch_[i];
    EpochRequest* req = routine.request;
    PromiseManager::EpochOpResult out =
        manager_->HandleInEpoch(*req->request, &req->classes);
    if (out.partition_miss) {
      // Nothing committed or logged; the leader reruns it serially.
      req->miss = true;
      continue;
    }
    req->reply = std::move(out.reply);
    req->log_sequence = out.log_sequence;
  }
}

void EpochExecutor::WorkerLoop(int worker_index) {
  if (config_.pin_workers) PinToCore(worker_index);
  uint64_t seen_generation = 0;
  while (true) {
    size_t begin = 0;
    size_t end = 0;
    {
      std::unique_lock<std::mutex> lk(work_mu_);
      work_cv_.wait(lk, [&] {
        return work_generation_ != seen_generation ||
               (stop_.load(std::memory_order_relaxed) && !epoch_pending_);
      });
      // Drain a pending generation even when stopping: the leader
      // either has published this epoch's generation already or (when
      // epoch_pending_) is about to, and it will block on the barrier
      // until every worker reports in. Exit is only safe once no
      // sealed epoch is still waiting for its generation bump.
      if (work_generation_ == seen_generation) return;  // stop, no work
      seen_generation = work_generation_;
      const auto& range = worker_ranges_[static_cast<size_t>(worker_index)];
      begin = range.first;
      end = range.second;
    }
    ExecuteRange(begin, end);
    {
      std::lock_guard<std::mutex> lk(work_mu_);
      if (--workers_remaining_ == 0) done_cv_.notify_one();
    }
  }
}

EpochExecutorStats EpochExecutor::stats() const {
  EpochExecutorStats s;
  s.epochs = stats_.epochs.load(std::memory_order_relaxed);
  s.ops = stats_.ops.load(std::memory_order_relaxed);
  s.serial_ops = stats_.serial_ops.load(std::memory_order_relaxed);
  s.partition_misses =
      stats_.partition_misses.load(std::memory_order_relaxed);
  s.largest_batch = stats_.largest_batch.load(std::memory_order_relaxed);
  return s;
}

}  // namespace promises
