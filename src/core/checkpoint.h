// Fuzzy checkpoints + bounded recovery (DESIGN.md §10).
//
// The operation log alone makes recovery time proportional to the
// manager's entire history. A checkpoint bounds it: a snapshot of the
// promise table, resource state, engine state and idempotency table at
// a chosen log sequence number (the "cut"), after which the log prefix
// up to the cut can be compacted away and recovery becomes
// load-snapshot + replay-tail.
//
// Capture is *fuzzy*: the cut LSN is chosen under a momentary
// root-exclusive barrier (O(1) work: read the log's cut point, mark
// every class pending), after which normal traffic resumes and the
// state walk proceeds one stripe at a time under the existing
// per-class operation locks. Operations that begin while a capture is
// active copy-on-read any still-pending class they are about to touch
// (see PromiseManager::CaptureCheckpoint), so the assembled snapshot
// is exactly the state at the cut even though it was collected while
// the manager kept serving.
//
// Install is atomic: serialize to `<path>.tmp`, fsync, rename over
// `<path>`, fsync the directory — a crash mid-install leaves either
// the previous checkpoint or the new one, never a torn file. Only
// after a successful install is the log prefix compacted
// (OperationLog::TruncateBefore), so every reachable state is always
// recoverable from checkpoint + tail.

#ifndef PROMISES_CORE_CHECKPOINT_H_
#define PROMISES_CORE_CHECKPOINT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/oplog.h"
#include "core/promise.h"
#include "resource/resource_manager.h"

namespace promises {

class PromiseManager;

/// One cached reply from the idempotency table, with the LSN of the
/// operation that produced it (0: predates the log, always included).
struct CheckpointDedupEntry {
  std::string from;
  uint64_t message_id = 0;
  uint64_t lsn = 0;
  std::string reply_xml;
};

/// A consistent cut of the manager's recoverable state at `cut_lsn`.
struct CheckpointData {
  /// Every log record with sequence <= cut_lsn is reflected in this
  /// snapshot; recovery replays only the records beyond it.
  uint64_t cut_lsn = 0;
  /// Timestamp of the last record at the cut; the restored clock is
  /// advanced here so expiry decisions resume where the log left off.
  Timestamp captured_at = 0;
  /// Highest promise id consumed by any record at the cut; restore
  /// pins the generator past it.
  uint64_t promise_id_watermark = 0;
  /// Client registry: ClientId value -> protocol name.
  std::vector<std::pair<uint64_t, std::string>> clients;
  /// Pool class -> quantity on hand.
  std::map<std::string, int64_t> pools;
  /// Instance class -> every instance (id, status, properties).
  std::map<std::string, std::vector<InstanceView>> instances;
  /// Active promise records keyed by id value (a promise spanning
  /// several classes is captured once).
  std::map<uint64_t, PromiseRecord> promises;
  /// Resource class -> opaque engine state blob (SerializeState).
  std::map<std::string, std::string> engine_state;
  /// Idempotency table in FIFO (eviction) order, filtered to the cut.
  std::vector<CheckpointDedupEntry> dedup;
};

/// Serializes to the on-disk format: a header line carrying the body
/// length and an FNV checksum, then length-prefixed fields.
std::string SerializeCheckpoint(const CheckpointData& data);

/// Inverse of SerializeCheckpoint. kDataLoss on checksum/format damage.
Result<CheckpointData> ParseCheckpoint(const std::string& content);

/// Atomic install: write `<path>.tmp`, fsync, rename, fsync directory.
Status WriteCheckpointFile(const std::string& path,
                           const CheckpointData& data);

/// Loads and verifies a checkpoint file. NotFound when absent,
/// kDataLoss when present but damaged.
Result<CheckpointData> LoadCheckpointFile(const std::string& path);

/// Drives capture -> durability wait -> atomic install -> log
/// compaction, either on demand (RunOnce) or periodically (Start).
class CheckpointWriter {
 public:
  /// `log` must be the log attached to `pm`; `path` is where the
  /// checkpoint file is installed.
  CheckpointWriter(PromiseManager* pm, OperationLog* log, std::string path);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// One checkpoint cycle; returns the installed cut LSN. The capture
  /// is fuzzy (traffic keeps flowing); the install waits until the cut
  /// is durable before publishing, then truncates the log prefix.
  Result<uint64_t> RunOnce();

  /// Starts a background thread checkpointing every `interval_ms` of
  /// wall-clock time until Stop (idempotent; Stop implied by dtor).
  /// Idle ticks are skipped: when the log's cut point has not advanced
  /// past the last installed checkpoint, the tick counts as a skip
  /// instead of re-capturing an identical snapshot.
  Status Start(DurationMs interval_ms);
  void Stop();

  /// Cadence accounting (periodic ticks only; explicit RunOnce calls
  /// always capture and are not counted here).
  uint64_t periodic_captures() const {
    return periodic_captures_.load(std::memory_order_relaxed);
  }
  uint64_t periodic_skips() const {
    return periodic_skips_.load(std::memory_order_relaxed);
  }
  /// Cut LSN of the most recent successful install (0 = none yet).
  uint64_t last_installed_lsn() const {
    return last_installed_lsn_.load(std::memory_order_relaxed);
  }

 private:
  /// One periodic tick: skip when the log has no new LSNs since the
  /// last install, otherwise capture under a span.
  void TickOnce();

  PromiseManager* pm_;
  OperationLog* log_;
  std::string path_;

  std::atomic<uint64_t> periodic_captures_{0};
  std::atomic<uint64_t> periodic_skips_{0};
  std::atomic<uint64_t> last_installed_lsn_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread worker_;
};

struct RecoveryOptions {
  /// Passed through to OperationLog::ReadForRecovery: recover the
  /// valid prefix even when checksum-valid records exist beyond a
  /// mid-log corruption (default: refuse with kDataLoss).
  bool allow_mid_log_corruption = false;
  /// Tail-replay parallelism; <=1 replays sequentially.
  int replay_workers = 1;
};

struct RecoveryReport {
  bool used_checkpoint = false;
  uint64_t checkpoint_lsn = 0;
  size_t tail_records = 0;   ///< records replayed beyond the cut
  size_t total_records = 0;  ///< records read from the log
  LogScanStats scan;
};

/// Recovers `pm` (freshly constructed, resource definitions already in
/// place — the ReplayLog contract) from checkpoint + log tail. Falls
/// back to full replay when no checkpoint exists and the log still
/// starts at its origin; refuses with kDataLoss when the checkpoint is
/// damaged or missing but the log prefix has been compacted away, and
/// when the log was compacted past the checkpoint's cut.
Status RecoverWithCheckpoint(PromiseManager* pm, SimulatedClock* clock,
                             const std::string& checkpoint_path,
                             const std::string& log_path,
                             const RecoveryOptions& options = {},
                             RecoveryReport* report = nullptr);

}  // namespace promises

#endif  // PROMISES_CORE_CHECKPOINT_H_
