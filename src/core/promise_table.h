// The promise table (§8).
//
// "The promise manager keeps a record of all non-expired promises and
// their predicates in a 'promise table'. Promises are placed in this
// table when they are granted and removed when they are released."
//
// The table additionally maintains a per-resource-class index (promise
// checking only needs the promises covering the classes being touched)
// and an expiry index ordered by deadline so that sweeping due promises
// is O(expired · log n) rather than a full scan (experiment E8).
//
// Thread safety: the map structure is guarded by an internal
// shared_mutex so concurrent striped operations may read and insert in
// parallel. Logical exclusion on the *records* is the caller's job:
// pointers returned by Find/FindMutable/ActiveForClass/Active stay
// valid only while the caller holds a lock-manager stripe covering
// every resource class of the record (the promise manager guarantees a
// record is only erased by an operation holding all of its class
// stripes; unordered_map node stability covers non-erased records).

#ifndef PROMISES_CORE_PROMISE_TABLE_H_
#define PROMISES_CORE_PROMISE_TABLE_H_

#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/promise.h"

namespace promises {

class PromiseTable {
 public:
  PromiseTable() = default;

  /// Inserts a granted promise. Fails on duplicate id.
  Status Insert(PromiseRecord record);

  /// Removes a promise (released or expired), returning the record.
  Result<PromiseRecord> Remove(PromiseId id);

  /// Looks up an active-or-not promise still in the table.
  const PromiseRecord* Find(PromiseId id) const;
  PromiseRecord* FindMutable(PromiseId id);

  /// The resource classes of `id`'s predicates, copied out under the
  /// table mutex — safe to call without holding any class stripe (used
  /// to plan which stripes an operation must lock). nullopt if absent.
  std::optional<std::vector<std::string>> ClassesOf(PromiseId id) const;

  /// Promises active at `now` whose predicates cover `resource_class`.
  std::vector<const PromiseRecord*> ActiveForClass(
      const std::string& resource_class, Timestamp now) const;

  /// All promises active at `now`.
  std::vector<const PromiseRecord*> Active(Timestamp now) const;

  /// Ids whose deadline has passed at `now` (still in the table).
  std::vector<PromiseId> DueIds(Timestamp now) const;

  /// Every resource class referenced by any stored promise.
  std::set<std::string> ReferencedClasses() const;

  /// Copies of every record (active or not) whose predicates cover
  /// `resource_class` — checkpoint capture reads record state by value
  /// under the class stripe, so the copies stay consistent after the
  /// stripe is released.
  std::vector<PromiseRecord> RecordsForClass(
      const std::string& resource_class) const;

  size_t size() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return records_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<PromiseId, PromiseRecord> records_;
  // class -> promise ids covering it.
  std::unordered_map<std::string, std::set<PromiseId>> by_class_;
  // (deadline, id) ordered for expiry sweeps.
  std::set<std::pair<Timestamp, PromiseId>> by_deadline_;
};

}  // namespace promises

#endif  // PROMISES_CORE_PROMISE_TABLE_H_
