// The promise table (§8).
//
// "The promise manager keeps a record of all non-expired promises and
// their predicates in a 'promise table'. Promises are placed in this
// table when they are granted and removed when they are released."
//
// The table additionally maintains a per-resource-class index (promise
// checking only needs the promises covering the classes being touched)
// and an expiry index ordered by deadline so that sweeping due promises
// is O(expired · log n) rather than a full scan (experiment E8).
//
// Layout (DESIGN.md §14): the record map, the class index and the
// deadline index are each 16-way sharded, every shard alignas(64) with
// its own lock — epoch workers executing disjoint partitions touch
// disjoint shards without false sharing or a table-wide mutex. A
// lock-free minimum-deadline bound short-circuits DueIds (called on
// every operation's plan) when nothing can be due.
//
// Thread safety: each shard's structure is guarded by its own
// shared_mutex. Logical exclusion on the *records* is the caller's
// job: pointers returned by Find/FindMutable/ActiveForClass/Active
// stay valid only while the caller holds a lock-manager stripe (or
// epoch partition) covering every resource class of the record — a
// record is only erased by an operation covering all of its class
// stripes; unordered_map node stability covers non-erased records.
// Cross-shard reads (Active, size) are only momentarily consistent,
// which the quiesced-inspection contract already allows.

#ifndef PROMISES_CORE_PROMISE_TABLE_H_
#define PROMISES_CORE_PROMISE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/promise.h"

namespace promises {

class PromiseTable {
 public:
  static constexpr size_t kShardCount = 16;

  PromiseTable() = default;

  /// Inserts a granted promise. Fails on duplicate id.
  Status Insert(PromiseRecord record);

  /// Removes a promise (released or expired), returning the record.
  Result<PromiseRecord> Remove(PromiseId id);

  /// Looks up an active-or-not promise still in the table.
  const PromiseRecord* Find(PromiseId id) const;
  PromiseRecord* FindMutable(PromiseId id);

  /// The resource classes of `id`'s predicates, copied out under the
  /// shard mutex — safe to call without holding any class stripe (used
  /// to plan which stripes an operation must lock). nullopt if absent.
  std::optional<std::vector<std::string>> ClassesOf(PromiseId id) const;

  /// Promises active at `now` whose predicates cover `resource_class`.
  std::vector<const PromiseRecord*> ActiveForClass(
      const std::string& resource_class, Timestamp now) const;

  /// All promises active at `now`.
  std::vector<const PromiseRecord*> Active(Timestamp now) const;

  /// Ids whose deadline has passed at `now` (still in the table).
  std::vector<PromiseId> DueIds(Timestamp now) const;

  /// Every resource class referenced by any stored promise.
  std::set<std::string> ReferencedClasses() const;

  /// Copies of every record (active or not) whose predicates cover
  /// `resource_class` — checkpoint capture reads record state by value
  /// under the class stripe, so the copies stay consistent after the
  /// stripe is released.
  std::vector<PromiseRecord> RecordsForClass(
      const std::string& resource_class) const;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// The due-sweep fast-path bound (earliest deadline that can be due,
  /// INT64_MAX when none). Exposed so tests can pin the repair
  /// behavior; it is a lower bound, exact only right after a repair.
  Timestamp min_deadline_bound() const {
    return min_deadline_.load(std::memory_order_acquire);
  }

  /// One cache line per record-map shard: the shard mutex and its map
  /// header never share a line with a neighbouring shard's (the layout
  /// test pins alignment).
  struct alignas(64) RecordShard {
    mutable std::shared_mutex mu;
    std::unordered_map<PromiseId, PromiseRecord> records;
  };
  struct alignas(64) ClassShard {
    mutable std::shared_mutex mu;
    // class -> promise ids covering it.
    std::unordered_map<std::string, std::set<PromiseId>> by_class;
  };
  struct alignas(64) DeadlineShard {
    mutable std::shared_mutex mu;
    // (deadline, id) ordered for expiry sweeps; id-sharded alongside
    // the record shards so Insert/Remove touch exactly one of each.
    std::set<std::pair<Timestamp, PromiseId>> by_deadline;
  };

 private:
  RecordShard& ShardOf(PromiseId id) {
    return record_shards_[std::hash<PromiseId>{}(id) % kShardCount];
  }
  const RecordShard& ShardOf(PromiseId id) const {
    return record_shards_[std::hash<PromiseId>{}(id) % kShardCount];
  }
  DeadlineShard& DeadlineShardOf(PromiseId id) {
    return deadline_shards_[std::hash<PromiseId>{}(id) % kShardCount];
  }
  ClassShard& ClassShardOf(const std::string& cls) {
    return class_shards_[std::hash<std::string>{}(cls) % kShardCount];
  }
  const ClassShard& ClassShardOf(const std::string& cls) const {
    return class_shards_[std::hash<std::string>{}(cls) % kShardCount];
  }

  RecordShard record_shards_[kShardCount];
  ClassShard class_shards_[kShardCount];
  DeadlineShard deadline_shards_[kShardCount];

  // Lock-free lower bound on the earliest stored deadline: DueIds (on
  // every operation's plan) returns empty without touching a shard
  // when nothing can be due yet. Inserts lower it; removals leave it
  // stale-low, which costs a wasted sweep, never a missed one. A sweep
  // that comes back empty repairs the bound to the exact minimum
  // (computed under all deadline-shard locks) so the fast path is
  // re-enabled instead of every later plan paying the full scan.
  mutable std::atomic<Timestamp> min_deadline_{INT64_MAX};
  std::atomic<size_t> size_{0};
};

}  // namespace promises

#endif  // PROMISES_CORE_PROMISE_TABLE_H_
