// §5 'Delegation' engine — promises backed by third-party promises.
//
// "Promises are made that rely on the promises of third parties. For
// example, a purchase order can be accepted by the merchant if it has
// received a promise from the distributor that a backorder will be
// fulfilled on time. In this scenario, the promise is delegated from
// the merchant to the merchant's supplier."
//
// Reserve forwards a <promise-request> for the delegated predicate to
// the upstream promise maker over the transport and records the local
// promise -> upstream promise mapping. Because the local ACID
// transaction must not span external messaging (§8), a rollback of the
// enclosing operation compensates by sending an upstream <release>
// rather than by undoing the remote grant in place.

#ifndef PROMISES_CORE_DELEGATION_ENGINE_H_
#define PROMISES_CORE_DELEGATION_ENGINE_H_

#include <map>
#include <string>

#include "core/engine.h"
#include "protocol/transport.h"

namespace promises {

class DelegationEngine : public ResourceEngine {
 public:
  /// `upstream` is the transport endpoint name of the third-party
  /// promise maker; `self` identifies this manager as a client of it.
  DelegationEngine(std::string resource_class, EngineContext ctx,
                   Transport* transport, std::string upstream,
                   std::string self)
      : cls_(std::move(resource_class)),
        ctx_(ctx),
        transport_(transport),
        upstream_(std::move(upstream)),
        self_(std::move(self)) {}

  Technique technique() const override { return Technique::kDelegated; }
  const std::string& resource_class() const override { return cls_; }

  Status Reserve(Transaction* txn, const PromiseRecord& record,
                 const Predicate& pred) override;
  Status Unreserve(Transaction* txn, PromiseId id,
                   const Predicate& pred) override;
  Status VerifyConsistent(Transaction* txn, Timestamp now) override;
  Result<std::string> ResolveInstance(Transaction* txn, PromiseId id,
                                      const Predicate& pred,
                                      int64_t already_taken) override;

  /// Upstream promise id backing local promise `id`, for forwarding
  /// actions that consume the delegated resource.
  Result<PromiseId> UpstreamPromise(PromiseId id) const;

  const std::string& upstream_endpoint() const { return upstream_; }

 private:
  using AssignKey = std::pair<PromiseId, std::string>;

  /// Fire-and-forget upstream release used for both normal release and
  /// rollback compensation.
  void SendUpstreamRelease(PromiseId upstream_id);

  std::string cls_;
  EngineContext ctx_;
  Transport* transport_;
  std::string upstream_;
  std::string self_;
  IdGenerator<RequestId> request_ids_;
  std::map<AssignKey, PromiseId> upstream_of_;
};

}  // namespace promises

#endif  // PROMISES_CORE_DELEGATION_ENGINE_H_
