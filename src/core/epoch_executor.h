// Epoch-batched execution engine for the promise-manager hot path
// (DESIGN.md §14).
//
// The per-operation path takes stripe locks for every grant/act/
// release. This engine amortizes all of that across a batch: incoming
// envelopes are collected into an epoch, the epoch takes the whole
// manager once (root key exclusive — the only lock-manager traffic an
// epoch generates), the batch is partitioned by resource-class hash,
// and each worker executes its partition with pre-serialized
// transactions
// that never touch the lock manager — lock-free within a partition,
// one barrier per epoch. Operations whose class closure spans
// partitions (or escapes it at runtime — a partition miss) rerun in a
// serial phase after the barrier, where the epoch's exclusivity alone
// is enough. The whole epoch then shares one group-commit durable
// wait before any reply is released, so "reply implies durable"
// still holds end to end.
//
// The batch representation follows Felis's epoch-batched promise
// routines (SNIPPETS.md snippet 2): the hot scheduling state is one
// cache line per routine (static_assert(sizeof(EpochRoutine) == 64)),
// sorted so each worker's slice is contiguous, and workers are pinned
// to cores so a partition's lines stay in one L1/L2.

#ifndef PROMISES_CORE_EPOCH_EXECUTOR_H_
#define PROMISES_CORE_EPOCH_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/promise_manager.h"
#include "protocol/message.h"
#include "protocol/transport.h"

namespace promises {

struct EpochExecutorConfig {
  /// Epoch workers (= partitions). Each executes one partition of the
  /// batch without taking any stripe lock.
  int workers = 8;
  /// Seal the epoch as soon as this many requests are queued...
  size_t max_batch = 256;
  /// ...or when the oldest queued request has waited this long.
  int64_t seal_interval_us = 200;
  /// Pin worker i to core i (Linux; no-op elsewhere).
  bool pin_workers = true;
  /// Attempts to take the manager root exclusively before failing the
  /// epoch's batch (each attempt waits the lock manager's timeout).
  int acquire_retries = 50;
};

struct EpochExecutorStats {
  uint64_t epochs = 0;
  uint64_t ops = 0;
  uint64_t serial_ops = 0;        ///< Cross-partition or empty closure.
  uint64_t partition_misses = 0;  ///< Runtime escapes, retried serially.
  uint64_t largest_batch = 0;
};

/// Cold per-request state: the envelope, its planned closure, and the
/// completion slot the submitting thread blocks on. Referenced (not
/// embedded) by the hot EpochRoutine array.
/// Per-submitter completion signal, reused across that thread's
/// Submits. A shared condition variable would wake the WHOLE
/// closed-loop population on every epoch (waiters whose requests ride
/// a later epoch included) — a thundering herd at each epoch boundary.
/// One waiter per submitter wakes exactly the threads whose replies
/// are ready. Shared ownership (executor + submitter) lets the leader
/// signal with the mutex RELEASED — notifying under the lock would
/// make every woken submitter immediately block on it again — without
/// racing the submitter's thread exit.
struct EpochWaiter {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;  ///< Guarded by `mu`.
};

struct EpochRequest {
  const Envelope* request = nullptr;  ///< Borrowed from the submitter.
  std::set<std::string> classes;      ///< Sealed closure (partition key).
  Result<Envelope> reply = Status::Internal("not executed");
  uint64_t log_sequence = 0;
  bool miss = false;  ///< Escaped its partition; reran serially.
  std::shared_ptr<EpochWaiter> waiter;
};

/// One cache line of scheduling state per batched operation (the Felis
/// PromiseRoutine idiom): everything the sort and the worker scan need
/// without touching the cold EpochRequest.
struct alignas(64) EpochRoutine {
  EpochRequest* request = nullptr;  // 8 cold payload
  uint64_t sched_key = 0;           // 8 home-class hash (sort key)
  uint64_t epoch = 0;               // 8 epoch number
  uint32_t index = 0;               // 4 arrival order (sort tiebreak)
  int32_t partition = -1;           // 4 worker partition; -1 = serial
  char pad[64 - 8 - 8 - 8 - 4 - 4] = {};
};
static_assert(sizeof(EpochRoutine) == 64,
              "EpochRoutine must be exactly one cache line");
static_assert(alignof(EpochRoutine) == 64,
              "EpochRoutine must be cache-line aligned");

/// Batching facade in front of one PromiseManager. Start() spawns the
/// leader (seal/partition/serial/durable) and the worker pool; Submit
/// blocks the calling thread until its operation's epoch is durable.
class EpochExecutor {
 public:
  EpochExecutor(EpochExecutorConfig config, PromiseManager* manager);
  ~EpochExecutor();

  EpochExecutor(const EpochExecutor&) = delete;
  EpochExecutor& operator=(const EpochExecutor&) = delete;

  Status Start();
  void Stop();

  /// Queues `request` for the next epoch and blocks until it executed
  /// and the epoch's group-commit write is durable. Thread-safe.
  Result<Envelope> Submit(const Envelope& request);

  /// Re-registers the manager's transport endpoint to route through
  /// Submit, so existing clients (and the chaos harness) exercise the
  /// epoch path unchanged. Stop() restores the direct handler but the
  /// adoption is remembered: a subsequent Start() re-registers the
  /// epoch route without another AdoptTransportEndpoint call.
  void AdoptTransportEndpoint(Transport* transport);

  EpochExecutorStats stats() const;

 private:
  void LeaderLoop();
  void WorkerLoop(int worker_index);
  /// Registers Submit as `manager_`'s transport handler. Caller holds
  /// lifecycle_mu_.
  void RouteThroughSubmit(Transport* transport);
  /// Executes routines [begin, end) of batch_ against the manager.
  void ExecuteRange(size_t begin, size_t end);
  /// Clears epoch_pending_ and, when stopping, wakes workers parked on
  /// the exit condition.
  void ClearEpochPending();
  void RunEpoch(std::vector<EpochRequest*> batch);
  static void PinToCore(int core);
  // Marks `req` done and wakes its submitter. After this returns the
  // request may be destroyed; the caller must not touch it again.
  static void CompleteRequest(EpochRequest* req);

  EpochExecutorConfig config_;
  PromiseManager* manager_;
  /// Guarded by lifecycle_mu_. Survives Stop() so Start() can re-adopt.
  Transport* adopted_transport_ = nullptr;
  /// Serializes Start/Stop/AdoptTransportEndpoint against each other —
  /// concurrent lifecycle calls would otherwise race running_/stop_ and
  /// the thread pool.
  std::mutex lifecycle_mu_;

  std::thread leader_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Inbox: submitters push, the leader seals by taking up to
  // max_batch. Completion is signaled per request (EpochRequest::cv).
  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::vector<EpochRequest*> inbox_;

  // Per-epoch work handoff (leader -> workers).
  std::mutex work_mu_;
  std::condition_variable work_cv_;  ///< Workers wait for a new epoch.
  std::condition_variable done_cv_;  ///< Leader waits for the barrier.
  uint64_t work_generation_ = 0;
  int workers_remaining_ = 0;
  /// True from the moment the leader seals a batch (set under work_mu_
  /// while inbox_mu_ is still held, the same lock order Stop() uses)
  /// until that epoch's barrier completes. Workers refuse to exit on
  /// stop_ while an epoch is pending: without this, a stop_ that lands
  /// between sealing and the generation bump would let every worker
  /// exit and leave the leader waiting forever on a barrier no one
  /// will reach.
  bool epoch_pending_ = false;
  std::vector<EpochRoutine> batch_;  ///< Sorted; stable during an epoch.
  std::vector<std::pair<size_t, size_t>> worker_ranges_;

  struct AtomicStats {
    std::atomic<uint64_t> epochs{0}, ops{0}, serial_ops{0},
        partition_misses{0}, largest_batch{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace promises

#endif  // PROMISES_CORE_EPOCH_EXECUTOR_H_
