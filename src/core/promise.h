// Promise records (§2).
//
// "A Promise is an agreement between a client application (a 'promise
// client') and a service (a 'promise maker'). By accepting a promise
// request, a service guarantees that some set of conditions
// ('predicates') will be maintained over a set of resources for a
// specified period of time."

#ifndef PROMISES_CORE_PROMISE_H_
#define PROMISES_CORE_PROMISE_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "predicate/ast.h"

namespace promises {

enum class PromiseState {
  kActive,    ///< Granted and unexpired; the manager upholds it.
  kReleased,  ///< Explicitly released by the client.
  kExpired,   ///< Duration elapsed (§2 'promise-expired').
  kViolated,  ///< Broken by an external event the manager could not
              ///< undo (§2: damaged stock, third-party default).
};

std::string_view PromiseStateToString(PromiseState s);

/// One granted promise as stored in the promise table (§8).
struct PromiseRecord {
  PromiseId id;
  ClientId owner;
  std::vector<Predicate> predicates;
  Timestamp granted_at = 0;
  Timestamp expires_at = kTimestampMax;
  PromiseState state = PromiseState::kActive;

  bool ActiveAt(Timestamp now) const {
    return state == PromiseState::kActive && now < expires_at;
  }
};

}  // namespace promises

#endif  // PROMISES_CORE_PROMISE_H_
