// Application-service interface (§8 'Application').
//
// "The responsibility of the application is to process the action
// request passed from the promise manager. The application uses a
// resource manager to keep the global system state." Services run
// inside the operation's ACID transaction and are "coded without
// explicit knowledge of the PM or its promises" — but well-behaved
// services consume resources through the ActionContext helpers, which
// resolve the concrete instance backing a promise (the client only ever
// holds the abstraction: "a 5th floor room", not "room 512", §2).

#ifndef PROMISES_CORE_SERVICE_API_H_
#define PROMISES_CORE_SERVICE_API_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "protocol/message.h"
#include "resource/resource_manager.h"
#include "txn/transaction.h"

namespace promises {

class PromiseManager;
struct LockScope;

/// Per-action execution context handed to service callbacks.
///
/// The context carries the operation's striped lock scope: helpers
/// lazily acquire the class stripe for any resource class the service
/// touches that was not in the operation's planned scope (an
/// out-of-order acquisition the lock manager's deadlock detection
/// backstops).
class ActionContext {
 public:
  ActionContext(PromiseManager* manager, Transaction* txn, LockScope* scope,
                ClientId client, std::vector<PromiseId> env_promises)
      : manager_(manager),
        txn_(txn),
        scope_(scope),
        client_(client),
        env_promises_(std::move(env_promises)) {}

  Transaction* txn() const { return txn_; }
  ResourceManager* rm() const;
  ClientId client() const { return client_; }
  /// Promises named in the request's <environment> header.
  const std::vector<PromiseId>& env_promises() const { return env_promises_; }

  /// True when `promise` is part of this action's environment.
  bool InEnvironment(PromiseId promise) const;

  /// Resolves the next instance of `cls` backing `promise` without
  /// consuming it.
  Result<std::string> PeekInstance(PromiseId promise, const std::string& cls);

  /// Resolves and consumes (marks 'taken') one instance of `cls`
  /// backing `promise`. Returns the concrete instance id. The promise
  /// must be in this action's environment.
  Result<std::string> TakeInstance(PromiseId promise, const std::string& cls);

  /// Consumes `n` units from pool `cls`. Unprotected consumption is
  /// allowed (§8) — the post-action check catches promise violations.
  Status TakeQuantity(const std::string& cls, int64_t n);

  /// Consumes `n` units from pool `cls` under `promise`: the engine
  /// draws the consumption down from the promise's reservation, so a
  /// multi-step order can consume line by line before the final
  /// release. The promise must be in this action's environment.
  Status TakeQuantityUnder(PromiseId promise, const std::string& cls,
                           int64_t n);

  /// Forwards `action` to the upstream promise maker backing the
  /// delegated promise `promise` on `cls`, executing it under the
  /// upstream promise's environment (§5 Delegation).
  Result<ActionResultBody> ForwardUpstream(PromiseId promise,
                                           const std::string& cls,
                                           ActionBody action,
                                           bool release_after);

 private:
  /// Locks every class stripe of `promise`'s predicates (plus `cls`'s)
  /// that the scope does not already cover.
  Status EnsurePromiseLocked(PromiseId promise);

  PromiseManager* manager_;
  Transaction* txn_;
  LockScope* scope_;
  ClientId client_;
  std::vector<PromiseId> env_promises_;
  // (promise, resource class) -> instances consumed so far.
  std::map<std::pair<PromiseId, std::string>, int64_t> taken_;
};

/// One application operation handler. Returns output parameters or an
/// error Status (which aborts and rolls back the action).
using ServiceFn = std::function<Result<std::map<std::string, Value>>(
    ActionContext* ctx, const std::string& operation,
    const std::map<std::string, Value>& params)>;

}  // namespace promises

#endif  // PROMISES_CORE_SERVICE_API_H_
