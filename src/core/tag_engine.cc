#include "core/tag_engine.h"

#include "common/string_util.h"
#include "predicate/evaluator.h"

namespace promises {

Status AllocatedTagEngine::TagInstance(Transaction* txn, const AssignKey& key,
                                       const std::string& instance) {
  PROMISES_RETURN_IF_ERROR(ctx_.rm->SetInstanceStatus(
      txn, cls_, instance, InstanceStatus::kPromised));
  assignments_[key].push_back(instance);
  txn->PushUndo([this, key] {
    auto it = assignments_.find(key);
    if (it == assignments_.end()) return;
    it->second.pop_back();
    if (it->second.empty()) assignments_.erase(it);
  });
  return Status::OK();
}

Status AllocatedTagEngine::Reserve(Transaction* txn,
                                   const PromiseRecord& record,
                                   const Predicate& pred) {
  AssignKey key = KeyOf(record.id, pred);
  if (pred.kind() == PredicateKind::kNamed) {
    PROMISES_ASSIGN_OR_RETURN(
        InstanceStatus status,
        ctx_.rm->GetInstanceStatus(txn, cls_, pred.instance_id()));
    if (status != InstanceStatus::kAvailable) {
      return Status::FailedPrecondition(
          "instance '" + pred.instance_id() + "' of '" + cls_ + "' is " +
          std::string(InstanceStatusToString(status)));
    }
    return TagInstance(txn, key, pred.instance_id());
  }
  if (pred.kind() == PredicateKind::kProperty) {
    PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                              ctx_.rm->ListInstances(txn, cls_));
    const Schema* schema = ctx_.rm->GetSchema(cls_);
    std::vector<std::string> chosen;
    for (const InstanceView& inst : instances) {
      if (inst.status != InstanceStatus::kAvailable) continue;
      PROMISES_ASSIGN_OR_RETURN(bool m, InstanceMatches(pred, inst, schema));
      if (!m) continue;
      chosen.push_back(inst.id);
      if (static_cast<int64_t>(chosen.size()) == pred.count()) break;
    }
    if (static_cast<int64_t>(chosen.size()) < pred.count()) {
      return Status::FailedPrecondition(
          "only " + std::to_string(chosen.size()) + " of " +
          std::to_string(pred.count()) + " matching instances available in '" +
          cls_ + "'");
    }
    for (const std::string& id : chosen) {
      PROMISES_RETURN_IF_ERROR(TagInstance(txn, key, id));
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      "allocated-tags engine supports named and property predicates only");
}

Status AllocatedTagEngine::Unreserve(Transaction* txn, PromiseId id,
                                     const Predicate& pred) {
  AssignKey key = KeyOf(id, pred);
  auto it = assignments_.find(key);
  if (it == assignments_.end()) {
    return Status::Internal("no tag assignment for " + id.ToString() +
                            " on '" + cls_ + "'");
  }
  std::vector<std::string> released = it->second;
  for (const std::string& inst : released) {
    PROMISES_ASSIGN_OR_RETURN(InstanceStatus status,
                              ctx_.rm->GetInstanceStatus(txn, cls_, inst));
    // 'taken' instances were consumed under the promise and stay taken;
    // everything still merely 'promised' returns to the pool.
    if (status == InstanceStatus::kPromised) {
      PROMISES_RETURN_IF_ERROR(ctx_.rm->SetInstanceStatus(
          txn, cls_, inst, InstanceStatus::kAvailable));
    }
  }
  assignments_.erase(it);
  txn->PushUndo([this, key, released] { assignments_[key] = released; });
  return Status::OK();
}

Result<int64_t> AllocatedTagEngine::CountHeadroom(Transaction* txn,
                                                  Timestamp now,
                                                  const Predicate& pred) {
  (void)now;
  if (pred.kind() != PredicateKind::kProperty) {
    return Status::Unimplemented("count headroom needs a property predicate");
  }
  PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                            ctx_.rm->ListInstances(txn, cls_));
  const Schema* schema = ctx_.rm->GetSchema(cls_);
  int64_t headroom = 0;
  for (const InstanceView& inst : instances) {
    if (inst.status != InstanceStatus::kAvailable) continue;
    PROMISES_ASSIGN_OR_RETURN(bool m, InstanceMatches(pred, inst, schema));
    if (m) ++headroom;
  }
  return headroom;
}

Status AllocatedTagEngine::VerifyConsistent(Transaction* txn, Timestamp now) {
  // Every instance assigned to a promise still active must still carry
  // its 'promised' tag; a 'taken' or 'available' tag means some action
  // consumed or freed it without releasing the covering promise.
  for (const auto& [key, instances] : assignments_) {
    const PromiseRecord* rec = ctx_.table->Find(key.first);
    if (rec == nullptr || !rec->ActiveAt(now)) continue;
    for (const std::string& inst : instances) {
      PROMISES_ASSIGN_OR_RETURN(InstanceStatus status,
                                ctx_.rm->GetInstanceStatus(txn, cls_, inst));
      if (status != InstanceStatus::kPromised) {
        return Status::Violated(
            "instance '" + inst + "' of '" + cls_ + "' promised to " +
            key.first.ToString() + " but is now " +
            std::string(InstanceStatusToString(status)));
      }
    }
  }
  return Status::OK();
}

Result<std::string> AllocatedTagEngine::ResolveInstance(
    Transaction* txn, PromiseId id, const Predicate& pred,
    int64_t already_taken) {
  (void)txn;
  AssignKey key = KeyOf(id, pred);
  auto it = assignments_.find(key);
  if (it == assignments_.end()) {
    return Status::NotFound("no tag assignment for " + id.ToString());
  }
  if (already_taken < 0 ||
      already_taken >= static_cast<int64_t>(it->second.size())) {
    return Status::FailedPrecondition(
        "all " + std::to_string(it->second.size()) +
        " assigned instances already taken under " + id.ToString());
  }
  return it->second[static_cast<size_t>(already_taken)];
}

std::string AllocatedTagEngine::SerializeState() const {
  std::string out;
  EncodeField(&out, "tags1");
  EncodeField(&out, std::to_string(assignments_.size()));
  for (const auto& [key, instances] : assignments_) {
    EncodeField(&out, std::to_string(key.first.value()));
    EncodeField(&out, key.second);
    EncodeField(&out, std::to_string(instances.size()));
    for (const std::string& instance : instances) {
      EncodeField(&out, instance);
    }
  }
  return out;
}

Status AllocatedTagEngine::RestoreState(const std::string& blob) {
  std::string_view cursor(blob);
  auto next = [&cursor]() -> Result<int64_t> {
    PROMISES_ASSIGN_OR_RETURN(std::string field, DecodeField(&cursor));
    return ParseInt64(field);
  };
  PROMISES_ASSIGN_OR_RETURN(std::string tag, DecodeField(&cursor));
  if (tag != "tags1") {
    return Status::InvalidArgument("tag engine '" + cls_ +
                                   "': unknown state tag '" + tag + "'");
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t entries, next());
  std::map<AssignKey, std::vector<std::string>> assignments;
  for (int64_t i = 0; i < entries; ++i) {
    PROMISES_ASSIGN_OR_RETURN(int64_t id, next());
    PROMISES_ASSIGN_OR_RETURN(std::string pred, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(int64_t count, next());
    std::vector<std::string> instances;
    for (int64_t j = 0; j < count; ++j) {
      PROMISES_ASSIGN_OR_RETURN(std::string instance, DecodeField(&cursor));
      instances.push_back(std::move(instance));
    }
    assignments[{PromiseId(static_cast<uint64_t>(id)), std::move(pred)}] =
        std::move(instances);
  }
  assignments_ = std::move(assignments);
  return Status::OK();
}

}  // namespace promises
