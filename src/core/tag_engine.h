// §5 'Allocated Tags' engine — soft locks on chosen instances.
//
// "We can keep an availability status field as part of the data used to
// describe the resource instance. This field would be set to something
// like 'available' initially and then to 'promised' when the instance
// was provisionally allocated to a client as a result of making a
// promise. It would then be either set to 'taken' by a subsequent
// action, or would be reset back to 'available' if the promise is
// released."
//
// Property predicates allocate eagerly: the engine picks `count`
// matching available instances at grant time and never reconsiders —
// the deliberate weakness that experiment E4 measures against the
// tentative engine's reallocation.

#ifndef PROMISES_CORE_TAG_ENGINE_H_
#define PROMISES_CORE_TAG_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"

namespace promises {

class AllocatedTagEngine : public ResourceEngine {
 public:
  AllocatedTagEngine(std::string resource_class, EngineContext ctx)
      : cls_(std::move(resource_class)), ctx_(ctx) {}

  Technique technique() const override { return Technique::kAllocatedTags; }
  const std::string& resource_class() const override { return cls_; }

  Status Reserve(Transaction* txn, const PromiseRecord& record,
                 const Predicate& pred) override;
  Status Unreserve(Transaction* txn, PromiseId id,
                   const Predicate& pred) override;
  Status VerifyConsistent(Transaction* txn, Timestamp now) override;
  Result<std::string> ResolveInstance(Transaction* txn, PromiseId id,
                                      const Predicate& pred,
                                      int64_t already_taken) override;
  Result<int64_t> CountHeadroom(Transaction* txn, Timestamp now,
                                const Predicate& pred) override;
  std::string SerializeState() const override;
  Status RestoreState(const std::string& blob) override;

 private:
  // Key for the assignment ledger: one entry per (promise, predicate).
  using AssignKey = std::pair<PromiseId, std::string>;
  static AssignKey KeyOf(PromiseId id, const Predicate& pred) {
    return {id, pred.ToString()};
  }

  /// Marks `instance` promised and records it under `key`, registering
  /// undo for both the status flip and the ledger entry.
  Status TagInstance(Transaction* txn, const AssignKey& key,
                     const std::string& instance);

  std::string cls_;
  EngineContext ctx_;
  // Serialized by this class's lock-manager stripe; undo via
  // transactions.
  std::map<AssignKey, std::vector<std::string>> assignments_;
};

}  // namespace promises

#endif  // PROMISES_CORE_TAG_ENGINE_H_
