#include "core/oplog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace promises {

namespace {

struct OplogMetrics {
  Counter* records_total;
  Counter* groups_total;
  Counter* append_errors_total;
  Counter* truncations_total;
  Counter* compacted_bytes_total;
  Counter* scan_discarded_bytes_total;
  // The registry has no label support: one counter per stop reason,
  // reason encoded in the name (oplog_scan_stopped_total{reason}).
  Counter* scan_stopped_eof;
  Counter* scan_stopped_torn_tail;
  Counter* scan_stopped_bad_record;
  Counter* scan_stopped_sequence_regression;
  Gauge* queue_depth;
  Histogram* group_size;
  Histogram* commit_wait_us;
};

OplogMetrics& Metrics() {
  static OplogMetrics m = [] {
    auto& reg = MetricsRegistry::Global();
    return OplogMetrics{
        reg.GetCounter("promises_oplog_records_total"),
        reg.GetCounter("promises_oplog_groups_total"),
        reg.GetCounter("promises_oplog_append_errors_total"),
        reg.GetCounter("promises_oplog_truncations_total"),
        reg.GetCounter("promises_oplog_compacted_bytes_total"),
        reg.GetCounter("promises_oplog_scan_discarded_bytes_total"),
        reg.GetCounter("promises_oplog_scan_stopped_total_eof"),
        reg.GetCounter("promises_oplog_scan_stopped_total_torn_tail"),
        reg.GetCounter("promises_oplog_scan_stopped_total_bad_record"),
        reg.GetCounter(
            "promises_oplog_scan_stopped_total_sequence_regression"),
        reg.GetGauge("promises_oplog_queue_depth"),
        reg.GetHistogram("promises_oplog_group_size",
                         {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
        reg.GetHistogram("promises_oplog_commit_wait_us"),
    };
  }();
  return m;
}

Counter* StopReasonCounter(ScanStopReason reason) {
  switch (reason) {
    case ScanStopReason::kEndOfFile: return Metrics().scan_stopped_eof;
    case ScanStopReason::kTornTail: return Metrics().scan_stopped_torn_tail;
    case ScanStopReason::kBadRecord: return Metrics().scan_stopped_bad_record;
    case ScanStopReason::kSequenceRegression:
      return Metrics().scan_stopped_sequence_regression;
  }
  return Metrics().scan_stopped_eof;
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t FnvFold(uint32_t sum, std::string_view bytes) {
  for (unsigned char c : bytes) {
    sum ^= c;
    sum *= 16777619u;
  }
  return sum;
}

enum class ParseStatus { kOk, kBadRecord, kSequenceRegression };

// Parses one log line (either format) given the sequence of the
// previous intact record.
ParseStatus ParseLine(std::string_view line, uint64_t prev_sequence,
                      LogRecord* out) {
  bool v2 = line.rfind("v2|", 0) == 0;
  if (v2) line.remove_prefix(3);
  size_t fields = v2 ? 5 : 3;  // separators before the payload
  size_t cuts[5];
  size_t pos = 0;
  for (size_t i = 0; i < fields; ++i) {
    pos = line.find('|', pos);
    if (pos == std::string_view::npos) return ParseStatus::kBadRecord;
    cuts[i] = pos++;
  }
  auto field = [&](size_t i) {
    size_t begin = i == 0 ? 0 : cuts[i - 1] + 1;
    return line.substr(begin, cuts[i] - begin);
  };
  Result<int64_t> length = ParseInt64(field(0));
  Result<int64_t> checksum = ParseInt64(field(1));
  if (!length.ok() || !checksum.ok()) return ParseStatus::kBadRecord;
  std::string_view payload = line.substr(cuts[fields - 1] + 1);
  if (static_cast<int64_t>(payload.size()) != *length) {
    return ParseStatus::kBadRecord;
  }
  std::string body(payload);
  if (v2) {
    Result<int64_t> sequence = ParseInt64(field(2));
    Result<int64_t> timestamp = ParseInt64(field(3));
    Result<int64_t> promise_id = ParseInt64(field(4));
    if (!sequence.ok() || !timestamp.ok() || !promise_id.ok()) {
      return ParseStatus::kBadRecord;
    }
    if (OperationLog::RecordChecksum(body.size(),
                                     static_cast<uint64_t>(*sequence),
                                     *timestamp,
                                     static_cast<uint64_t>(*promise_id),
                                     body) !=
        static_cast<uint32_t>(*checksum)) {
      return ParseStatus::kBadRecord;
    }
    // Sequence regression means the tail was written against a state
    // recovery cannot have reached; treat it as corruption.
    if (static_cast<uint64_t>(*sequence) <= prev_sequence) {
      return ParseStatus::kSequenceRegression;
    }
    out->sequence = static_cast<uint64_t>(*sequence);
    out->timestamp = *timestamp;
    out->promise_id = static_cast<uint64_t>(*promise_id);
  } else {
    Result<int64_t> timestamp = ParseInt64(field(2));
    if (!timestamp.ok()) return ParseStatus::kBadRecord;
    if (OperationLog::Checksum(body) != static_cast<uint32_t>(*checksum)) {
      return ParseStatus::kBadRecord;
    }
    // v1 records predate explicit sequencing: number them by position
    // from the scan's sequence base (0 for a whole log, the marker
    // LSN for a compacted tail).
    out->sequence = prev_sequence + 1;
    out->timestamp = *timestamp;
    out->promise_id = 0;
  }
  out->payload = std::move(body);
  return ParseStatus::kOk;
}

// Compaction marker checksum: FNV over the three numeric fields.
uint32_t MarkerChecksum(uint64_t lsn, Timestamp timestamp,
                        uint64_t watermark) {
  return OperationLog::Checksum(std::to_string(lsn) + "|" +
                                std::to_string(timestamp) + "|" +
                                std::to_string(watermark));
}

std::string EncodeMarker(uint64_t lsn, Timestamp timestamp,
                         uint64_t watermark) {
  return "trunc|" + std::to_string(lsn) + "|" + std::to_string(timestamp) +
         "|" + std::to_string(watermark) + "|" +
         std::to_string(MarkerChecksum(lsn, timestamp, watermark)) + "\n";
}

// Parses `trunc|<lsn>|<timestamp>|<watermark>|<checksum>`. Only valid
// at file offset zero; anywhere else it is an ordinary bad record.
bool ParseMarker(std::string_view line, uint64_t* lsn, Timestamp* timestamp,
                 uint64_t* watermark) {
  if (line.rfind("trunc|", 0) != 0) return false;
  auto fields = Split(line.substr(6), '|');
  if (fields.size() != 4) return false;
  Result<int64_t> l = ParseInt64(fields[0]);
  Result<int64_t> ts = ParseInt64(fields[1]);
  Result<int64_t> wm = ParseInt64(fields[2]);
  Result<int64_t> sum = ParseInt64(fields[3]);
  if (!l.ok() || !ts.ok() || !wm.ok() || !sum.ok()) return false;
  if (MarkerChecksum(static_cast<uint64_t>(*l), *ts,
                     static_cast<uint64_t>(*wm)) !=
      static_cast<uint32_t>(*sum)) {
    return false;
  }
  *lsn = static_cast<uint64_t>(*l);
  *timestamp = *ts;
  *watermark = static_cast<uint64_t>(*wm);
  return true;
}

// fsync the file at `path` (data + metadata: a truncation changes the
// size) and then its directory, so the change survives a crash.
Status SyncFileAndDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::Unavailable("cannot open '" + path +
                               "' for fsync: " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    Status st = Status::Unavailable("fsync('" + path +
                                    "') failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) {
    return Status::Unavailable("cannot open directory '" + dir +
                               "' for fsync: " + std::strerror(errno));
  }
  if (::fsync(dfd) != 0) {
    Status st = Status::Unavailable("fsync('" + dir +
                                    "') failed: " + std::strerror(errno));
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::OK();
}

std::string ReadWholeFile(std::FILE* f) {
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  return contents;
}

// Single streaming pass over the log file at `path`: intact records
// are appended to `records` (when non-null) and the stats report the
// clean-prefix length, stop reason and discarded bytes. Missing file:
// exists=false, zero records. A compaction marker at offset zero
// seeds the sequence base / timestamp / promise-id watermark.
LogScanStats ScanLog(const std::string& path,
                     std::vector<LogRecord>* records) {
  LogScanStats stats;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return stats;
  stats.exists = true;
  std::string contents = ReadWholeFile(f);
  std::fclose(f);
  stats.total_bytes = contents.size();

  size_t pos = 0;
  bool at_offset_zero = true;
  while (pos < contents.size()) {
    size_t eol = contents.find('\n', pos);
    if (eol == std::string::npos) {
      stats.stop_reason = ScanStopReason::kTornTail;
      break;
    }
    std::string_view line(contents.data() + pos, eol - pos);
    if (at_offset_zero && line.rfind("trunc|", 0) == 0) {
      uint64_t lsn = 0, watermark = 0;
      Timestamp timestamp = 0;
      if (!ParseMarker(line, &lsn, &timestamp, &watermark)) {
        stats.stop_reason = ScanStopReason::kBadRecord;
        break;
      }
      stats.base_sequence = lsn;
      stats.last_sequence = lsn;
      stats.last_timestamp = timestamp;
      stats.max_promise_id = watermark;
      at_offset_zero = false;
      pos = eol + 1;
      stats.valid_bytes = pos;
      continue;
    }
    at_offset_zero = false;
    LogRecord record;
    ParseStatus parsed = ParseLine(line, stats.last_sequence, &record);
    if (parsed != ParseStatus::kOk) {
      stats.stop_reason = parsed == ParseStatus::kSequenceRegression
                              ? ScanStopReason::kSequenceRegression
                              : ScanStopReason::kBadRecord;
      break;
    }
    stats.last_sequence = record.sequence;
    stats.last_timestamp = std::max(stats.last_timestamp, record.timestamp);
    stats.max_promise_id = std::max(stats.max_promise_id, record.promise_id);
    if (records != nullptr) records->push_back(std::move(record));
    pos = eol + 1;
    stats.valid_bytes = pos;
  }
  stats.discarded_bytes = stats.total_bytes - stats.valid_bytes;

  // Is the stop a torn tail or mid-log corruption? A record that
  // regressed the sequence is itself intact evidence; after a bad
  // record, look for any later checksum-valid line (sequence
  // continuity deliberately ignored: intact bytes past the stop point
  // are the signal, whatever their numbering).
  if (stats.stop_reason == ScanStopReason::kSequenceRegression) {
    stats.valid_beyond_stop = true;
  } else if (stats.stop_reason == ScanStopReason::kBadRecord) {
    size_t scan_pos = contents.find('\n', stats.valid_bytes);
    while (scan_pos != std::string::npos && !stats.valid_beyond_stop) {
      ++scan_pos;
      size_t eol = contents.find('\n', scan_pos);
      if (eol == std::string::npos) break;
      std::string_view line(contents.data() + scan_pos, eol - scan_pos);
      LogRecord ignored;
      if (ParseLine(line, 0, &ignored) == ParseStatus::kOk) {
        stats.valid_beyond_stop = true;
      }
      scan_pos = eol;
    }
  }

  StopReasonCounter(stats.stop_reason)->Increment();
  if (stats.discarded_bytes > 0) {
    Metrics().scan_discarded_bytes_total->Increment(
        static_cast<int64_t>(stats.discarded_bytes));
  }
  return stats;
}

}  // namespace

std::string_view ScanStopReasonToString(ScanStopReason reason) {
  switch (reason) {
    case ScanStopReason::kEndOfFile: return "eof";
    case ScanStopReason::kTornTail: return "torn_tail";
    case ScanStopReason::kBadRecord: return "bad_record";
    case ScanStopReason::kSequenceRegression: return "sequence_regression";
  }
  return "unknown";
}

OperationLog::~OperationLog() { Close(); }

Status OperationLog::Open(const std::string& path,
                          bool allow_mid_log_corruption) {
  Close();
  // Truncate any torn tail before appending: a record written after a
  // partial line would be unreachable to recovery (the scan stops at
  // the tear), silently losing committed operations.
  LogScanStats scan = ScanLog(path, nullptr);
  if (scan.exists && scan.valid_beyond_stop && !allow_mid_log_corruption) {
    return Status::DataLoss(
        "log '" + path + "' scan stopped (" +
        std::string(ScanStopReasonToString(scan.stop_reason)) + ", " +
        std::to_string(scan.discarded_bytes) +
        " bytes discarded) with checksum-valid records beyond the stop "
        "point: mid-log corruption, refusing to truncate over it");
  }
  if (scan.exists && scan.total_bytes > scan.valid_bytes) {
    if (::truncate(path.c_str(), static_cast<off_t>(scan.valid_bytes)) != 0) {
      return Status::Unavailable("cannot truncate torn log '" + path +
                                 "': " + std::strerror(errno));
    }
    // Make the truncation itself durable: without the fsync a crash
    // after truncate-then-append can resurrect the discarded torn
    // bytes under the new records and corrupt the next recovery.
    PROMISES_RETURN_IF_ERROR(SyncFileAndDir(path));
  }
  std::lock_guard<std::mutex> lock(mu_);
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot open log '" + path +
                               "': " + std::strerror(errno));
  }
  path_ = path;
  next_sequence_ = scan.last_sequence + 1;
  durable_sequence_ = scan.last_sequence;
  promise_id_watermark_ = scan.max_promise_id;
  last_timestamp_ = scan.last_timestamp;
  failed_ = Status::OK();
  return Status::OK();
}

void OperationLog::Close() {
  StopGroupCommit();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool OperationLog::IsOpen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

void OperationLog::Abandon() {
  bool join_writer = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Poison first: blocked appenders and WaitDurable callers must see
    // a failure, not a success, for the records the crash ate — their
    // clients re-send and the recovered world re-executes them.
    failed_ = Status::Unavailable("log abandoned (simulated crash)");
    queue_.clear();
    if (writer_running_) {
      stopping_ = true;
      join_writer = true;
    }
  }
  work_cv_.notify_all();
  durable_cv_.notify_all();
  space_cv_.notify_all();
  if (join_writer && writer_.joinable()) writer_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_running_ = false;
    stopping_ = false;
    config_.mode = DurabilityMode::kSync;
    if (file_ != nullptr) {
      // No unflushed stdio data can exist here: every written group
      // ends in fflush, and the queue above was dropped unwritten.
      std::fclose(file_);
      file_ = nullptr;
    }
  }
  durable_cv_.notify_all();
  space_cv_.notify_all();
}

Status OperationLog::StartGroupCommit(const GroupCommitConfig& config,
                                      Clock* clock) {
  if (clock == nullptr) {
    return Status::InvalidArgument("group commit needs a clock");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("operation log is not open");
  }
  if (writer_running_) {
    return Status::FailedPrecondition("group-commit writer already running");
  }
  config_ = config;
  config_.max_batch = std::max<size_t>(1, config_.max_batch);
  config_.queue_capacity = std::max<size_t>(1, config_.queue_capacity);
  clock_ = clock;
  if (config_.mode == DurabilityMode::kSync) return Status::OK();
  stopping_ = false;
  writer_running_ = true;
  writer_ = std::thread([this] { WriterLoop(); });
  return Status::OK();
}

void OperationLog::StopGroupCommit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!writer_running_) {
      config_.mode = DurabilityMode::kSync;
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  writer_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_running_ = false;
    stopping_ = false;
    config_.mode = DurabilityMode::kSync;
  }
  durable_cv_.notify_all();
  space_cv_.notify_all();
}

uint32_t OperationLog::Checksum(const std::string& payload) {
  return FnvFold(2166136261u, payload);  // FNV-1a
}

uint32_t OperationLog::RecordChecksum(size_t length, uint64_t sequence,
                                      Timestamp timestamp,
                                      uint64_t promise_id,
                                      const std::string& payload) {
  uint32_t sum = FnvFold(2166136261u, std::to_string(length));
  sum = FnvFold(sum, "|");
  sum = FnvFold(sum, std::to_string(sequence));
  sum = FnvFold(sum, "|");
  sum = FnvFold(sum, std::to_string(timestamp));
  sum = FnvFold(sum, "|");
  sum = FnvFold(sum, std::to_string(promise_id));
  sum = FnvFold(sum, "|");
  return FnvFold(sum, payload);
}

std::string OperationLog::EncodeRecord(uint64_t sequence,
                                       Timestamp timestamp,
                                       uint64_t promise_id,
                                       const std::string& payload) {
  return "v2|" + std::to_string(payload.size()) + "|" +
         std::to_string(
             RecordChecksum(payload.size(), sequence, timestamp, promise_id,
                            payload)) +
         "|" + std::to_string(sequence) + "|" + std::to_string(timestamp) +
         "|" + std::to_string(promise_id) + "|" + payload + "\n";
}

Status OperationLog::WriteBuffer(const std::string& buf,
                                 bool use_fdatasync) {
  size_t torn = torn_write_bytes_.exchange(kNoTornWrite,
                                           std::memory_order_acq_rel);
  if (torn != kNoTornWrite) {
    size_t bytes = std::min(torn, buf.size());
    if (bytes > 0) std::fwrite(buf.data(), 1, bytes, file_);
    std::fflush(file_);
    return Status::Unavailable("injected crash mid-append (" +
                               std::to_string(bytes) + " of " +
                               std::to_string(buf.size()) +
                               " bytes reached the log)");
  }
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::Unavailable("log append failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::Unavailable("log flush failed");
  }
  if (use_fdatasync && ::fdatasync(fileno(file_)) != 0) {
    return Status::Unavailable(std::string("log fdatasync failed: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> OperationLog::AppendSyncLocked(Timestamp timestamp,
                                                uint64_t promise_id,
                                                const std::string& payload) {
  uint64_t sequence = next_sequence_++;
  last_timestamp_ = std::max(last_timestamp_, timestamp);
  promise_id_watermark_ = std::max(promise_id_watermark_, promise_id);
  Status st = WriteBuffer(EncodeRecord(sequence, timestamp, promise_id,
                                       payload),
                          config_.use_fdatasync);
  if (!st.ok()) {
    // Poison the log: any record written after a torn tail would be
    // unreachable to recovery's prefix scan.
    failed_ = st;
    Metrics().append_errors_total->Increment();
    return st;
  }
  durable_sequence_ = sequence;
  Metrics().records_total->Increment();
  Metrics().groups_total->Increment();
  Metrics().group_size->Observe(1);
  return sequence;
}

Result<uint64_t> OperationLog::EnqueueLocked(
    std::unique_lock<std::mutex>& lock, Timestamp timestamp,
    uint64_t promise_id, const std::string& payload) {
  space_cv_.wait(lock, [this] {
    return queue_.size() < config_.queue_capacity || !failed_.ok() ||
           !writer_running_;
  });
  if (!failed_.ok()) return failed_;
  if (!writer_running_) {
    // Drop-to-sync fallback: the writer stopped while we waited.
    return AppendSyncLocked(timestamp, promise_id, payload);
  }
  uint64_t sequence = next_sequence_++;
  last_timestamp_ = std::max(last_timestamp_, timestamp);
  promise_id_watermark_ = std::max(promise_id_watermark_, promise_id);
  queue_.push_back(Pending{sequence,
                           EncodeRecord(sequence, timestamp, promise_id,
                                        payload),
                           clock_->Now()});
  Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
  // Wake the writer only at the transitions it acts on: work arriving
  // on an empty queue, or a batch filling during the formation window.
  // Intermediate enqueues would wake it just to re-check a predicate
  // that cannot have flipped — pure scheduling overhead on the commit
  // path.
  if (queue_.size() == 1 || queue_.size() >= config_.max_batch) {
    work_cv_.notify_one();
  }
  return sequence;
}

Status OperationLog::Append(Timestamp timestamp,
                            const std::string& payload) {
  if (payload.find('\n') != std::string::npos) {
    return Status::InvalidArgument("log payload must be single-line");
  }
  uint64_t sequence = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (file_ == nullptr) {
      return Status::FailedPrecondition("operation log is not open");
    }
    if (!failed_.ok()) return failed_;
    Result<uint64_t> seq =
        writer_running_ ? EnqueueLocked(lock, timestamp, /*promise_id=*/0,
                                        payload)
                        : AppendSyncLocked(timestamp, /*promise_id=*/0,
                                           payload);
    PROMISES_RETURN_IF_ERROR(seq.status());
    sequence = *seq;
  }
  return WaitDurable(sequence);
}

Result<uint64_t> OperationLog::AppendOperation(Clock* clock,
                                               const std::string& payload,
                                               uint64_t promise_id) {
  if (payload.find('\n') != std::string::npos) {
    return Status::InvalidArgument("log payload must be single-line");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("operation log is not open");
  }
  if (!failed_.ok()) return failed_;
  // The timestamp is read inside the sequencing critical section so
  // it is monotone in log order — replay advances the clock per
  // record and must never travel backwards.
  Timestamp now = clock != nullptr ? clock->Now() : 0;
  return writer_running_ ? EnqueueLocked(lock, now, promise_id, payload)
                         : AppendSyncLocked(now, promise_id, payload);
}

Status OperationLog::WaitDurable(uint64_t sequence) {
  int64_t start_us = SteadyNowUs();
  std::unique_lock<std::mutex> lock(mu_);
  if (config_.mode == DurabilityMode::kAsync) {
    // Fire-and-forget: the caller explicitly opted out of the ack.
    return Status::OK();
  }
  durable_cv_.wait(lock, [this, sequence] {
    return durable_sequence_ >= sequence || !failed_.ok() ||
           !writer_running_;
  });
  Metrics().commit_wait_us->Observe(SteadyNowUs() - start_us);
  if (durable_sequence_ >= sequence) return Status::OK();
  if (!failed_.ok()) return failed_;
  return Status::Unavailable("group-commit writer stopped before record " +
                             std::to_string(sequence) + " became durable");
}

void OperationLog::KickFlush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Nothing queued means everything sequenced is written or in the
    // writer's hands already; setting the kick would only rob the NEXT
    // group of its formation window.
    if (!writer_running_ || queue_.empty()) return;
    kick_ = true;
  }
  work_cv_.notify_all();
}

Result<LogCut> OperationLog::CutPoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("operation log is not open");
  }
  if (!failed_.ok()) return failed_;
  LogCut cut;
  cut.sequence = next_sequence_ - 1;
  cut.last_timestamp = last_timestamp_;
  cut.promise_id_watermark = promise_id_watermark_;
  return cut;
}

Status OperationLog::TruncateBefore(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("operation log is not open");
  }
  if (!failed_.ok()) return failed_;
  if (lsn > durable_sequence_) {
    return Status::FailedPrecondition(
        "cannot compact before LSN " + std::to_string(lsn) +
        ": durable prefix ends at " + std::to_string(durable_sequence_));
  }
  // Quiesce the writer's unlocked IO window. Queued records are
  // untouched — they all have sequence > durable_sequence_ >= lsn.
  durable_cv_.wait(lock, [this] { return !io_in_flight_; });
  if (!failed_.ok()) return failed_;

  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) {
    return Status::Unavailable("cannot reread log '" + path_ +
                               "': " + std::strerror(errno));
  }
  std::string contents = ReadWholeFile(in);
  std::fclose(in);

  // Walk the records to find the tail offset and the marker fields:
  // the marker inherits the max timestamp and promise-id watermark of
  // everything it swallows (plus a previous marker's).
  uint64_t base = 0, watermark = 0;
  Timestamp base_ts = 0;
  size_t pos = 0;
  size_t eol = contents.find('\n');
  if (eol != std::string::npos) {
    std::string_view first(contents.data(), eol);
    if (ParseMarker(first, &base, &base_ts, &watermark)) pos = eol + 1;
  }
  if (lsn <= base) return Status::OK();  // already compacted past lsn
  uint64_t prev_sequence = base;
  Timestamp marker_ts = base_ts;
  size_t tail_offset = contents.size();
  while (pos < contents.size()) {
    eol = contents.find('\n', pos);
    if (eol == std::string::npos) {
      return Status::Internal("open log has a torn tail during compaction");
    }
    std::string_view line(contents.data() + pos, eol - pos);
    LogRecord record;
    if (ParseLine(line, prev_sequence, &record) != ParseStatus::kOk) {
      return Status::Internal("open log has a bad record during compaction");
    }
    if (record.sequence > lsn) {
      tail_offset = pos;
      break;
    }
    prev_sequence = record.sequence;
    marker_ts = std::max(marker_ts, record.timestamp);
    watermark = std::max(watermark, record.promise_id);
    pos = eol + 1;
    tail_offset = pos;
  }

  const std::string tmp_path = path_ + ".compact.tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Unavailable("cannot create '" + tmp_path +
                               "': " + std::strerror(errno));
  }
  std::string marker = EncodeMarker(lsn, marker_ts, watermark);
  bool wrote =
      std::fwrite(marker.data(), 1, marker.size(), out) == marker.size() &&
      (tail_offset >= contents.size() ||
       std::fwrite(contents.data() + tail_offset, 1,
                   contents.size() - tail_offset,
                   out) == contents.size() - tail_offset);
  if (!wrote || std::fflush(out) != 0 || ::fsync(fileno(out)) != 0) {
    std::fclose(out);
    std::remove(tmp_path.c_str());
    return Status::Unavailable("cannot write compacted log '" + tmp_path +
                               "': " + std::strerror(errno));
  }
  std::fclose(out);
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Unavailable("cannot install compacted log: " +
                               std::string(std::strerror(errno)));
  }
  Status sync_st = SyncFileAndDir(path_);
  if (!sync_st.ok()) {
    // The rename already landed; appending to the old inode would
    // silently lose records. Poison until reopened.
    failed_ = sync_st;
    return failed_;
  }

  // Swap the append handle onto the new inode. Sequencing state is
  // untouched: the cut names the same LSNs before and after.
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    failed_ = Status::Unavailable("cannot reopen compacted log '" + path_ +
                                  "': " + std::strerror(errno));
    return failed_;
  }
  Metrics().truncations_total->Increment();
  Metrics().compacted_bytes_total->Increment(
      static_cast<int64_t>(tail_offset));
  return Status::OK();
}

void OperationLog::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    if (!failed_.ok()) {
      // A previous group failed: every queued record is past the torn
      // tail and must be reported lost, not written.
      queue_.clear();
      Metrics().queue_depth->Set(0);
      durable_cv_.notify_all();
      space_cv_.notify_all();
      work_cv_.wait(lock, [this] { return stopping_; });
      return;
    }
    // Linger: grow the group until it is full or the oldest queued
    // record has waited max_delay_ms on the injected clock. The
    // wait_for quantum is real time so a SimulatedClock advanced by
    // another thread is noticed promptly.
    while (!stopping_ && !kick_ && config_.max_delay_ms > 0 &&
           queue_.size() < config_.max_batch &&
           clock_->Now() - queue_.front().enqueued_at < config_.max_delay_ms) {
      work_cv_.wait_for(lock, std::chrono::microseconds(200));
    }
    // Batch-formation grace: committers racing the flush get a short
    // real-time window to join the group before the sync is paid. A
    // batch filling up notifies work_cv_ and ends the window early,
    // as does a KickFlush batch-boundary signal.
    if (config_.group_window_us > 0) {
      int64_t deadline = SteadyNowUs() + config_.group_window_us;
      int64_t remaining = config_.group_window_us;
      while (!stopping_ && !kick_ && queue_.size() < config_.max_batch &&
             remaining > 0) {
        work_cv_.wait_for(lock, std::chrono::microseconds(remaining));
        remaining = deadline - SteadyNowUs();
      }
    }
    size_t n = std::min(queue_.size(), config_.max_batch);
    std::string buf;
    uint64_t last_sequence = 0;
    for (size_t i = 0; i < n; ++i) {
      buf += queue_.front().encoded;
      last_sequence = queue_.front().sequence;
      queue_.pop_front();
    }
    // A kick covers everything queued at the boundary; once the queue
    // drains the next group forms (and lingers) normally.
    if (queue_.empty()) kick_ = false;
    Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
    io_in_flight_ = true;
    lock.unlock();
    Status st = WriteBuffer(buf, config_.use_fdatasync);
    lock.lock();
    io_in_flight_ = false;
    if (st.ok()) {
      durable_sequence_ = last_sequence;
      Metrics().records_total->Increment(n);
      Metrics().groups_total->Increment();
      Metrics().group_size->Observe(static_cast<int64_t>(n));
    } else {
      failed_ = st;
      Metrics().append_errors_total->Increment();
      queue_.clear();
      Metrics().queue_depth->Set(0);
    }
    durable_cv_.notify_all();
    space_cv_.notify_all();
    if (stopping_ && (queue_.empty() || !failed_.ok())) return;
  }
}

Result<std::vector<LogRecord>> OperationLog::ReadAll(
    const std::string& path) {
  std::vector<LogRecord> records;
  LogScanStats scan = ScanLog(path, &records);
  if (!scan.exists) {
    return Status::NotFound("no log at '" + path + "'");
  }
  return records;
}

Result<std::vector<LogRecord>> OperationLog::ReadForRecovery(
    const std::string& path, LogScanStats* stats,
    bool allow_mid_log_corruption) {
  std::vector<LogRecord> records;
  LogScanStats scan = ScanLog(path, &records);
  if (stats != nullptr) *stats = scan;
  if (!scan.exists) {
    return Status::NotFound("no log at '" + path + "'");
  }
  if (scan.valid_beyond_stop && !allow_mid_log_corruption) {
    return Status::DataLoss(
        "log '" + path + "' scan stopped (" +
        std::string(ScanStopReasonToString(scan.stop_reason)) + ", " +
        std::to_string(scan.discarded_bytes) +
        " bytes discarded) with checksum-valid records beyond the stop "
        "point: refusing to recover past mid-log corruption");
  }
  return records;
}

}  // namespace promises
