#include "core/oplog.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace promises {

namespace {

struct OplogMetrics {
  Counter* records_total;
  Counter* groups_total;
  Counter* append_errors_total;
  Gauge* queue_depth;
  Histogram* group_size;
  Histogram* commit_wait_us;
};

OplogMetrics& Metrics() {
  static OplogMetrics m = [] {
    auto& reg = MetricsRegistry::Global();
    return OplogMetrics{
        reg.GetCounter("promises_oplog_records_total"),
        reg.GetCounter("promises_oplog_groups_total"),
        reg.GetCounter("promises_oplog_append_errors_total"),
        reg.GetGauge("promises_oplog_queue_depth"),
        reg.GetHistogram("promises_oplog_group_size",
                         {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
        reg.GetHistogram("promises_oplog_commit_wait_us"),
    };
  }();
  return m;
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t FnvFold(uint32_t sum, std::string_view bytes) {
  for (unsigned char c : bytes) {
    sum ^= c;
    sum *= 16777619u;
  }
  return sum;
}

struct ScanResult {
  bool exists = false;
  size_t valid_bytes = 0;   // clean prefix: just past the last intact record
  size_t total_bytes = 0;   // file size, for torn-tail detection
  uint64_t last_sequence = 0;
};

// Parses one log line (either format) given the sequence of the
// previous intact record. Returns false on any corruption.
bool ParseLine(std::string_view line, uint64_t prev_sequence,
               LogRecord* out) {
  bool v2 = line.rfind("v2|", 0) == 0;
  if (v2) line.remove_prefix(3);
  size_t fields = v2 ? 5 : 3;  // separators before the payload
  size_t cuts[5];
  size_t pos = 0;
  for (size_t i = 0; i < fields; ++i) {
    pos = line.find('|', pos);
    if (pos == std::string_view::npos) return false;
    cuts[i] = pos++;
  }
  auto field = [&](size_t i) {
    size_t begin = i == 0 ? 0 : cuts[i - 1] + 1;
    return line.substr(begin, cuts[i] - begin);
  };
  Result<int64_t> length = ParseInt64(field(0));
  Result<int64_t> checksum = ParseInt64(field(1));
  if (!length.ok() || !checksum.ok()) return false;
  std::string_view payload = line.substr(cuts[fields - 1] + 1);
  if (static_cast<int64_t>(payload.size()) != *length) return false;
  std::string body(payload);
  if (v2) {
    Result<int64_t> sequence = ParseInt64(field(2));
    Result<int64_t> timestamp = ParseInt64(field(3));
    Result<int64_t> promise_id = ParseInt64(field(4));
    if (!sequence.ok() || !timestamp.ok() || !promise_id.ok()) return false;
    if (OperationLog::RecordChecksum(body.size(),
                                     static_cast<uint64_t>(*sequence),
                                     *timestamp,
                                     static_cast<uint64_t>(*promise_id),
                                     body) !=
        static_cast<uint32_t>(*checksum)) {
      return false;
    }
    // Sequence regression means the tail was written against a state
    // recovery cannot have reached; treat it as corruption.
    if (static_cast<uint64_t>(*sequence) <= prev_sequence) return false;
    out->sequence = static_cast<uint64_t>(*sequence);
    out->timestamp = *timestamp;
    out->promise_id = static_cast<uint64_t>(*promise_id);
  } else {
    Result<int64_t> timestamp = ParseInt64(field(2));
    if (!timestamp.ok()) return false;
    if (OperationLog::Checksum(body) != static_cast<uint32_t>(*checksum)) {
      return false;
    }
    // v1 records predate explicit sequencing: number them by position.
    out->sequence = prev_sequence + 1;
    out->timestamp = *timestamp;
    out->promise_id = 0;
  }
  out->payload = std::move(body);
  return true;
}

// Single streaming pass over the log file at `path`: intact records
// are appended to `records` (when non-null) and the scan result
// reports the clean-prefix length and last sequence. Missing file:
// exists=false, zero records.
ScanResult ScanLog(const std::string& path,
                   std::vector<LogRecord>* records) {
  ScanResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return result;
  result.exists = true;
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  result.total_bytes = contents.size();

  size_t pos = 0;
  while (pos < contents.size()) {
    size_t eol = contents.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail: discard
    std::string_view line(contents.data() + pos, eol - pos);
    LogRecord record;
    if (!ParseLine(line, result.last_sequence, &record)) break;
    result.last_sequence = record.sequence;
    if (records != nullptr) records->push_back(std::move(record));
    pos = eol + 1;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace

OperationLog::~OperationLog() { Close(); }

Status OperationLog::Open(const std::string& path) {
  Close();
  // Truncate any torn tail before appending: a record written after a
  // partial line would be unreachable to recovery (the scan stops at
  // the tear), silently losing committed operations.
  ScanResult scan = ScanLog(path, nullptr);
  if (scan.exists && scan.total_bytes > scan.valid_bytes &&
      ::truncate(path.c_str(), static_cast<off_t>(scan.valid_bytes)) != 0) {
    return Status::Unavailable("cannot truncate torn log '" + path +
                               "': " + std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(mu_);
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot open log '" + path +
                               "': " + std::strerror(errno));
  }
  next_sequence_ = scan.last_sequence + 1;
  durable_sequence_ = scan.last_sequence;
  failed_ = Status::OK();
  return Status::OK();
}

void OperationLog::Close() {
  StopGroupCommit();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool OperationLog::IsOpen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

Status OperationLog::StartGroupCommit(const GroupCommitConfig& config,
                                      Clock* clock) {
  if (clock == nullptr) {
    return Status::InvalidArgument("group commit needs a clock");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("operation log is not open");
  }
  if (writer_running_) {
    return Status::FailedPrecondition("group-commit writer already running");
  }
  config_ = config;
  config_.max_batch = std::max<size_t>(1, config_.max_batch);
  config_.queue_capacity = std::max<size_t>(1, config_.queue_capacity);
  clock_ = clock;
  if (config_.mode == DurabilityMode::kSync) return Status::OK();
  stopping_ = false;
  writer_running_ = true;
  writer_ = std::thread([this] { WriterLoop(); });
  return Status::OK();
}

void OperationLog::StopGroupCommit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!writer_running_) {
      config_.mode = DurabilityMode::kSync;
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  writer_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_running_ = false;
    stopping_ = false;
    config_.mode = DurabilityMode::kSync;
  }
  durable_cv_.notify_all();
  space_cv_.notify_all();
}

uint32_t OperationLog::Checksum(const std::string& payload) {
  return FnvFold(2166136261u, payload);  // FNV-1a
}

uint32_t OperationLog::RecordChecksum(size_t length, uint64_t sequence,
                                      Timestamp timestamp,
                                      uint64_t promise_id,
                                      const std::string& payload) {
  uint32_t sum = FnvFold(2166136261u, std::to_string(length));
  sum = FnvFold(sum, "|");
  sum = FnvFold(sum, std::to_string(sequence));
  sum = FnvFold(sum, "|");
  sum = FnvFold(sum, std::to_string(timestamp));
  sum = FnvFold(sum, "|");
  sum = FnvFold(sum, std::to_string(promise_id));
  sum = FnvFold(sum, "|");
  return FnvFold(sum, payload);
}

std::string OperationLog::EncodeRecord(uint64_t sequence,
                                       Timestamp timestamp,
                                       uint64_t promise_id,
                                       const std::string& payload) {
  return "v2|" + std::to_string(payload.size()) + "|" +
         std::to_string(
             RecordChecksum(payload.size(), sequence, timestamp, promise_id,
                            payload)) +
         "|" + std::to_string(sequence) + "|" + std::to_string(timestamp) +
         "|" + std::to_string(promise_id) + "|" + payload + "\n";
}

Status OperationLog::WriteBuffer(const std::string& buf,
                                 bool use_fdatasync) {
  size_t torn = torn_write_bytes_.exchange(kNoTornWrite,
                                           std::memory_order_acq_rel);
  if (torn != kNoTornWrite) {
    size_t bytes = std::min(torn, buf.size());
    if (bytes > 0) std::fwrite(buf.data(), 1, bytes, file_);
    std::fflush(file_);
    return Status::Unavailable("injected crash mid-append (" +
                               std::to_string(bytes) + " of " +
                               std::to_string(buf.size()) +
                               " bytes reached the log)");
  }
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::Unavailable("log append failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::Unavailable("log flush failed");
  }
  if (use_fdatasync && ::fdatasync(fileno(file_)) != 0) {
    return Status::Unavailable(std::string("log fdatasync failed: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> OperationLog::AppendSyncLocked(Timestamp timestamp,
                                                uint64_t promise_id,
                                                const std::string& payload) {
  uint64_t sequence = next_sequence_++;
  Status st = WriteBuffer(EncodeRecord(sequence, timestamp, promise_id,
                                       payload),
                          config_.use_fdatasync);
  if (!st.ok()) {
    // Poison the log: any record written after a torn tail would be
    // unreachable to recovery's prefix scan.
    failed_ = st;
    Metrics().append_errors_total->Increment();
    return st;
  }
  durable_sequence_ = sequence;
  Metrics().records_total->Increment();
  Metrics().groups_total->Increment();
  Metrics().group_size->Observe(1);
  return sequence;
}

Result<uint64_t> OperationLog::EnqueueLocked(
    std::unique_lock<std::mutex>& lock, Timestamp timestamp,
    uint64_t promise_id, const std::string& payload) {
  space_cv_.wait(lock, [this] {
    return queue_.size() < config_.queue_capacity || !failed_.ok() ||
           !writer_running_;
  });
  if (!failed_.ok()) return failed_;
  if (!writer_running_) {
    // Drop-to-sync fallback: the writer stopped while we waited.
    return AppendSyncLocked(timestamp, promise_id, payload);
  }
  uint64_t sequence = next_sequence_++;
  queue_.push_back(Pending{sequence,
                           EncodeRecord(sequence, timestamp, promise_id,
                                        payload),
                           clock_->Now()});
  Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
  // Wake the writer only at the transitions it acts on: work arriving
  // on an empty queue, or a batch filling during the formation window.
  // Intermediate enqueues would wake it just to re-check a predicate
  // that cannot have flipped — pure scheduling overhead on the commit
  // path.
  if (queue_.size() == 1 || queue_.size() >= config_.max_batch) {
    work_cv_.notify_one();
  }
  return sequence;
}

Status OperationLog::Append(Timestamp timestamp,
                            const std::string& payload) {
  if (payload.find('\n') != std::string::npos) {
    return Status::InvalidArgument("log payload must be single-line");
  }
  uint64_t sequence = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (file_ == nullptr) {
      return Status::FailedPrecondition("operation log is not open");
    }
    if (!failed_.ok()) return failed_;
    Result<uint64_t> seq =
        writer_running_ ? EnqueueLocked(lock, timestamp, /*promise_id=*/0,
                                        payload)
                        : AppendSyncLocked(timestamp, /*promise_id=*/0,
                                           payload);
    PROMISES_RETURN_IF_ERROR(seq.status());
    sequence = *seq;
  }
  return WaitDurable(sequence);
}

Result<uint64_t> OperationLog::AppendOperation(Clock* clock,
                                               const std::string& payload,
                                               uint64_t promise_id) {
  if (payload.find('\n') != std::string::npos) {
    return Status::InvalidArgument("log payload must be single-line");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("operation log is not open");
  }
  if (!failed_.ok()) return failed_;
  // The timestamp is read inside the sequencing critical section so
  // it is monotone in log order — replay advances the clock per
  // record and must never travel backwards.
  Timestamp now = clock != nullptr ? clock->Now() : 0;
  return writer_running_ ? EnqueueLocked(lock, now, promise_id, payload)
                         : AppendSyncLocked(now, promise_id, payload);
}

Status OperationLog::WaitDurable(uint64_t sequence) {
  int64_t start_us = SteadyNowUs();
  std::unique_lock<std::mutex> lock(mu_);
  if (config_.mode == DurabilityMode::kAsync) {
    // Fire-and-forget: the caller explicitly opted out of the ack.
    return Status::OK();
  }
  durable_cv_.wait(lock, [this, sequence] {
    return durable_sequence_ >= sequence || !failed_.ok() ||
           !writer_running_;
  });
  Metrics().commit_wait_us->Observe(SteadyNowUs() - start_us);
  if (durable_sequence_ >= sequence) return Status::OK();
  if (!failed_.ok()) return failed_;
  return Status::Unavailable("group-commit writer stopped before record " +
                             std::to_string(sequence) + " became durable");
}

void OperationLog::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    if (!failed_.ok()) {
      // A previous group failed: every queued record is past the torn
      // tail and must be reported lost, not written.
      queue_.clear();
      Metrics().queue_depth->Set(0);
      durable_cv_.notify_all();
      space_cv_.notify_all();
      work_cv_.wait(lock, [this] { return stopping_; });
      return;
    }
    // Linger: grow the group until it is full or the oldest queued
    // record has waited max_delay_ms on the injected clock. The
    // wait_for quantum is real time so a SimulatedClock advanced by
    // another thread is noticed promptly.
    while (!stopping_ && config_.max_delay_ms > 0 &&
           queue_.size() < config_.max_batch &&
           clock_->Now() - queue_.front().enqueued_at < config_.max_delay_ms) {
      work_cv_.wait_for(lock, std::chrono::microseconds(200));
    }
    // Batch-formation grace: committers racing the flush get a short
    // real-time window to join the group before the sync is paid. A
    // batch filling up notifies work_cv_ and ends the window early.
    if (config_.group_window_us > 0) {
      int64_t deadline = SteadyNowUs() + config_.group_window_us;
      int64_t remaining = config_.group_window_us;
      while (!stopping_ && queue_.size() < config_.max_batch &&
             remaining > 0) {
        work_cv_.wait_for(lock, std::chrono::microseconds(remaining));
        remaining = deadline - SteadyNowUs();
      }
    }
    size_t n = std::min(queue_.size(), config_.max_batch);
    std::string buf;
    uint64_t last_sequence = 0;
    for (size_t i = 0; i < n; ++i) {
      buf += queue_.front().encoded;
      last_sequence = queue_.front().sequence;
      queue_.pop_front();
    }
    Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
    lock.unlock();
    Status st = WriteBuffer(buf, config_.use_fdatasync);
    lock.lock();
    if (st.ok()) {
      durable_sequence_ = last_sequence;
      Metrics().records_total->Increment(n);
      Metrics().groups_total->Increment();
      Metrics().group_size->Observe(static_cast<int64_t>(n));
    } else {
      failed_ = st;
      Metrics().append_errors_total->Increment();
      queue_.clear();
      Metrics().queue_depth->Set(0);
    }
    durable_cv_.notify_all();
    space_cv_.notify_all();
    if (stopping_ && (queue_.empty() || !failed_.ok())) return;
  }
}

Result<std::vector<LogRecord>> OperationLog::ReadAll(
    const std::string& path) {
  std::vector<LogRecord> records;
  ScanResult scan = ScanLog(path, &records);
  if (!scan.exists) {
    return Status::NotFound("no log at '" + path + "'");
  }
  return records;
}

}  // namespace promises
