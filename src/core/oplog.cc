#include "core/oplog.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace promises {

namespace {

// Scans the log file at `path`, appending intact records to `records`
// (when non-null) and reporting in `*valid_bytes` the length of the
// clean prefix — the byte offset just past the last intact record.
// Missing file: zero records, zero valid bytes.
void ScanLog(const std::string& path, std::vector<LogRecord>* records,
             size_t* valid_bytes) {
  *valid_bytes = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);

  size_t pos = 0;
  while (pos < contents.size()) {
    size_t eol = contents.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail: discard
    std::string_view line(contents.data() + pos, eol - pos);

    // <length>|<checksum>|<timestamp>|<payload>
    size_t p1 = line.find('|');
    size_t p2 = p1 == std::string_view::npos ? p1 : line.find('|', p1 + 1);
    size_t p3 = p2 == std::string_view::npos ? p2 : line.find('|', p2 + 1);
    if (p3 == std::string_view::npos) break;
    Result<int64_t> length = ParseInt64(line.substr(0, p1));
    Result<int64_t> checksum = ParseInt64(line.substr(p1 + 1, p2 - p1 - 1));
    Result<int64_t> timestamp = ParseInt64(line.substr(p2 + 1, p3 - p2 - 1));
    if (!length.ok() || !checksum.ok() || !timestamp.ok()) break;
    std::string_view payload = line.substr(p3 + 1);
    if (static_cast<int64_t>(payload.size()) != *length) break;
    std::string body(payload);
    if (OperationLog::Checksum(body) !=
        static_cast<uint32_t>(*checksum)) {
      break;
    }
    if (records != nullptr) {
      records->push_back(LogRecord{*timestamp, std::move(body)});
    }
    pos = eol + 1;
    *valid_bytes = pos;
  }
}

}  // namespace

OperationLog::~OperationLog() { Close(); }

Status OperationLog::Open(const std::string& path) {
  Close();
  // Truncate any torn tail before appending: a record written after a
  // partial line would be unreachable to recovery (the scan stops at
  // the tear), silently losing committed operations.
  size_t valid_bytes = 0;
  ScanLog(path, nullptr, &valid_bytes);
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe != nullptr) {
    std::fseek(probe, 0, SEEK_END);
    long size = std::ftell(probe);
    std::fclose(probe);
    if (size > 0 && static_cast<size_t>(size) > valid_bytes &&
        ::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return Status::Unavailable("cannot truncate torn log '" + path +
                                 "': " + std::strerror(errno));
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot open log '" + path +
                               "': " + std::strerror(errno));
  }
  return Status::OK();
}

void OperationLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

uint32_t OperationLog::Checksum(const std::string& payload) {
  uint32_t sum = 2166136261u;  // FNV-1a
  for (unsigned char c : payload) {
    sum ^= c;
    sum *= 16777619u;
  }
  return sum;
}

Status OperationLog::Append(Timestamp timestamp,
                            const std::string& payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("operation log is not open");
  }
  if (payload.find('\n') != std::string::npos) {
    return Status::InvalidArgument("log payload must be single-line");
  }
  std::string line = std::to_string(payload.size()) + "|" +
                     std::to_string(Checksum(payload)) + "|" +
                     std::to_string(timestamp) + "|" + payload + "\n";
  if (torn_write_bytes_ != kNoTornWrite) {
    size_t bytes = std::min(torn_write_bytes_, line.size());
    torn_write_bytes_ = kNoTornWrite;
    if (bytes > 0) std::fwrite(line.data(), 1, bytes, file_);
    std::fflush(file_);
    return Status::Unavailable("injected crash mid-append (" +
                               std::to_string(bytes) + " of " +
                               std::to_string(line.size()) +
                               " bytes reached the log)");
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::Unavailable("log append failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::Unavailable("log flush failed");
  }
  return Status::OK();
}

Result<std::vector<LogRecord>> OperationLog::ReadAll(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no log at '" + path + "'");
  }
  std::fclose(f);
  std::vector<LogRecord> records;
  size_t valid_bytes = 0;
  ScanLog(path, &records, &valid_bytes);
  return records;
}

}  // namespace promises
