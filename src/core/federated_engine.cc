#include "core/federated_engine.h"

#include <set>

#include "common/string_util.h"
#include "predicate/evaluator.h"

namespace promises {

Result<std::vector<std::string>> FederatedEngine::EligibleMembers(
    const Predicate& pred) {
  if (pred.kind() != PredicateKind::kProperty) {
    return Status::InvalidArgument(
        "federated classes support property predicates only");
  }
  std::set<std::string> needed;
  pred.match()->CollectProperties(&needed);
  std::vector<std::string> eligible;
  for (const std::string& member : members_) {
    const Schema* schema = ctx_.rm->GetSchema(member);
    if (schema == nullptr) continue;
    bool exports_all = true;
    for (const std::string& prop : needed) {
      if (!schema->Has(prop)) {
        exports_all = false;
        break;
      }
    }
    if (exports_all) eligible.push_back(member);
  }
  if (eligible.empty()) {
    return Status::FailedPrecondition(
        "no provider of '" + cls_ + "' exports the properties required by " +
        pred.ToString());
  }
  return eligible;
}

Status FederatedEngine::Reserve(Transaction* txn, const PromiseRecord& record,
                                const Predicate& pred) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<std::string> eligible,
                            EligibleMembers(pred));
  AssignKey key = KeyOf(record.id, pred);
  std::vector<Assignment> chosen;
  for (const std::string& member : eligible) {
    if (static_cast<int64_t>(chosen.size()) == pred.count()) break;
    const Schema* schema = ctx_.rm->GetSchema(member);
    PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                              ctx_.rm->ListInstances(txn, member));
    for (const InstanceView& inst : instances) {
      if (inst.status != InstanceStatus::kAvailable) continue;
      PROMISES_ASSIGN_OR_RETURN(bool m, InstanceMatches(pred, inst, schema));
      if (!m) continue;
      chosen.push_back(Assignment{member, inst.id});
      if (static_cast<int64_t>(chosen.size()) == pred.count()) break;
    }
  }
  if (static_cast<int64_t>(chosen.size()) < pred.count()) {
    return Status::FailedPrecondition(
        "only " + std::to_string(chosen.size()) + " of " +
        std::to_string(pred.count()) +
        " matching instances available across " +
        std::to_string(eligible.size()) + " provider(s) of '" + cls_ + "'");
  }
  for (const Assignment& a : chosen) {
    PROMISES_RETURN_IF_ERROR(ctx_.rm->SetInstanceStatus(
        txn, a.member, a.instance, InstanceStatus::kPromised));
  }
  assignments_[key] = std::move(chosen);
  txn->PushUndo([this, key] { assignments_.erase(key); });
  return Status::OK();
}

Status FederatedEngine::Unreserve(Transaction* txn, PromiseId id,
                                  const Predicate& pred) {
  AssignKey key = KeyOf(id, pred);
  auto it = assignments_.find(key);
  if (it == assignments_.end()) {
    return Status::Internal("no federated assignment for " + id.ToString() +
                            " on '" + cls_ + "'");
  }
  std::vector<Assignment> released = it->second;
  for (const Assignment& a : released) {
    PROMISES_ASSIGN_OR_RETURN(
        InstanceStatus status,
        ctx_.rm->GetInstanceStatus(txn, a.member, a.instance));
    if (status == InstanceStatus::kPromised) {
      PROMISES_RETURN_IF_ERROR(ctx_.rm->SetInstanceStatus(
          txn, a.member, a.instance, InstanceStatus::kAvailable));
    }
  }
  assignments_.erase(it);
  txn->PushUndo([this, key, released] { assignments_[key] = released; });
  return Status::OK();
}

Status FederatedEngine::VerifyConsistent(Transaction* txn, Timestamp now) {
  for (const auto& [key, assignments] : assignments_) {
    const PromiseRecord* rec = ctx_.table->Find(key.first);
    if (rec == nullptr || !rec->ActiveAt(now)) continue;
    for (const Assignment& a : assignments) {
      PROMISES_ASSIGN_OR_RETURN(
          InstanceStatus status,
          ctx_.rm->GetInstanceStatus(txn, a.member, a.instance));
      if (status != InstanceStatus::kPromised) {
        return Status::Violated("instance '" + a.instance + "' of provider '" +
                                a.member + "' promised to " +
                                key.first.ToString() + " via '" + cls_ +
                                "' but is now " +
                                std::string(InstanceStatusToString(status)));
      }
    }
  }
  return Status::OK();
}

Result<std::string> FederatedEngine::ResolveInstance(Transaction* txn,
                                                     PromiseId id,
                                                     const Predicate& pred,
                                                     int64_t already_taken) {
  (void)txn;
  auto it = assignments_.find(KeyOf(id, pred));
  if (it == assignments_.end()) {
    return Status::NotFound("no federated assignment for " + id.ToString());
  }
  if (already_taken < 0 ||
      already_taken >= static_cast<int64_t>(it->second.size())) {
    return Status::FailedPrecondition(
        "all " + std::to_string(it->second.size()) +
        " assigned instances already taken under " + id.ToString());
  }
  const Assignment& a = it->second[static_cast<size_t>(already_taken)];
  return a.member + "/" + a.instance;
}

Result<std::string> FederatedEngine::TakeInstance(Transaction* txn,
                                                  PromiseId id,
                                                  const Predicate& pred,
                                                  int64_t already_taken,
                                                  ResourceManager* rm) {
  auto it = assignments_.find(KeyOf(id, pred));
  if (it == assignments_.end()) {
    return Status::NotFound("no federated assignment for " + id.ToString());
  }
  if (already_taken < 0 ||
      already_taken >= static_cast<int64_t>(it->second.size())) {
    return Status::FailedPrecondition(
        "all " + std::to_string(it->second.size()) +
        " assigned instances already taken under " + id.ToString());
  }
  const Assignment& a = it->second[static_cast<size_t>(already_taken)];
  PROMISES_RETURN_IF_ERROR(
      rm->SetInstanceStatus(txn, a.member, a.instance,
                            InstanceStatus::kTaken));
  return a.member + "/" + a.instance;
}

Result<int64_t> FederatedEngine::CountHeadroom(Transaction* txn,
                                               Timestamp now,
                                               const Predicate& pred) {
  (void)now;
  Result<std::vector<std::string>> eligible = EligibleMembers(pred);
  if (!eligible.ok()) return int64_t{0};
  int64_t headroom = 0;
  for (const std::string& member : *eligible) {
    const Schema* schema = ctx_.rm->GetSchema(member);
    PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                              ctx_.rm->ListInstances(txn, member));
    for (const InstanceView& inst : instances) {
      if (inst.status != InstanceStatus::kAvailable) continue;
      PROMISES_ASSIGN_OR_RETURN(bool m, InstanceMatches(pred, inst, schema));
      if (m) ++headroom;
    }
  }
  return headroom;
}

std::string FederatedEngine::SerializeState() const {
  std::string out;
  EncodeField(&out, "fed1");
  EncodeField(&out, std::to_string(assignments_.size()));
  for (const auto& [key, assignments] : assignments_) {
    EncodeField(&out, std::to_string(key.first.value()));
    EncodeField(&out, key.second);
    EncodeField(&out, std::to_string(assignments.size()));
    for (const Assignment& a : assignments) {
      EncodeField(&out, a.member);
      EncodeField(&out, a.instance);
    }
  }
  return out;
}

Status FederatedEngine::RestoreState(const std::string& blob) {
  std::string_view cursor(blob);
  auto next = [&cursor]() -> Result<int64_t> {
    PROMISES_ASSIGN_OR_RETURN(std::string field, DecodeField(&cursor));
    return ParseInt64(field);
  };
  PROMISES_ASSIGN_OR_RETURN(std::string tag, DecodeField(&cursor));
  if (tag != "fed1") {
    return Status::InvalidArgument("federated engine '" + cls_ +
                                   "': unknown state tag '" + tag + "'");
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t entries, next());
  std::map<AssignKey, std::vector<Assignment>> assignments;
  for (int64_t i = 0; i < entries; ++i) {
    PROMISES_ASSIGN_OR_RETURN(int64_t id, next());
    PROMISES_ASSIGN_OR_RETURN(std::string pred, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(int64_t count, next());
    std::vector<Assignment> list;
    for (int64_t j = 0; j < count; ++j) {
      Assignment a;
      PROMISES_ASSIGN_OR_RETURN(a.member, DecodeField(&cursor));
      PROMISES_ASSIGN_OR_RETURN(a.instance, DecodeField(&cursor));
      list.push_back(std::move(a));
    }
    assignments[{PromiseId(static_cast<uint64_t>(id)), std::move(pred)}] =
        std::move(list);
  }
  assignments_ = std::move(assignments);
  return Status::OK();
}

}  // namespace promises
