// Escrow transactional method (O'Neil [8]), the §9 related-work
// mechanism the resource-pool engine descends from.
//
// "escrow locking [8] deals with numeric data under operations that add
// or subtract, by recording high and low limits for the possible
// values."
//
// An EscrowAccount tracks a committed value plus a set of in-flight
// operations, each declaring the interval [min_delta, max_delta] its
// eventual effect will fall into. A new operation is admitted iff the
// account's value stays within its configured bounds under EVERY
// possible outcome of every in-flight operation. Admission is O(1)
// against running worst-case aggregates.
//
// This standalone ledger both documents the lineage of the pool engine
// and provides the uncertain-effect generalisation the pool engine does
// not need (promise amounts are exact; escrow deltas are intervals).

#ifndef PROMISES_CORE_ESCROW_H_
#define PROMISES_CORE_ESCROW_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace promises {

/// Identifies one in-flight escrow operation.
using EscrowOpId = uint64_t;

class EscrowAccount {
 public:
  /// The account value must stay within [floor, ceiling] at all times.
  EscrowAccount(int64_t initial, int64_t floor, int64_t ceiling);

  /// Admits an operation whose final effect will lie in
  /// [min_delta, max_delta] (min_delta <= max_delta required). Returns
  /// the operation id, or kFailedPrecondition when some outcome
  /// combination could breach the bounds.
  ///
  /// Uncommitted increments are never credited to later admissions
  /// (an op promising to ADD at least 10 still counts as adding 0
  /// until it commits) — otherwise aborting it could strand an
  /// admission that spent the phantom credit. This is O'Neil's
  /// conservative reading: only committed funds are spendable.
  Result<EscrowOpId> Begin(int64_t min_delta, int64_t max_delta);

  /// Commits an operation with its actual effect `delta`, which must
  /// lie inside the interval declared at Begin.
  Status Commit(EscrowOpId op, int64_t delta);

  /// Aborts an operation: its interval is simply forgotten.
  Status Abort(EscrowOpId op);

  /// Committed value (excludes in-flight effects).
  int64_t value() const { return hot_.value; }
  /// Guaranteed lower/upper bound on the value however the in-flight
  /// operations resolve.
  int64_t WorstCaseLow() const { return hot_.value + hot_.inflight_min; }
  int64_t WorstCaseHigh() const { return hot_.value + hot_.inflight_max; }
  size_t inflight() const { return ops_.size(); }

  int64_t floor() const { return floor_; }
  int64_t ceiling() const { return ceiling_; }

  /// The per-admission counters every Begin/Commit/Abort touches, on
  /// their own cache line so accounts laid out side by side (one per
  /// resource class) never false-share under epoch workers
  /// (DESIGN.md §14; the layout test pins the alignment).
  struct alignas(64) HotCounters {
    int64_t value = 0;
    // Sum of min(0, min_delta) / max(0, max_delta) over in-flight
    // ops: guaranteed-possible drain and guaranteed-possible growth.
    int64_t inflight_min = 0;
    int64_t inflight_max = 0;
  };

 private:
  struct Op {
    int64_t min_delta;
    int64_t max_delta;
  };

  HotCounters hot_;
  int64_t floor_;
  int64_t ceiling_;
  EscrowOpId next_op_ = 1;
  std::map<EscrowOpId, Op> ops_;
};

}  // namespace promises

#endif  // PROMISES_CORE_ESCROW_H_
