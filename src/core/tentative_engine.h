// §5 'Tentative allocation' engine.
//
// "This is a hybrid mechanism, where property-based promise requests
// are met by marking the chosen resource instances as 'promised', and
// also remembering the specific predicate that resulted in this
// resource allocation. If a later promise request is not satisfiable
// from the pool of unallocated instances, the manager can consider
// rearranging these tentative allocations to allow it continue to meet
// all previous promises as well as granting the new request."
//
// The rearrangement is an augmenting-path search in the demand/instance
// bipartite graph (IncrementalMatcher): room 512 tentatively allocated
// for "a room with a view" migrates to the later "a 5th-floor room"
// request whenever a different room with a view exists. The instance
// status field mirrors the matching ('promised' = currently matched),
// per the hybrid description.

#ifndef PROMISES_CORE_TENTATIVE_ENGINE_H_
#define PROMISES_CORE_TENTATIVE_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "matching/bipartite.h"

namespace promises {

class TentativeEngine : public ResourceEngine {
 public:
  TentativeEngine(std::string resource_class, EngineContext ctx)
      : cls_(std::move(resource_class)), ctx_(ctx), matcher_(0) {}

  Technique technique() const override { return Technique::kTentative; }
  const std::string& resource_class() const override { return cls_; }

  Status Reserve(Transaction* txn, const PromiseRecord& record,
                 const Predicate& pred) override;
  Status Unreserve(Transaction* txn, PromiseId id,
                   const Predicate& pred) override;
  Status VerifyConsistent(Transaction* txn, Timestamp now) override;
  Result<std::string> ResolveInstance(Transaction* txn, PromiseId id,
                                      const Predicate& pred,
                                      int64_t already_taken) override;
  Result<int64_t> CountHeadroom(Transaction* txn, Timestamp now,
                                const Predicate& pred) override;
  std::string SerializeState() const override;
  Status RestoreState(const std::string& blob) override;

  /// Times an augmenting-path search displaced an earlier tentative
  /// choice (the §5 "rearranging" at work); exposed for E4.
  uint64_t reallocations() const { return reallocations_; }

 private:
  using AssignKey = std::pair<PromiseId, std::string>;
  static AssignKey KeyOf(PromiseId id, const Predicate& pred) {
    return {id, pred.ToString()};
  }

  /// Loads/refreshes the instance index and reconciles matcher state
  /// with externally changed statuses (taken instances drop out,
  /// re-available ones return). Mutations are undoable via `txn`.
  Status Sync(Transaction* txn);

  /// Registers an undo closure restoring the complete matcher + ledger
  /// state as of now. Call before any mutation batch.
  void PushStateUndo(Transaction* txn);

  /// Flips RM statuses so that matched rights read 'promised' and
  /// unmatched non-taken rights read 'available', diffing against
  /// `before_owner`.
  Status MirrorStatuses(Transaction* txn,
                        const std::vector<uint64_t>& before_owner);

  std::vector<uint64_t> CurrentOwners() const;

  std::string cls_;
  EngineContext ctx_;
  IncrementalMatcher matcher_;
  std::vector<std::string> instance_ids_;           // right index -> id
  std::map<std::string, size_t> index_of_;          // id -> right index
  std::map<AssignKey, std::vector<uint64_t>> ledger_;  // demand ids
  uint64_t next_demand_ = 1;
  uint64_t reallocations_ = 0;
};

}  // namespace promises

#endif  // PROMISES_CORE_TENTATIVE_ENGINE_H_
