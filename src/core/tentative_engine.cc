#include "core/tentative_engine.h"

#include <algorithm>

#include "common/string_util.h"
#include "predicate/evaluator.h"

namespace promises {

void TentativeEngine::PushStateUndo(Transaction* txn) {
  IncrementalMatcher::Snapshot snap = matcher_.TakeSnapshot();
  auto ledger = ledger_;
  uint64_t next = next_demand_;
  txn->PushUndo([this, snap = std::move(snap), ledger = std::move(ledger),
                 next]() mutable {
    matcher_.Restore(std::move(snap));
    ledger_ = std::move(ledger);
    next_demand_ = next;
  });
}

std::vector<uint64_t> TentativeEngine::CurrentOwners() const {
  std::vector<uint64_t> owners(matcher_.num_right());
  for (size_t r = 0; r < owners.size(); ++r) owners[r] = matcher_.OwnerOf(r);
  return owners;
}

Status TentativeEngine::Sync(Transaction* txn) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                            ctx_.rm->ListInstances(txn, cls_));
  // Index any new instances (appends only; instance removal from a
  // class is not part of the model).
  for (const InstanceView& inst : instances) {
    if (index_of_.count(inst.id)) continue;
    size_t idx = matcher_.AddRight();
    instance_ids_.push_back(inst.id);
    index_of_[inst.id] = idx;
    txn->PushUndo([this, id = inst.id] {
      // AddRight cannot be popped from the matcher (snapshot undos
      // handle matcher state); only the index maps need trimming when
      // the enclosing insert rolls back.
      if (!instance_ids_.empty() && instance_ids_.back() == id) {
        index_of_.erase(id);
        instance_ids_.pop_back();
      }
    });
  }

  // Reconcile statuses changed behind the matcher's back.
  for (const InstanceView& inst : instances) {
    size_t idx = index_of_.at(inst.id);
    bool usable = inst.status != InstanceStatus::kTaken;
    if (!usable && matcher_.RightEnabled(idx)) {
      // Taken: drop from the matching; a failed rehouse surfaces later
      // through VerifyConsistent's saturation check.
      matcher_.DisableRight(idx);
    } else if (usable && !matcher_.RightEnabled(idx)) {
      matcher_.EnableRight(idx);
    }
  }
  return Status::OK();
}

Status TentativeEngine::MirrorStatuses(
    Transaction* txn, const std::vector<uint64_t>& before_owner) {
  for (size_t r = 0; r < matcher_.num_right(); ++r) {
    uint64_t before = r < before_owner.size() ? before_owner[r] : 0;
    uint64_t after = matcher_.OwnerOf(r);
    if (before == after) continue;
    PROMISES_ASSIGN_OR_RETURN(
        InstanceStatus status,
        ctx_.rm->GetInstanceStatus(txn, cls_, instance_ids_[r]));
    if (status == InstanceStatus::kTaken) continue;
    InstanceStatus want = after != 0 ? InstanceStatus::kPromised
                                     : InstanceStatus::kAvailable;
    if (status != want) {
      PROMISES_RETURN_IF_ERROR(
          ctx_.rm->SetInstanceStatus(txn, cls_, instance_ids_[r], want));
    }
  }
  return Status::OK();
}

Status TentativeEngine::Reserve(Transaction* txn, const PromiseRecord& record,
                                const Predicate& pred) {
  if (pred.kind() == PredicateKind::kQuantity) {
    return Status::InvalidArgument(
        "tentative engine supports named and property predicates only");
  }
  PushStateUndo(txn);
  PROMISES_RETURN_IF_ERROR(Sync(txn));
  std::vector<uint64_t> before = CurrentOwners();

  // Build candidate sets.
  std::vector<std::vector<size_t>> unit_candidates;
  if (pred.kind() == PredicateKind::kNamed) {
    auto it = index_of_.find(pred.instance_id());
    if (it == index_of_.end()) {
      return Status::NotFound("instance '" + pred.instance_id() +
                              "' not found in '" + cls_ + "'");
    }
    unit_candidates.push_back({it->second});
  } else {
    PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                              ctx_.rm->ListInstances(txn, cls_));
    const Schema* schema = ctx_.rm->GetSchema(cls_);
    std::vector<size_t> candidates;
    for (const InstanceView& inst : instances) {
      PROMISES_ASSIGN_OR_RETURN(bool m, InstanceMatches(pred, inst, schema));
      if (m) candidates.push_back(index_of_.at(inst.id));
    }
    unit_candidates.assign(static_cast<size_t>(pred.count()), candidates);
  }

  std::vector<uint64_t> demand_ids;
  for (const std::vector<size_t>& candidates : unit_candidates) {
    uint64_t d = next_demand_++;
    if (!matcher_.AddDemand(d, candidates)) {
      // State undo closures revert partial adds when the transaction
      // rolls back; report the precondition failure.
      return Status::FailedPrecondition(
          "no assignment possible for " + pred.ToString() + " in '" + cls_ +
          "' even after reallocation");
    }
    demand_ids.push_back(d);
  }

  // Count displacements: any right whose owner changed from one demand
  // to a different demand (not 0) was reallocated.
  std::vector<uint64_t> after = CurrentOwners();
  for (size_t r = 0; r < after.size(); ++r) {
    uint64_t b = r < before.size() ? before[r] : 0;
    if (b != 0 && after[r] != 0 && after[r] != b) ++reallocations_;
  }

  ledger_[KeyOf(record.id, pred)] = demand_ids;
  return MirrorStatuses(txn, before);
}

Status TentativeEngine::Unreserve(Transaction* txn, PromiseId id,
                                  const Predicate& pred) {
  auto it = ledger_.find(KeyOf(id, pred));
  if (it == ledger_.end()) {
    return Status::Internal("no tentative assignment for " + id.ToString() +
                            " on '" + cls_ + "'");
  }
  PushStateUndo(txn);
  std::vector<uint64_t> before = CurrentOwners();
  for (uint64_t d : it->second) matcher_.RemoveDemand(d);
  ledger_.erase(it);
  return MirrorStatuses(txn, before);
}

Result<int64_t> TentativeEngine::CountHeadroom(Transaction* txn,
                                               Timestamp now,
                                               const Predicate& pred) {
  (void)now;
  if (pred.kind() != PredicateKind::kProperty) {
    return Status::Unimplemented("count headroom needs a property predicate");
  }
  PushStateUndo(txn);  // Sync's reconciliation must roll back too
  PROMISES_RETURN_IF_ERROR(Sync(txn));
  PROMISES_ASSIGN_OR_RETURN(std::vector<InstanceView> instances,
                            ctx_.rm->ListInstances(txn, cls_));
  const Schema* schema = ctx_.rm->GetSchema(cls_);
  std::vector<size_t> candidates;
  for (const InstanceView& inst : instances) {
    PROMISES_ASSIGN_OR_RETURN(bool m, InstanceMatches(pred, inst, schema));
    if (m) candidates.push_back(index_of_.at(inst.id));
  }
  // Probe on a scratch copy so the live matching is untouched.
  IncrementalMatcher::Snapshot snap = matcher_.TakeSnapshot();
  int64_t headroom = 0;
  uint64_t probe = next_demand_ + 1'000'000;  // ids never persisted
  while (matcher_.AddDemand(probe++, candidates)) ++headroom;
  matcher_.Restore(std::move(snap));
  return headroom;
}

Status TentativeEngine::VerifyConsistent(Transaction* txn, Timestamp now) {
  PushStateUndo(txn);
  std::vector<uint64_t> before = CurrentOwners();
  PROMISES_RETURN_IF_ERROR(Sync(txn));
  PROMISES_RETURN_IF_ERROR(MirrorStatuses(txn, before));
  for (const auto& [key, demand_ids] : ledger_) {
    const PromiseRecord* rec = ctx_.table->Find(key.first);
    if (rec == nullptr || !rec->ActiveAt(now)) continue;
    for (uint64_t d : demand_ids) {
      if (matcher_.AssignmentOf(d) == IncrementalMatcher::kUnmatched) {
        return Status::Violated("promise " + key.first.ToString() + " on '" +
                                cls_ +
                                "' lost its backing instance and no "
                                "reallocation exists");
      }
    }
  }
  return Status::OK();
}

Result<std::string> TentativeEngine::ResolveInstance(Transaction* txn,
                                                     PromiseId id,
                                                     const Predicate& pred,
                                                     int64_t already_taken) {
  (void)txn;
  auto it = ledger_.find(KeyOf(id, pred));
  if (it == ledger_.end()) {
    return Status::NotFound("no tentative assignment for " + id.ToString());
  }
  if (already_taken < 0 ||
      already_taken >= static_cast<int64_t>(it->second.size())) {
    return Status::FailedPrecondition(
        "all " + std::to_string(it->second.size()) +
        " assigned instances already taken under " + id.ToString());
  }
  uint64_t d = it->second[static_cast<size_t>(already_taken)];
  size_t r = matcher_.AssignmentOf(d);
  if (r == IncrementalMatcher::kUnmatched) {
    return Status::FailedPrecondition("demand unit of " + id.ToString() +
                                      " is currently unmatched");
  }
  return instance_ids_[r];
}

std::string TentativeEngine::SerializeState() const {
  IncrementalMatcher::Snapshot snap = matcher_.TakeSnapshot();
  std::string out;
  EncodeField(&out, "tent1");
  EncodeField(&out, std::to_string(instance_ids_.size()));
  for (size_t i = 0; i < instance_ids_.size(); ++i) {
    EncodeField(&out, instance_ids_[i]);
    EncodeField(&out, snap.right_enabled[i] ? "1" : "0");
  }
  // Demands sorted by id so equal states serialize identically.
  std::vector<uint64_t> demand_ids;
  demand_ids.reserve(snap.demands.size());
  for (const auto& [id, demand] : snap.demands) demand_ids.push_back(id);
  std::sort(demand_ids.begin(), demand_ids.end());
  EncodeField(&out, std::to_string(demand_ids.size()));
  for (uint64_t id : demand_ids) {
    const IncrementalMatcher::Demand& demand = snap.demands.at(id);
    EncodeField(&out, std::to_string(id));
    bool matched = demand.matched_right != IncrementalMatcher::kUnmatched;
    EncodeField(&out, matched ? std::to_string(demand.matched_right) : "-1");
    EncodeField(&out, std::to_string(demand.candidates.size()));
    for (size_t candidate : demand.candidates) {
      EncodeField(&out, std::to_string(candidate));
    }
  }
  EncodeField(&out, std::to_string(ledger_.size()));
  for (const auto& [key, demands] : ledger_) {
    EncodeField(&out, std::to_string(key.first.value()));
    EncodeField(&out, key.second);
    EncodeField(&out, std::to_string(demands.size()));
    for (uint64_t d : demands) EncodeField(&out, std::to_string(d));
  }
  EncodeField(&out, std::to_string(next_demand_));
  EncodeField(&out, std::to_string(reallocations_));
  return out;
}

Status TentativeEngine::RestoreState(const std::string& blob) {
  std::string_view cursor(blob);
  auto next = [&cursor]() -> Result<int64_t> {
    PROMISES_ASSIGN_OR_RETURN(std::string field, DecodeField(&cursor));
    return ParseInt64(field);
  };
  PROMISES_ASSIGN_OR_RETURN(std::string tag, DecodeField(&cursor));
  if (tag != "tent1") {
    return Status::InvalidArgument("tentative engine '" + cls_ +
                                   "': unknown state tag '" + tag + "'");
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t rights, next());
  std::vector<std::string> instance_ids;
  std::map<std::string, size_t> index_of;
  IncrementalMatcher::Snapshot snap;
  snap.right_owner.assign(static_cast<size_t>(rights), 0);
  snap.right_enabled.assign(static_cast<size_t>(rights), true);
  for (int64_t i = 0; i < rights; ++i) {
    PROMISES_ASSIGN_OR_RETURN(std::string instance, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(std::string enabled, DecodeField(&cursor));
    index_of[instance] = static_cast<size_t>(i);
    instance_ids.push_back(std::move(instance));
    snap.right_enabled[static_cast<size_t>(i)] = enabled == "1";
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t demands, next());
  for (int64_t i = 0; i < demands; ++i) {
    PROMISES_ASSIGN_OR_RETURN(int64_t id, next());
    PROMISES_ASSIGN_OR_RETURN(int64_t matched, next());
    PROMISES_ASSIGN_OR_RETURN(int64_t candidates, next());
    IncrementalMatcher::Demand demand;
    for (int64_t j = 0; j < candidates; ++j) {
      PROMISES_ASSIGN_OR_RETURN(int64_t candidate, next());
      if (candidate < 0 || candidate >= rights) {
        return Status::InvalidArgument("tentative state: candidate index "
                                       "out of range");
      }
      demand.candidates.push_back(static_cast<size_t>(candidate));
    }
    if (matched >= 0) {
      if (matched >= rights) {
        return Status::InvalidArgument("tentative state: matched index "
                                       "out of range");
      }
      demand.matched_right = static_cast<size_t>(matched);
      snap.right_owner[static_cast<size_t>(matched)] =
          static_cast<uint64_t>(id);
    }
    snap.demands[static_cast<uint64_t>(id)] = std::move(demand);
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t entries, next());
  std::map<AssignKey, std::vector<uint64_t>> ledger;
  for (int64_t i = 0; i < entries; ++i) {
    PROMISES_ASSIGN_OR_RETURN(int64_t id, next());
    PROMISES_ASSIGN_OR_RETURN(std::string pred, DecodeField(&cursor));
    PROMISES_ASSIGN_OR_RETURN(int64_t count, next());
    std::vector<uint64_t> ids;
    for (int64_t j = 0; j < count; ++j) {
      PROMISES_ASSIGN_OR_RETURN(int64_t d, next());
      ids.push_back(static_cast<uint64_t>(d));
    }
    ledger[{PromiseId(static_cast<uint64_t>(id)), std::move(pred)}] =
        std::move(ids);
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t next_demand, next());
  PROMISES_ASSIGN_OR_RETURN(int64_t reallocations, next());
  instance_ids_ = std::move(instance_ids);
  index_of_ = std::move(index_of);
  ledger_ = std::move(ledger);
  next_demand_ = static_cast<uint64_t>(next_demand);
  reallocations_ = static_cast<uint64_t>(reallocations);
  matcher_.Restore(std::move(snap));
  return Status::OK();
}

}  // namespace promises
