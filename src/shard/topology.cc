#include "shard/topology.h"

#include "common/string_util.h"

namespace promises {

namespace {

bool ValidEndpointName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (c == '|' || c == ',' || c == '=' || c == '\n' || c == '\r') {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t ShardTopology::Fnv1a(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= static_cast<uint64_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Result<ShardTopology> ShardTopology::Create(
    uint64_t version, std::vector<std::string> endpoints) {
  if (version == 0) {
    return Status::InvalidArgument("topology version must be >= 1");
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("topology needs at least one shard");
  }
  for (size_t i = 0; i < endpoints.size(); ++i) {
    if (!ValidEndpointName(endpoints[i])) {
      return Status::InvalidArgument("bad shard endpoint name '" +
                                     endpoints[i] + "'");
    }
    for (size_t j = 0; j < i; ++j) {
      if (endpoints[j] == endpoints[i]) {
        return Status::InvalidArgument("duplicate shard endpoint '" +
                                       endpoints[i] + "'");
      }
    }
  }
  ShardTopology t;
  t.version_ = version;
  t.endpoints_ = std::move(endpoints);
  return t;
}

Status ShardTopology::AddOverride(const std::string& cls, int shard) {
  if (cls.empty() || !ValidEndpointName(cls)) {
    return Status::InvalidArgument("bad override class name '" + cls + "'");
  }
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("override shard " + std::to_string(shard) +
                                   " out of range");
  }
  overrides_[cls] = shard;
  return Status::OK();
}

Result<int> ShardTopology::ShardOf(const std::string& cls) const {
  if (endpoints_.empty()) {
    return Status::FailedPrecondition("empty topology cannot route");
  }
  auto it = overrides_.find(cls);
  if (it != overrides_.end()) return it->second;
  return static_cast<int>(Fnv1a(cls) %
                          static_cast<uint64_t>(endpoints_.size()));
}

Result<std::string> ShardTopology::EndpointOf(const std::string& cls) const {
  PROMISES_ASSIGN_OR_RETURN(int shard, ShardOf(cls));
  return endpoints_[shard];
}

ShardTopology ShardTopology::WithVersion(uint64_t new_version) const {
  ShardTopology t = *this;
  t.version_ = new_version;
  return t;
}

std::string ShardTopology::ToString() const {
  std::string out = "v" + std::to_string(version_) + "|";
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    if (i > 0) out += ",";
    out += endpoints_[i];
  }
  out += "|";
  bool first = true;
  for (const auto& [cls, shard] : overrides_) {
    if (!first) out += ",";
    first = false;
    out += cls + "=" + std::to_string(shard);
  }
  return out;
}

Result<ShardTopology> ShardTopology::Parse(const std::string& text) {
  std::vector<std::string> fields = Split(text, '|');
  if (fields.size() != 3 || fields[0].size() < 2 || fields[0][0] != 'v') {
    return Status::InvalidArgument("bad topology text '" + text + "'");
  }
  PROMISES_ASSIGN_OR_RETURN(int64_t version,
                            ParseInt64(fields[0].substr(1)));
  if (version <= 0) {
    return Status::InvalidArgument("bad topology version in '" + text + "'");
  }
  PROMISES_ASSIGN_OR_RETURN(
      ShardTopology topology,
      Create(static_cast<uint64_t>(version), Split(fields[1], ',')));
  if (!fields[2].empty()) {
    for (const std::string& entry : Split(fields[2], ',')) {
      std::vector<std::string> kv = Split(entry, '=');
      if (kv.size() != 2) {
        return Status::InvalidArgument("bad topology override '" + entry +
                                       "'");
      }
      PROMISES_ASSIGN_OR_RETURN(int64_t shard, ParseInt64(kv[1]));
      PROMISES_RETURN_IF_ERROR(
          topology.AddOverride(kv[0], static_cast<int>(shard)));
    }
  }
  return topology;
}

}  // namespace promises
