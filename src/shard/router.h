// Federated promise-manager routing (DESIGN.md §13).
//
// A ShardRouter fronts a set of promise-manager shards described by a
// versioned ShardTopology. Requests whose predicates all map to one
// shard take the fast path: a single routed envelope (stamped with a
// <route> header the shard's guard validates) straight through the
// shard's striped-lock grant path — no coordination machinery at all.
// Requests spanning shards are driven by the FederatedGrantCoordinator,
// which reuses the WS-BusinessActivity substrate (src/wsba) to make the
// multi-shard grant atomic: every per-shard sub-grant is journaled as a
// durable intent BEFORE the sub-grant leaves the router, each granted
// shard is enlisted as a compensatable participant, and only when every
// shard has granted is the activity closed. Any failure — a shard
// rejecting, a shard unreachable, the router crashing mid-grant —
// resolves by the WS-BA rules: no durable close decision means presumed
// abort, and compensation releases exactly the sub-grants that were
// journaled, idempotently (the manager's release path skips unknown or
// foreign ids silently, so re-driven compensations are harmless).
//
// Journal grammar (shares the coordinator/participant log file; the
// wsba recovery routines skip records whose first field is not theirs):
//
//   fg|intent|<activity>|<shard>|<msgid>|<duration>|<predicates>
//   fg|grant|<activity>|<shard>|<promise-ids ';'-joined>
//   fg|resolved|<activity>|<outcome>
//
// `intent` is durable before the sub-grant is sent: a recovering twin
// re-sends the IDENTICAL envelope (same from + message id) so the
// shard's dedup table makes the probe exactly-once — the twin learns
// whether the crashed router's grant landed, then releases it (the
// undecided activity is presumed aborted). `grant` is durable before
// the participant's completed vote, so compensation always knows the
// promise ids it must release.
//
// Crash points (FaultInjector::AtCrashPoint): "fedgrant-pre-subgrant"
// fires after the intent is durable but before the sub-grant is sent;
// "fedgrant-post-subgrant" fires after the grant record is durable but
// before the completed vote. Both leave the activity undecided — the
// twin-world tests prove recovery converges to exactly one outcome
// with no leaked sub-grant either way.

#ifndef PROMISES_SHARD_ROUTER_H_
#define PROMISES_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/status.h"
#include "core/oplog.h"
#include "predicate/ast.h"
#include "protocol/fault_injector.h"
#include "protocol/message.h"
#include "protocol/retry_policy.h"
#include "protocol/transport.h"
#include "shard/topology.h"
#include "wsba/business_activity.h"

namespace promises {

/// One request/reply channel to a shard. Local clusters bind this to
/// Transport::Send; TCP clusters bind it to TcpClientChannel::Call.
/// Must be callable from multiple router threads concurrently (both
/// bindings are).
using ShardChannel = std::function<Result<Envelope>(const Envelope&)>;

/// Outcome of a routed promise request.
struct RoutedGrant {
  bool granted = false;
  /// True when the request spanned shards and ran as a WS-BA activity.
  bool federated = false;
  /// The WS-BA activity value backing a federated grant (0 on the
  /// single-shard fast path).
  uint64_t activity = 0;
  /// Granted promise ids, grouped by the shard that holds them.
  std::map<int, std::vector<PromiseId>> promises;
  std::string reject_reason;  ///< Set when !granted.
};

struct ShardRouterOptions {
  /// Envelope `from` for all shard traffic. Shard managers key their
  /// dedup tables and promise ownership by this name, so a recovering
  /// twin MUST reuse its corpse's name to replay intents exactly-once
  /// and release what the corpse granted.
  std::string name = "shard-router";
  ShardTopology topology;
  /// One channel per topology shard, same order as the endpoints.
  std::vector<ShardChannel> channels;
  /// In-process transport hosting the WS-BA conversation between the
  /// router's coordinator and its shard agents, and supplying message
  /// ids for shard envelopes. Required.
  Transport* control = nullptr;
  /// Timestamps journal records. Null = shared real clock.
  Clock* clock = nullptr;
  /// Federated-grant journal (shared with the WS-BA coordinator and
  /// participant records; one file per router). Null = federated
  /// grants refused with kFailedPrecondition, fast path unaffected.
  OperationLog* log = nullptr;
  /// Path `log` is open on; RecoverFederated reads it.
  std::string log_path;
  /// Per-shard call retry (identical envelope each attempt; the shard
  /// dedup table absorbs duplicates).
  RetryPolicy retry{/*max_attempts=*/4, /*deadline_ms=*/5'000,
                    /*initial_backoff_ms=*/1, /*backoff_multiplier=*/2.0,
                    /*max_backoff_ms=*/16, /*jitter=*/0.25};
  uint64_t retry_seed = 47;
  /// Crash-point source for the fedgrant-* boundaries. A fired point
  /// kills the router: every later call fails kUnavailable until a
  /// twin is built and recovered from the journal.
  FaultInjector* crash_points = nullptr;
  /// Duration used when a request asks for 0.
  DurationMs default_duration_ms = 60'000;
};

/// Drives multi-shard grants as compensatable WS-BA activities. One
/// per router; thread-safe. Owned by ShardRouter — reachable for
/// recovery bookkeeping and tests.
class FederatedGrantCoordinator {
 public:
  /// Registers the WS-BA coordinator on options.control under
  /// "<name>/ba". Per-activity shard agents register under
  /// "<name>/a<activity>/s<shard>" — deterministic, so a twin rebuilds
  /// the same conversation endpoints its corpse used.
  explicit FederatedGrantCoordinator(const ShardRouterOptions& options);
  ~FederatedGrantCoordinator();

  FederatedGrantCoordinator(const FederatedGrantCoordinator&) = delete;
  FederatedGrantCoordinator& operator=(const FederatedGrantCoordinator&) =
      delete;

  /// Grants `by_shard` (shard index -> predicates for that shard)
  /// atomically across shards, in ascending shard order. Returns a
  /// non-granted RoutedGrant with reject_reason when any shard
  /// rejects (earlier sub-grants are compensated away); an error
  /// status only on infrastructure failure (crashed router, journal
  /// write failure).
  Result<RoutedGrant> Grant(
      const std::map<int, std::vector<Predicate>>& by_shard,
      DurationMs duration_ms);

  /// What a twin's Recover() found and did.
  struct RecoveryReport {
    CoordinatorRecovery wsba;      ///< Decision-log replay summary.
    size_t worlds_rebuilt = 0;     ///< Unresolved activities re-agented.
    size_t intents_probed = 0;     ///< Dangling intents re-sent (dedup'd).
    size_t orphan_releases = 0;    ///< Probe found a landed grant; released.
    bool complete = true;          ///< False when re-drives left residue.
  };

  /// Rebuilds a twin from the journal at options.log_path: re-creates
  /// shard agents for unresolved activities (replaying their wsba
  /// participant state), probes dangling intents with the corpse's
  /// exact envelopes and releases any grant that landed, then replays
  /// the WS-BA decision log (presumed abort for undecided activities —
  /// compensation releases journaled sub-grants through the rebuilt
  /// agents). Call on a freshly constructed twin before new traffic;
  /// the corpse must be destroyed first (its agents' destructors
  /// would otherwise unregister the twin's endpoints).
  Result<RecoveryReport> Recover();

  /// Re-drives activities the coordinator still owes work to (shards
  /// unreachable during the original drive). Returns the number still
  /// unresolved after `max_rounds`.
  size_t ReDriveUnresolved(int max_rounds);

  /// Resolved-outcome tally (this incarnation's bookkeeping).
  struct OutcomeTally {
    uint64_t closed = 0;
    uint64_t compensated = 0;
    uint64_t mixed = 0;
  };
  OutcomeTally tally() const;
  std::vector<ActivityId> Unresolved() const {
    return coordinator_.UnresolvedActivities();
  }

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  /// External SIGKILL: marks the router crashed without a crash point.
  void SimulateCrash();

  BusinessActivityCoordinator* coordinator() { return &coordinator_; }
  uint64_t shard_retransmissions() const {
    return shard_retransmissions_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-activity conversation: one compensatable agent per touched
  /// shard, plus the promise ids granted there. Lives until the
  /// activity resolves.
  struct World {
    std::map<int, std::unique_ptr<BusinessActivityParticipant>> agents;
    std::map<int, std::vector<PromiseId>> grants;
    std::map<int, ParticipantId> enlistments;
  };

  std::string AgentEndpoint(uint64_t activity, int shard) const;
  /// Constructs (without enlisting) the compensatable agent for
  /// (activity, shard) — recovery restores its state separately.
  std::unique_ptr<BusinessActivityParticipant> BuildAgent(uint64_t activity,
                                                          int shard);
  /// Creates + enlists the agent for (activity, shard). mu_ held.
  Result<ParticipantId> MakeAgentLocked(ActivityId activity, int shard);
  /// Releases every journaled sub-grant of (activity, shard) on the
  /// shard — the compensation/cancel callback. Idempotent: the
  /// manager skips unknown or already-released ids.
  Status ReleaseShardGrants(uint64_t activity, int shard);
  /// Identical-envelope sub-grant send with retry.
  Result<Envelope> CallShard(int shard, const Envelope& envelope);
  Status AppendRecord(const std::string& payload, bool durable);
  bool CrashAt(const char* point);
  /// Queries the final outcome, updates the tally, journals the
  /// resolved hint and tears down the world. Outside mu_.
  void NoteResolved(ActivityId activity);

  ShardRouterOptions options_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;
  BusinessActivityCoordinator coordinator_;
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> shard_retransmissions_{0};
  std::atomic<uint64_t> call_seq_{0};
  IdGenerator<RequestId> request_ids_;

  mutable std::mutex mu_;
  std::map<uint64_t, World> worlds_;  ///< Keyed by activity value.
  OutcomeTally tally_;
};

/// The routing front door. Thread-safe; workers share one router.
class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions options);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  const ShardTopology& topology() const { return options_.topology; }
  const std::string& name() const { return options_.name; }

  /// Routes a promise request. All predicates on one shard -> direct
  /// routed envelope (no WS-BA activity, no journal record); spanning
  /// shards -> FederatedGrantCoordinator::Grant. Rejections come back
  /// as RoutedGrant{granted=false}, not errors.
  Result<RoutedGrant> Request(const std::vector<Predicate>& predicates,
                              DurationMs duration_ms = 0);

  /// Releases every promise in `grant`, shard by shard. Unknown or
  /// expired ids are skipped silently by the shards (re-release after
  /// recovery is harmless).
  Status Release(const RoutedGrant& grant);

  /// Runs `action` on `shard` under the environment promises listed
  /// (all must live on that shard), optionally releasing them after.
  Result<ActionResultBody> Act(int shard, const ActionBody& action,
                               const std::vector<PromiseId>& environment,
                               bool release_after);

  /// Shard a class routes to under the current topology.
  Result<int> ShardOfClass(const std::string& cls) const {
    return options_.topology.ShardOf(cls);
  }

  FederatedGrantCoordinator* federated() { return federated_.get(); }
  bool crashed() const {
    return federated_ != nullptr && federated_->crashed();
  }

  struct Stats {
    uint64_t fast_path_grants = 0;  ///< Single-shard accepted grants.
    uint64_t federated_grants = 0;  ///< Cross-shard accepted grants.
    uint64_t rejects = 0;           ///< Either path, shard said no.
  };
  Stats stats() const;

 private:
  friend class FederatedGrantCoordinator;

  /// Builds the routed envelope skeleton for `shard` (from, to,
  /// message id, <route> stamp).
  Envelope RoutedEnvelope(int shard) const;
  Result<Envelope> CallShard(int shard, const Envelope& envelope);

  ShardRouterOptions options_;
  std::unique_ptr<FederatedGrantCoordinator> federated_;
  std::atomic<uint64_t> call_seq_{0};
  IdGenerator<RequestId> request_ids_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace promises

#endif  // PROMISES_SHARD_ROUTER_H_
