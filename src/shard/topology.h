// Shard topology: the deterministic resource-key -> shard map behind
// the federated promise-manager cluster (ROADMAP item 1; DESIGN.md
// §13).
//
// A topology is a versioned, immutable description of the federation:
// an ordered list of shard endpoints plus optional explicit placement
// overrides. Routing is purely a function of (topology, resource
// class): the default placement hashes the class name with FNV-1a and
// takes it modulo the shard count, and an override pins a class to a
// named shard regardless of the hash. Every router and every shard
// holds the same struct, so any two parties that agree on the version
// agree on every placement — there is no placement oracle to ask at
// request time.
//
// The version is the wire-level consistency handle: requests carry a
// <route> header stamping the shard index and topology version the
// sender routed with (protocol/message.h), and a shard configured with
// a shard guard (PromiseManagerConfig::shard_index/topology_version)
// refuses mismatched envelopes with kFailedPrecondition instead of
// serving a request that was routed with a different world view. A
// re-sharded cluster bumps the version, so in-flight requests routed
// under the old map fail fast and re-plan rather than landing on the
// wrong shard's books.

#ifndef PROMISES_SHARD_TOPOLOGY_H_
#define PROMISES_SHARD_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace promises {

class ShardTopology {
 public:
  ShardTopology() = default;

  /// `endpoints[i]` is shard i's transport endpoint name. Endpoint
  /// names must be unique, non-empty and free of '|' / ',' / newline
  /// (they ride the textual serialization and log records).
  static Result<ShardTopology> Create(uint64_t version,
                                      std::vector<std::string> endpoints);

  uint64_t version() const { return version_; }
  int num_shards() const { return static_cast<int>(endpoints_.size()); }
  const std::vector<std::string>& endpoints() const { return endpoints_; }
  const std::string& endpoint(int shard) const { return endpoints_[shard]; }
  const std::map<std::string, int>& overrides() const { return overrides_; }

  /// Pins `cls` to `shard` irrespective of the hash placement. The
  /// override participates in ToString/Parse, so both sides of the
  /// wire keep agreeing.
  Status AddOverride(const std::string& cls, int shard);

  /// Shard index owning resource class `cls`: the override if one
  /// exists, otherwise FNV1a(cls) % num_shards. Deterministic across
  /// processes and runs; fails only on an empty topology.
  Result<int> ShardOf(const std::string& cls) const;

  /// Convenience: the endpoint name behind ShardOf.
  Result<std::string> EndpointOf(const std::string& cls) const;

  /// A copy with the version bumped to `new_version` (re-sharding
  /// always changes the version; placements may then be edited via
  /// AddOverride before the copy is distributed).
  ShardTopology WithVersion(uint64_t new_version) const;

  /// Textual form: "v<version>|<ep0>,<ep1>,...|<cls>=<shard>,..."
  /// (third field empty when there are no overrides). Stable under
  /// Parse(ToString()).
  std::string ToString() const;
  static Result<ShardTopology> Parse(const std::string& text);

  /// 64-bit FNV-1a of `s` — the placement hash, exposed so tests can
  /// assert the routing function rather than snapshot it.
  static uint64_t Fnv1a(const std::string& s);

 private:
  uint64_t version_ = 0;
  std::vector<std::string> endpoints_;
  std::map<std::string, int> overrides_;
};

}  // namespace promises

#endif  // PROMISES_SHARD_TOPOLOGY_H_
