// Shard-set hosting (DESIGN.md §13).
//
// Two ways to stand up the N promise-manager shards a ShardRouter
// fronts, sharing one ShardTopology:
//
//   * LocalShardCluster — the "local engine": every shard is a full
//     {ResourceManager, TransactionManager, PromiseManager} world
//     living in this process on one shared Transport, named by its
//     topology endpoint and configured with the shard guard
//     (shard_index + topology_version), so a misrouted or stale-plan
//     envelope is refused exactly as a remote shard would refuse it.
//     This is the unit-test / chaos / bench substrate: same routing,
//     same guard, no sockets.
//
//   * TcpShardCluster — the same shard set as real processes-in-
//     miniature: each shard is a ServerLifecycle (supervised recovery,
//     group commit, checkpoints, warm-up admission) listening on its
//     own TCP port, and channels are TcpClientChannels speaking the
//     envelope XML over the wire. KillShard/StartShard give the
//     restart tests a real crash surface per shard.
//
// Both produce the ShardChannel vector a ShardRouter consumes, so the
// router code is identical over either engine.

#ifndef PROMISES_SHARD_CLUSTER_H_
#define PROMISES_SHARD_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/promise_manager.h"
#include "resource/resource_manager.h"
#include "service/lifecycle.h"
#include "shard/router.h"
#include "shard/topology.h"
#include "txn/transaction.h"

namespace promises {

struct LocalShardClusterOptions {
  ShardTopology topology;
  /// Shared clock for every shard world. Required.
  Clock* clock = nullptr;
  /// Transport the shard managers register on (their topology endpoint
  /// names). Required; typically the same transport the router uses
  /// for control traffic, possibly with a FaultInjector.
  Transport* transport = nullptr;
  /// Per-shard manager template; name / shard_index / topology_version
  /// are overwritten with the shard's identity.
  PromiseManagerConfig manager;
  /// Called once per shard to create its pools (shard-local universe).
  std::function<void(ResourceManager&, int shard)> define_resources;
  /// Called once per shard after construction: register services etc.
  std::function<void(PromiseManager&, int shard)> configure_manager;
  /// Lock-wait budget for each shard's TransactionManager.
  DurationMs lock_timeout_ms = 250;
};

/// In-process shard set. Construction order per shard: resources,
/// transactions, manager (self-registers on the transport under its
/// endpoint name with the shard guard armed).
class LocalShardCluster {
 public:
  static Result<std::unique_ptr<LocalShardCluster>> Start(
      LocalShardClusterOptions options);

  LocalShardCluster(const LocalShardCluster&) = delete;
  LocalShardCluster& operator=(const LocalShardCluster&) = delete;

  int num_shards() const { return topology_.num_shards(); }
  const ShardTopology& topology() const { return topology_; }
  PromiseManager* manager(int shard) { return shards_[shard]->manager.get(); }
  ResourceManager* resources(int shard) {
    return shards_[shard]->resources.get();
  }

  /// Channels binding each shard to Transport::Send — what a
  /// ShardRouter consumes.
  std::vector<ShardChannel> Channels() const;

 private:
  struct ShardWorld {
    std::unique_ptr<ResourceManager> resources;
    std::unique_ptr<TransactionManager> transactions;
    std::unique_ptr<PromiseManager> manager;
  };

  LocalShardCluster() = default;

  ShardTopology topology_;
  Transport* transport_ = nullptr;
  std::vector<std::unique_ptr<ShardWorld>> shards_;
};

struct TcpShardClusterOptions {
  ShardTopology topology;
  /// Directory for per-shard durable state; must exist. Each shard
  /// uses it with a distinct "<name>-s<i>" file prefix.
  std::string data_dir = "/tmp";
  /// Lifecycle name prefix (also the file prefix stem).
  std::string name = "shard";
  /// Per-shard manager template; identity fields overwritten.
  PromiseManagerConfig manager;
  std::function<void(ResourceManager&, int shard)> define_resources;
  std::function<void(PromiseManager&, int shard)> configure_manager;
  /// Per-call budget for the client channels (0 = unbounded).
  int64_t call_timeout_ms = 2'000;
};

/// Shard set as ServerLifecycle-supervised TCP servers. Start() boots
/// every shard; KillShard/StartShard drive per-shard crash-restart.
class TcpShardCluster {
 public:
  static Result<std::unique_ptr<TcpShardCluster>> Start(
      TcpShardClusterOptions options);
  ~TcpShardCluster();

  TcpShardCluster(const TcpShardCluster&) = delete;
  TcpShardCluster& operator=(const TcpShardCluster&) = delete;

  int num_shards() const { return topology_.num_shards(); }
  const ShardTopology& topology() const { return topology_; }
  ServerLifecycle* lifecycle(int shard) { return shards_[shard].get(); }
  uint16_t port(int shard) const { return shards_[shard]->port(); }

  /// SIGKILL one shard (keeps its port for the restart).
  void KillShard(int shard);
  /// Boots (or re-boots) one shard through its supervised recovery.
  Status StartShard(int shard);
  Status StopAll();

  /// Channels speaking envelope XML to each shard's port. Lazily
  /// connects; a channel transparently reconnects after a shard
  /// restart. Owned by the cluster.
  Result<std::vector<ShardChannel>> Channels();

 private:
  TcpShardCluster() = default;

  ShardTopology topology_;
  TcpShardClusterOptions options_;
  std::vector<std::unique_ptr<ServerLifecycle>> shards_;
  std::vector<std::unique_ptr<TcpClientChannel>> clients_;
};

}  // namespace promises

#endif  // PROMISES_SHARD_CLUSTER_H_
