#include "shard/cluster.h"

#include <mutex>
#include <utility>

namespace promises {

// --------------------------------------------------------------------
// LocalShardCluster

Result<std::unique_ptr<LocalShardCluster>> LocalShardCluster::Start(
    LocalShardClusterOptions options) {
  if (options.clock == nullptr || options.transport == nullptr) {
    return Status::InvalidArgument(
        "LocalShardCluster needs a clock and a transport");
  }
  if (options.topology.num_shards() == 0) {
    return Status::InvalidArgument("empty topology");
  }
  auto cluster = std::unique_ptr<LocalShardCluster>(new LocalShardCluster());
  cluster->topology_ = options.topology;
  cluster->transport_ = options.transport;
  for (int i = 0; i < options.topology.num_shards(); ++i) {
    auto world = std::make_unique<ShardWorld>();
    world->resources = std::make_unique<ResourceManager>();
    if (options.define_resources) {
      options.define_resources(*world->resources, i);
    }
    world->transactions =
        std::make_unique<TransactionManager>(options.lock_timeout_ms);
    PromiseManagerConfig config = options.manager;
    config.name = options.topology.endpoint(i);
    config.shard_index = i;
    config.topology_version = options.topology.version();
    world->manager = std::make_unique<PromiseManager>(
        config, options.clock, world->resources.get(),
        world->transactions.get(), options.transport);
    if (options.configure_manager) {
      options.configure_manager(*world->manager, i);
    }
    cluster->shards_.push_back(std::move(world));
  }
  return cluster;
}

std::vector<ShardChannel> LocalShardCluster::Channels() const {
  std::vector<ShardChannel> channels;
  channels.reserve(shards_.size());
  Transport* transport = transport_;
  for (size_t i = 0; i < shards_.size(); ++i) {
    channels.push_back([transport](const Envelope& envelope) {
      return transport->Send(envelope);
    });
  }
  return channels;
}

// --------------------------------------------------------------------
// TcpShardCluster

Result<std::unique_ptr<TcpShardCluster>> TcpShardCluster::Start(
    TcpShardClusterOptions options) {
  if (options.topology.num_shards() == 0) {
    return Status::InvalidArgument("empty topology");
  }
  auto cluster = std::unique_ptr<TcpShardCluster>(new TcpShardCluster());
  cluster->topology_ = options.topology;
  cluster->options_ = options;
  for (int i = 0; i < options.topology.num_shards(); ++i) {
    ServerLifecycleOptions lopts;
    lopts.port = 0;
    lopts.data_dir = options.data_dir;
    lopts.name = options.name + "-s" + std::to_string(i);
    lopts.manager = options.manager;
    lopts.manager.name = options.topology.endpoint(i);
    lopts.manager.shard_index = i;
    lopts.manager.topology_version = options.topology.version();
    if (options.define_resources) {
      auto define = options.define_resources;
      lopts.define_resources = [define, i](ResourceManager& rm) {
        define(rm, i);
      };
    }
    if (options.configure_manager) {
      auto configure = options.configure_manager;
      lopts.configure_manager = [configure, i](PromiseManager& pm) {
        configure(pm, i);
      };
    }
    auto lifecycle = std::make_unique<ServerLifecycle>(lopts);
    PROMISES_RETURN_IF_ERROR(lifecycle->Start());
    cluster->shards_.push_back(std::move(lifecycle));
  }
  return cluster;
}

TcpShardCluster::~TcpShardCluster() { (void)StopAll(); }

void TcpShardCluster::KillShard(int shard) { shards_[shard]->KillHard(); }

Status TcpShardCluster::StartShard(int shard) {
  return shards_[shard]->Start();
}

Status TcpShardCluster::StopAll() {
  Status worst = Status::OK();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i] == nullptr) continue;
    if (shards_[i]->state() == ServerLifecycle::State::kStopped) continue;
    if (!shards_[i]->StopGraceful() && worst.ok()) {
      worst = Status::Internal("shard " + std::to_string(i) +
                               " did not drain cleanly");
    }
  }
  return worst;
}

Result<std::vector<ShardChannel>> TcpShardCluster::Channels() {
  if (clients_.empty()) {
    for (int i = 0; i < num_shards(); ++i) {
      auto client = std::make_unique<TcpClientChannel>();
      client->set_call_timeout_ms(options_.call_timeout_ms);
      PROMISES_RETURN_IF_ERROR(client->Connect(shards_[i]->port()));
      clients_.push_back(std::move(client));
    }
  }
  std::vector<ShardChannel> channels;
  channels.reserve(clients_.size());
  for (auto& client : clients_) {
    // TcpClientChannel is a single connection: serialize callers.
    auto mu = std::make_shared<std::mutex>();
    TcpClientChannel* raw = client.get();
    channels.push_back([raw, mu](const Envelope& envelope) {
      std::lock_guard<std::mutex> lock(*mu);
      return raw->Call(envelope);
    });
  }
  return channels;
}

}  // namespace promises
