#include "shard/router.h"

#include <optional>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "predicate/parser.h"

namespace promises {

namespace {

struct ShardMetrics {
  Counter* fast_path_grants;
  Counter* federated_grants;
  Counter* federated_rejects;
  Counter* intent_probes;
  Counter* orphan_releases;

  static ShardMetrics& Get() {
    static ShardMetrics m{
        MetricsRegistry::Global().GetCounter("promises_shard_fast_path_total"),
        MetricsRegistry::Global().GetCounter("promises_shard_federated_total"),
        MetricsRegistry::Global().GetCounter(
            "promises_shard_federated_rejects_total"),
        MetricsRegistry::Global().GetCounter(
            "promises_shard_intent_probes_total"),
        MetricsRegistry::Global().GetCounter(
            "promises_shard_orphan_releases_total"),
    };
    return m;
  }
};

/// Roots a span when no ambient context exists (direct API use),
/// parents under it otherwise (traced workload) — wsba idiom.
void BeginOpSpan(std::optional<ScopedSpan>& span, std::string_view name) {
  if (CurrentTraceContext() != nullptr) {
    span.emplace(name);
  } else {
    span.emplace(Tracer::Global().StartTrace(), name);
  }
}

std::string PredicateListText(const std::vector<Predicate>& predicates) {
  std::vector<std::string> parts;
  parts.reserve(predicates.size());
  for (const Predicate& p : predicates) parts.push_back(p.ToString());
  return Join(parts, "; ");
}

std::string PromiseIdListText(const std::vector<PromiseId>& ids) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (PromiseId id : ids) parts.push_back(std::to_string(id.value()));
  return Join(parts, ";");
}

bool ParseU64Field(const std::string& field, uint64_t* out) {
  Result<int64_t> parsed = ParseInt64(field);
  if (!parsed.ok() || *parsed < 0) return false;
  *out = static_cast<uint64_t>(*parsed);
  return true;
}

CoordinatorOptions CoordOptionsFor(const ShardRouterOptions& options,
                                   Clock* clock) {
  CoordinatorOptions c;
  c.log = options.log;
  c.clock = clock;
  c.retry = options.retry;
  c.retry_seed = options.retry_seed * 17 + 1;
  c.crash_points = options.crash_points;
  return c;
}

}  // namespace

// --------------------------------------------------------------------
// FederatedGrantCoordinator

FederatedGrantCoordinator::FederatedGrantCoordinator(
    const ShardRouterOptions& options)
    : options_(options),
      owned_clock_(options.clock == nullptr ? std::make_unique<SystemClock>()
                                            : nullptr),
      clock_(options.clock != nullptr ? options.clock : owned_clock_.get()),
      coordinator_(options.name + "/ba", options.control,
                   CoordOptionsFor(options, clock_)) {}

FederatedGrantCoordinator::~FederatedGrantCoordinator() = default;

std::string FederatedGrantCoordinator::AgentEndpoint(uint64_t activity,
                                                     int shard) const {
  return options_.name + "/a" + std::to_string(activity) + "/s" +
         std::to_string(shard);
}

Status FederatedGrantCoordinator::AppendRecord(const std::string& payload,
                                               bool durable) {
  if (options_.log == nullptr) return Status::OK();
  Result<uint64_t> seq =
      options_.log->AppendOperation(clock_, payload, /*promise_id=*/0);
  if (!seq.ok()) return seq.status();
  if (durable) return options_.log->WaitDurable(*seq);
  return Status::OK();
}

bool FederatedGrantCoordinator::CrashAt(const char* point) {
  if (options_.crash_points == nullptr) return false;
  if (!options_.crash_points->AtCrashPoint(point)) return false;
  crashed_.store(true, std::memory_order_release);
  coordinator_.SimulateCrash();
  return true;
}

void FederatedGrantCoordinator::SimulateCrash() {
  crashed_.store(true, std::memory_order_release);
  coordinator_.SimulateCrash();
}

Result<Envelope> FederatedGrantCoordinator::CallShard(
    int shard, const Envelope& envelope) {
  if (shard < 0 || shard >= static_cast<int>(options_.channels.size())) {
    return Status::InvalidArgument("no channel for shard " +
                                   std::to_string(shard));
  }
  Rng rng(options_.retry_seed * 1000003 +
          call_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  uint64_t retries = 0;
  Result<Envelope> out = CallWithRetry(
      options_.retry, &rng,
      [&]() -> Result<Envelope> { return options_.channels[shard](envelope); },
      &retries);
  shard_retransmissions_.fetch_add(retries, std::memory_order_relaxed);
  return out;
}

Status FederatedGrantCoordinator::ReleaseShardGrants(uint64_t activity,
                                                     int shard) {
  std::vector<PromiseId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = worlds_.find(activity);
    if (it == worlds_.end()) return Status::OK();
    auto g = it->second.grants.find(shard);
    if (g == it->second.grants.end()) return Status::OK();
    ids = g->second;
  }
  if (ids.empty()) return Status::OK();
  Envelope env;
  env.message_id = options_.control->NextMessageId();
  env.from = options_.name;
  env.to = options_.topology.endpoint(shard);
  RouteHeader route;
  route.shard = shard;
  route.topology_version = options_.topology.version();
  env.route = route;
  ReleaseHeader release;
  release.promises = std::move(ids);
  env.release = std::move(release);
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, CallShard(shard, env));
  (void)reply;  // Release replies carry no payload; unknown ids skipped.
  return Status::OK();
}

std::unique_ptr<BusinessActivityParticipant>
FederatedGrantCoordinator::BuildAgent(uint64_t activity, int shard) {
  BusinessActivityParticipant::Callbacks callbacks;
  // Close confirms the grant: the promises stay with the caller.
  callbacks.on_close = [] { return Status::OK(); };
  // Compensate undoes a completed sub-grant; cancel catches the window
  // where the grant was journaled but the completed vote never made it
  // (best-effort — an unreachable shard leaves the lease expiry as the
  // backstop). Both are idempotent: released ids are unknown to the
  // shard afterwards and silently skipped.
  callbacks.on_compensate = [this, activity, shard] {
    return ReleaseShardGrants(activity, shard);
  };
  callbacks.on_cancel = [this, activity, shard] {
    (void)ReleaseShardGrants(activity, shard);
  };
  ParticipantOptions popts;
  popts.log = options_.log;
  popts.clock = clock_;
  popts.retry = options_.retry;
  popts.retry_seed =
      options_.retry_seed * 31 + activity * 7 + static_cast<uint64_t>(shard);
  return std::make_unique<BusinessActivityParticipant>(
      AgentEndpoint(activity, shard), options_.control, std::move(callbacks),
      popts);
}

Result<ParticipantId> FederatedGrantCoordinator::MakeAgentLocked(
    ActivityId activity, int shard) {
  World& world = worlds_[activity.value()];
  auto existing = world.enlistments.find(shard);
  if (existing != world.enlistments.end()) return existing->second;
  std::unique_ptr<BusinessActivityParticipant> agent =
      BuildAgent(activity.value(), shard);
  PROMISES_ASSIGN_OR_RETURN(ParticipantId pid,
                            coordinator_.Register(activity, agent->endpoint()));
  agent->Enlist(coordinator_.endpoint(), activity, pid);
  world.enlistments[shard] = pid;
  world.agents[shard] = std::move(agent);
  return pid;
}

void FederatedGrantCoordinator::NoteResolved(ActivityId activity) {
  Result<ActivityOutcome> outcome = coordinator_.OutcomeOf(activity);
  if (!outcome.ok()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (*outcome) {
      case ActivityOutcome::kClosed:
        ++tally_.closed;
        break;
      case ActivityOutcome::kCompensated:
        ++tally_.compensated;
        break;
      case ActivityOutcome::kMixed:
        ++tally_.mixed;
        break;
      case ActivityOutcome::kOpen:
        return;  // Still owed work; keep the world alive.
    }
    worlds_.erase(activity.value());  // Agents unregister: safe, resolved.
  }
  (void)AppendRecord("fg|resolved|" + std::to_string(activity.value()) + "|" +
                         std::string(ActivityOutcomeToString(*outcome)),
                     /*durable=*/false);
}

Result<RoutedGrant> FederatedGrantCoordinator::Grant(
    const std::map<int, std::vector<Predicate>>& by_shard,
    DurationMs duration_ms) {
  if (crashed()) return Status::Unavailable("shard router crashed");
  if (options_.log == nullptr) {
    return Status::FailedPrecondition(
        "federated grants need a journal (ShardRouterOptions.log)");
  }
  if (by_shard.size() < 2) {
    return Status::InvalidArgument("federated grant needs >= 2 shards");
  }
  DurationMs duration =
      duration_ms > 0 ? duration_ms : options_.default_duration_ms;
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "fedgrant");

  ActivityId activity = coordinator_.CreateActivity();
  if (activity.value() == 0) {
    return Status::Unavailable("activity creation failed");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    worlds_[activity.value()];
  }

  std::string reject;
  Status infra = Status::OK();
  for (const auto& [shard, predicates] : by_shard) {
    if (shard < 0 || shard >= options_.topology.num_shards()) {
      infra = Status::InvalidArgument("shard " + std::to_string(shard) +
                                      " out of topology range");
      break;
    }
    Result<ParticipantId> pid = [&]() -> Result<ParticipantId> {
      std::lock_guard<std::mutex> lock(mu_);
      return MakeAgentLocked(activity, shard);
    }();
    if (!pid.ok()) {
      infra = pid.status();
      break;
    }
    // Durable intent BEFORE the sub-grant leaves: a twin can replay
    // the identical envelope (same from + message id) and the shard's
    // dedup table makes the probe exactly-once.
    MessageId msgid = options_.control->NextMessageId();
    Status logged = AppendRecord(
        "fg|intent|" + std::to_string(activity.value()) + "|" +
            std::to_string(shard) + "|" + std::to_string(msgid.value()) + "|" +
            std::to_string(duration) + "|" + PredicateListText(predicates),
        /*durable=*/true);
    if (!logged.ok()) {
      infra = logged;
      break;
    }
    if (CrashAt("fedgrant-pre-subgrant")) {
      return Status::Unavailable("router crashed at fedgrant-pre-subgrant");
    }
    Envelope env;
    env.message_id = msgid;
    env.from = options_.name;
    env.to = options_.topology.endpoint(shard);
    RouteHeader route;
    route.shard = shard;
    route.topology_version = options_.topology.version();
    env.route = route;
    PromiseRequestHeader req;
    req.request_id = request_ids_.Next();
    req.predicates = predicates;
    req.duration_ms = duration;
    env.promise_request = std::move(req);

    Result<Envelope> reply = CallShard(shard, env);
    if (!reply.ok()) {
      reject = "shard " + std::to_string(shard) +
               " unreachable: " + reply.status().ToString();
      break;
    }
    if (!reply->promise_response) {
      reject = "shard " + std::to_string(shard) + " sent no promise-response";
      break;
    }
    const PromiseResponseHeader& resp = *reply->promise_response;
    if (resp.result != PromiseResultCode::kAccepted) {
      reject = "shard " + std::to_string(shard) + ": " +
               (resp.reason.empty() ? "rejected" : resp.reason);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      worlds_[activity.value()].grants[shard].push_back(resp.promise_id);
    }
    // Durable grant record BEFORE the completed vote: compensation
    // always knows the ids it must release.
    logged = AppendRecord("fg|grant|" + std::to_string(activity.value()) +
                              "|" + std::to_string(shard) + "|" +
                              PromiseIdListText({resp.promise_id}),
                          /*durable=*/true);
    if (!logged.ok()) {
      infra = logged;
      break;
    }
    if (CrashAt("fedgrant-post-subgrant")) {
      return Status::Unavailable("router crashed at fedgrant-post-subgrant");
    }
    BusinessActivityParticipant* agent = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      agent = worlds_[activity.value()].agents[shard].get();
    }
    Status completed = agent->SignalCompleted(activity);
    if (!completed.ok()) {
      reject = "shard " + std::to_string(shard) +
               " completion signal: " + completed.ToString();
      break;
    }
  }

  if (!infra.ok()) {
    (void)coordinator_.CancelActivity(activity);
    NoteResolved(activity);
    if (span) span->set_status("infra-error");
    return infra;
  }

  RoutedGrant out;
  out.federated = true;
  out.activity = activity.value();
  if (reject.empty()) {
    Result<ActivityOutcome> closed = coordinator_.CloseActivity(activity);
    if (!closed.ok() &&
        closed.status().code() != StatusCode::kUnavailable) {
      if (span) span->set_status("close-failed");
      return closed.status();
    }
    // kUnavailable = decision durable, some acks pending: the grant
    // stands; ReDriveUnresolved finishes the fan-out later.
    out.granted = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.promises = worlds_[activity.value()].grants;
    }
    NoteResolved(activity);
    ShardMetrics::Get().federated_grants->Increment();
    if (span) span->set_status("granted");
    return out;
  }
  // A shard said no (or went silent): cancel. Completed agents
  // compensate (releasing their sub-grants); never-completed ones get
  // cancel, which releases any journaled-but-unvoted grant.
  (void)coordinator_.CancelActivity(activity);
  NoteResolved(activity);
  out.granted = false;
  out.reject_reason = reject;
  ShardMetrics::Get().federated_rejects->Increment();
  if (span) span->set_status("rejected");
  return out;
}

size_t FederatedGrantCoordinator::ReDriveUnresolved(int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    std::vector<ActivityId> open = coordinator_.UnresolvedActivities();
    if (open.empty()) break;
    for (ActivityId activity : open) {
      (void)coordinator_.ReDrive(activity);
      NoteResolved(activity);
    }
  }
  return coordinator_.UnresolvedActivities().size();
}

FederatedGrantCoordinator::OutcomeTally FederatedGrantCoordinator::tally()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return tally_;
}

Result<FederatedGrantCoordinator::RecoveryReport>
FederatedGrantCoordinator::Recover() {
  if (options_.log == nullptr || options_.log_path.empty()) {
    return Status::FailedPrecondition(
        "recovery needs ShardRouterOptions.log + log_path");
  }
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "fedgrant-recover");
  RecoveryReport report;
  LogScanStats scan_stats;
  PROMISES_ASSIGN_OR_RETURN(
      std::vector<LogRecord> records,
      OperationLog::ReadForRecovery(options_.log_path, &scan_stats));

  struct Intent {
    uint64_t msgid = 0;
    DurationMs duration = 0;
    std::string predicates;
    bool granted = false;
  };
  struct Rec {
    std::map<int, Intent> intents;
    std::map<int, std::vector<PromiseId>> grants;
    bool resolved = false;
  };
  std::map<uint64_t, Rec> recs;
  for (const LogRecord& record : records) {
    std::vector<std::string> f = Split(record.payload, '|');
    if (f.size() < 3 || f[0] != "fg") continue;
    uint64_t aid = 0;
    if (!ParseU64Field(f[2], &aid)) continue;
    if (f[1] == "intent" && f.size() >= 7) {
      uint64_t shard = 0, msgid = 0, duration = 0;
      if (!ParseU64Field(f[3], &shard) || !ParseU64Field(f[4], &msgid) ||
          !ParseU64Field(f[5], &duration)) {
        continue;
      }
      Intent& intent = recs[aid].intents[static_cast<int>(shard)];
      intent.msgid = msgid;
      intent.duration = static_cast<DurationMs>(duration);
      // Predicate text may itself contain '|' (the OR operator):
      // rejoin everything after the fixed fields.
      intent.predicates =
          Join(std::vector<std::string>(f.begin() + 6, f.end()), "|");
    } else if (f[1] == "grant" && f.size() == 5) {
      uint64_t shard = 0;
      if (!ParseU64Field(f[3], &shard)) continue;
      Rec& rec = recs[aid];
      rec.intents[static_cast<int>(shard)].granted = true;
      std::vector<PromiseId>& ids = rec.grants[static_cast<int>(shard)];
      ids.clear();
      for (const std::string& id_text : Split(f[4], ';')) {
        uint64_t value = 0;
        if (ParseU64Field(id_text, &value)) ids.push_back(PromiseId(value));
      }
    } else if (f[1] == "resolved") {
      recs[aid].resolved = true;
    }
  }

  // Rebuild the conversation worlds for unresolved activities so the
  // coming decision-log replay can reach their agents. Endpoints are
  // deterministic, so the twin's agents answer for the corpse's.
  std::vector<std::pair<uint64_t, int>> rebuilt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [aid, rec] : recs) {
      if (rec.resolved) continue;
      World& world = worlds_[aid];
      world.grants = rec.grants;
      for (const auto& [shard, intent] : rec.intents) {
        (void)intent;
        world.agents[shard] = BuildAgent(aid, shard);
        rebuilt.emplace_back(aid, shard);
      }
      ++report.worlds_rebuilt;
    }
  }
  for (const auto& [aid, shard] : rebuilt) {
    BusinessActivityParticipant* agent = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      agent = worlds_[aid].agents[shard].get();
    }
    PROMISES_RETURN_IF_ERROR(RecoverParticipant(agent, options_.log_path));
  }

  // Probe dangling intents (journaled, no grant record) with the
  // corpse's exact envelope: the shard's dedup table replays the
  // cached reply if the sub-grant landed, or executes it fresh —
  // either way the twin now holds the promise and releases it, since
  // an undecided activity is presumed aborted.
  for (const auto& [aid, rec] : recs) {
    if (rec.resolved) continue;
    for (const auto& [shard, intent] : rec.intents) {
      if (intent.granted) continue;
      ++report.intents_probed;
      ShardMetrics::Get().intent_probes->Increment();
      Result<std::vector<Predicate>> predicates =
          ParsePredicateList(intent.predicates);
      if (!predicates.ok()) continue;
      Envelope env;
      env.message_id = MessageId(intent.msgid);
      env.from = options_.name;
      env.to = options_.topology.endpoint(shard);
      RouteHeader route;
      route.shard = shard;
      route.topology_version = options_.topology.version();
      env.route = route;
      PromiseRequestHeader req;
      req.request_id = request_ids_.Next();
      req.predicates = std::move(*predicates);
      req.duration_ms = intent.duration;
      env.promise_request = std::move(req);
      Result<Envelope> reply = CallShard(shard, env);
      if (!reply.ok() || !reply->promise_response) continue;
      if (reply->promise_response->result != PromiseResultCode::kAccepted) {
        continue;  // Never landed and cannot land now: nothing to undo.
      }
      Envelope release_env;
      release_env.message_id = options_.control->NextMessageId();
      release_env.from = options_.name;
      release_env.to = options_.topology.endpoint(shard);
      release_env.route = route;
      ReleaseHeader release;
      release.promises = {reply->promise_response->promise_id};
      release_env.release = std::move(release);
      if (CallShard(shard, release_env).ok()) {
        ++report.orphan_releases;
        ShardMetrics::Get().orphan_releases->Increment();
      }
    }
  }

  // Replay the WS-BA decision log: durable decisions re-driven,
  // undecided activities presumed aborted — compensations flow
  // through the rebuilt agents and release journaled sub-grants.
  PROMISES_ASSIGN_OR_RETURN(report.wsba,
                            RecoverCoordinator(&coordinator_,
                                               options_.log_path));
  report.complete = report.wsba.complete;

  // Tear down worlds whose activities are now resolved.
  std::vector<uint64_t> alive;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [aid, world] : worlds_) alive.push_back(aid);
  }
  for (uint64_t aid : alive) NoteResolved(ActivityId(aid));
  return report;
}

// --------------------------------------------------------------------
// ShardRouter

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)) {
  if (options_.control != nullptr) {
    federated_ = std::make_unique<FederatedGrantCoordinator>(options_);
  }
}

Envelope ShardRouter::RoutedEnvelope(int shard) const {
  Envelope env;
  env.message_id = options_.control->NextMessageId();
  env.from = options_.name;
  env.to = options_.topology.endpoint(shard);
  RouteHeader route;
  route.shard = shard;
  route.topology_version = options_.topology.version();
  env.route = route;
  return env;
}

Result<Envelope> ShardRouter::CallShard(int shard, const Envelope& envelope) {
  if (shard < 0 || shard >= static_cast<int>(options_.channels.size())) {
    return Status::InvalidArgument("no channel for shard " +
                                   std::to_string(shard));
  }
  Rng rng(options_.retry_seed * 7919 +
          call_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  return CallWithRetry(options_.retry, &rng, [&]() -> Result<Envelope> {
    return options_.channels[shard](envelope);
  });
}

Result<RoutedGrant> ShardRouter::Request(
    const std::vector<Predicate>& predicates, DurationMs duration_ms) {
  if (options_.control == nullptr || federated_ == nullptr) {
    return Status::FailedPrecondition("router needs a control transport");
  }
  if (federated_->crashed()) {
    return Status::Unavailable("shard router crashed");
  }
  if (predicates.empty()) {
    return Status::InvalidArgument("empty predicate set");
  }
  std::map<int, std::vector<Predicate>> by_shard;
  for (const Predicate& p : predicates) {
    PROMISES_ASSIGN_OR_RETURN(int shard,
                              options_.topology.ShardOf(p.resource_class()));
    by_shard[shard].push_back(p);
  }
  DurationMs duration =
      duration_ms > 0 ? duration_ms : options_.default_duration_ms;

  if (by_shard.size() > 1) {
    PROMISES_ASSIGN_OR_RETURN(RoutedGrant grant,
                              federated_->Grant(by_shard, duration));
    std::lock_guard<std::mutex> lock(mu_);
    if (grant.granted) {
      ++stats_.federated_grants;
    } else {
      ++stats_.rejects;
    }
    return grant;
  }

  // Fast path: one shard, one routed envelope, zero coordination.
  std::optional<ScopedSpan> span;
  BeginOpSpan(span, "shard-fast-grant");
  int shard = by_shard.begin()->first;
  Envelope env = RoutedEnvelope(shard);
  PromiseRequestHeader req;
  req.request_id = request_ids_.Next();
  req.predicates = std::move(by_shard.begin()->second);
  req.duration_ms = duration;
  env.promise_request = std::move(req);
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, CallShard(shard, env));
  if (!reply.promise_response) {
    return Status::Internal("shard sent no promise-response");
  }
  const PromiseResponseHeader& resp = *reply.promise_response;
  RoutedGrant out;
  if (resp.result == PromiseResultCode::kAccepted) {
    out.granted = true;
    out.promises[shard].push_back(resp.promise_id);
    ShardMetrics::Get().fast_path_grants->Increment();
    if (span) span->set_status("granted");
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.fast_path_grants;
  } else {
    out.reject_reason = resp.reason.empty() ? "rejected" : resp.reason;
    if (span) span->set_status("rejected");
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejects;
  }
  return out;
}

Status ShardRouter::Release(const RoutedGrant& grant) {
  Status worst = Status::OK();
  for (const auto& [shard, ids] : grant.promises) {
    if (ids.empty()) continue;
    Envelope env = RoutedEnvelope(shard);
    ReleaseHeader release;
    release.promises = ids;
    env.release = std::move(release);
    Result<Envelope> reply = CallShard(shard, env);
    if (!reply.ok()) worst = reply.status();
  }
  return worst;
}

Result<ActionResultBody> ShardRouter::Act(
    int shard, const ActionBody& action,
    const std::vector<PromiseId>& environment, bool release_after) {
  if (shard < 0 || shard >= options_.topology.num_shards()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of topology range");
  }
  Envelope env = RoutedEnvelope(shard);
  env.action = action;
  if (!environment.empty()) {
    EnvironmentHeader header;
    for (PromiseId id : environment) {
      header.entries.push_back({id, release_after});
    }
    env.environment = std::move(header);
  }
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, CallShard(shard, env));
  if (!reply.action_result) {
    return Status::Internal("shard sent no action-result");
  }
  return *reply.action_result;
}

ShardRouter::Stats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace promises
