// Event-driven workflow engine (the paper's GAT engine, [5]; §10:
// "In future work, we will implement support for Promise interactions
// in several service-provision frameworks, including our own GAT
// engine").
//
// Business processes like Figure 1's ordering flow are long-running
// multi-step activities. The engine runs workflow instances as chains
// of events: each event executes one step, which decides what happens
// next (advance, jump, retry, complete, fail). Instances interleave on
// the engine's event queue — the property that makes promise-based
// isolation necessary in the first place: between two steps of one
// instance, arbitrary steps of others run.
//
// Failure handling follows the saga style the paper's consistency work
// presumes: steps register compensations (e.g. "release the promise",
// "refund the payment"); when an instance fails, its compensations run
// in reverse order.

#ifndef PROMISES_WORKFLOW_ENGINE_H_
#define PROMISES_WORKFLOW_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "resource/value.h"

namespace promises {

class WorkflowContext;

/// What a step tells the engine to do next.
class StepResult {
 public:
  enum class Kind { kNext, kGoto, kComplete, kFail, kRetry, kWait };

  /// Advance to the step declared after this one.
  static StepResult Next() { return StepResult(Kind::kNext); }
  /// Jump to the named step.
  static StepResult Goto(std::string step) {
    StepResult r(Kind::kGoto);
    r.target_ = std::move(step);
    return r;
  }
  /// Instance finished successfully.
  static StepResult Complete() { return StepResult(Kind::kComplete); }
  /// Instance failed; compensations run.
  static StepResult Fail(std::string error) {
    StepResult r(Kind::kFail);
    r.error_ = std::move(error);
    return r;
  }
  /// Re-execute this step (bounded by the step's retry budget; budget
  /// exhaustion converts into failure).
  static StepResult Retry(std::string reason) {
    StepResult r(Kind::kRetry);
    r.error_ = std::move(reason);
    return r;
  }
  /// Park the instance until an external event named `event` is posted
  /// (PostEvent) — the GAT engine's event-driven core. `deadline_ms`
  /// > 0 bounds the wait: if AdvanceTime passes the deadline first,
  /// the instance resumes at this step with the context variable
  /// "timeout" set to true instead of the event payload.
  static StepResult WaitFor(std::string event, DurationMs deadline_ms = 0) {
    StepResult r(Kind::kWait);
    r.target_ = std::move(event);
    r.deadline_ms_ = deadline_ms;
    return r;
  }

  Kind kind() const { return kind_; }
  const std::string& target() const { return target_; }
  const std::string& error() const { return error_; }
  DurationMs deadline_ms() const { return deadline_ms_; }

 private:
  explicit StepResult(Kind kind) : kind_(kind) {}
  Kind kind_;
  std::string target_;
  std::string error_;
  DurationMs deadline_ms_ = 0;
};

using StepFn = std::function<StepResult(WorkflowContext*)>;

/// Mutable state of one running instance, visible to its steps.
class WorkflowContext {
 public:
  /// Free-form variables shared across the instance's steps.
  std::map<std::string, Value>& vars() { return vars_; }
  const std::map<std::string, Value>& vars() const { return vars_; }

  /// Registers an undo action for saga-style failure handling; runs
  /// (reverse order) only if the instance later fails.
  void PushCompensation(std::string label, std::function<void()> fn) {
    compensations_.push_back({std::move(label), std::move(fn)});
  }

  /// 0 on the first execution of the current step, 1 on its first
  /// retry, and so on.
  int attempt() const { return attempt_; }
  uint64_t instance_id() const { return instance_id_; }

 private:
  friend class WorkflowEngine;
  struct Compensation {
    std::string label;
    std::function<void()> fn;
  };
  std::map<std::string, Value> vars_;
  std::vector<Compensation> compensations_;
  int attempt_ = 0;
  uint64_t instance_id_ = 0;
};

/// An ordered list of named steps with retry budgets.
class WorkflowDef {
 public:
  explicit WorkflowDef(std::string name) : name_(std::move(name)) {}

  /// Appends a step. `max_retries` bounds StepResult::Retry loops.
  WorkflowDef& Step(std::string step_name, StepFn fn, int max_retries = 0);

  const std::string& name() const { return name_; }
  size_t size() const { return steps_.size(); }

  /// Index of a named step.
  Result<size_t> IndexOf(const std::string& step_name) const;
  const std::string& StepName(size_t i) const { return steps_[i].name; }

 private:
  friend class WorkflowEngine;
  struct StepDef {
    std::string name;
    StepFn fn;
    int max_retries;
  };
  std::string name_;
  std::vector<StepDef> steps_;
};

enum class InstanceState { kRunning, kCompleted, kFailed };

/// Terminal report for one instance.
struct WorkflowReport {
  uint64_t instance_id = 0;
  InstanceState state = InstanceState::kRunning;
  std::string failed_step;
  std::string error;
  std::vector<std::string> trace;  ///< step names in execution order
  std::vector<std::string> compensation_trace;  ///< labels, reverse order
  std::map<std::string, Value> vars;
};

/// Runs instances by draining an event queue, one step per event.
class WorkflowEngine {
 public:
  WorkflowEngine() = default;
  WorkflowEngine(const WorkflowEngine&) = delete;
  WorkflowEngine& operator=(const WorkflowEngine&) = delete;

  /// Starts an instance of `def` (which must outlive the engine) and
  /// enqueues its first step. Fails on an empty definition.
  Result<uint64_t> Start(const WorkflowDef* def,
                         std::map<std::string, Value> initial_vars = {});

  /// Executes one pending step event; returns false when idle.
  bool PumpOne();

  /// Drains the queue (round-robin across instances).
  void RunToQuiescence();

  /// Terminal report, or nullptr while the instance still runs.
  const WorkflowReport* Report(uint64_t instance_id) const;

  /// Delivers an external event to a specific parked instance. The
  /// instance resumes at the step AFTER its WaitFor, with vars
  /// "event" = name and "event-payload" = payload. Fails when the
  /// instance is not waiting for `event`.
  Status PostEvent(uint64_t instance_id, const std::string& event,
                   Value payload = Value());

  /// Delivers an event to every instance parked on `event`; returns
  /// how many woke up.
  size_t Broadcast(const std::string& event, Value payload = Value());

  /// Advances the engine's virtual time; waits whose deadline passes
  /// resume with vars "timeout" = true.
  void AdvanceTime(DurationMs delta);

  size_t pending_events() const { return queue_.size(); }
  size_t running_instances() const;
  size_t waiting_instances() const;

 private:
  struct Instance {
    const WorkflowDef* def;
    WorkflowContext context;
    size_t step = 0;
    int attempt = 0;
    WorkflowReport report;
    // Wait state (meaningful while parked).
    bool waiting = false;
    std::string wait_event;
    Timestamp wait_deadline = kTimestampMax;
  };

  /// Unparks `instance` at the step after its wait.
  void Wake(Instance* instance);

  void Finish(Instance* instance, InstanceState state,
              const std::string& failed_step, const std::string& error);

  uint64_t next_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Instance>> instances_;
  std::deque<uint64_t> queue_;  // instance ids with a pending step event
  std::map<uint64_t, WorkflowReport> finished_;
  Timestamp now_ = 0;  // virtual time for wait deadlines
};

}  // namespace promises

#endif  // PROMISES_WORKFLOW_ENGINE_H_
