#include "workflow/engine.h"

#include <algorithm>

namespace promises {

WorkflowDef& WorkflowDef::Step(std::string step_name, StepFn fn,
                               int max_retries) {
  steps_.push_back(StepDef{std::move(step_name), std::move(fn), max_retries});
  return *this;
}

Result<size_t> WorkflowDef::IndexOf(const std::string& step_name) const {
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].name == step_name) return i;
  }
  return Status::NotFound("workflow '" + name_ + "' has no step '" +
                          step_name + "'");
}

Result<uint64_t> WorkflowEngine::Start(
    const WorkflowDef* def, std::map<std::string, Value> initial_vars) {
  if (def == nullptr || def->size() == 0) {
    return Status::InvalidArgument("workflow definition is empty");
  }
  // Duplicate step names would make Goto ambiguous.
  for (size_t i = 0; i < def->size(); ++i) {
    for (size_t j = i + 1; j < def->size(); ++j) {
      if (def->StepName(i) == def->StepName(j)) {
        return Status::InvalidArgument("duplicate step name '" +
                                       def->StepName(i) + "'");
      }
    }
  }
  uint64_t id = next_id_++;
  auto instance = std::make_unique<Instance>();
  instance->def = def;
  instance->context.vars_ = std::move(initial_vars);
  instance->context.instance_id_ = id;
  instance->report.instance_id = id;
  instances_[id] = std::move(instance);
  queue_.push_back(id);
  return id;
}

void WorkflowEngine::Finish(Instance* instance, InstanceState state,
                            const std::string& failed_step,
                            const std::string& error) {
  instance->report.state = state;
  instance->report.failed_step = failed_step;
  instance->report.error = error;
  if (state == InstanceState::kFailed) {
    // Saga: run compensations newest-first.
    auto& comps = instance->context.compensations_;
    for (auto it = comps.rbegin(); it != comps.rend(); ++it) {
      instance->report.compensation_trace.push_back(it->label);
      it->fn();
    }
  }
  instance->report.vars = instance->context.vars_;
  uint64_t id = instance->report.instance_id;
  finished_[id] = std::move(instance->report);
  instances_.erase(id);
}

bool WorkflowEngine::PumpOne() {
  while (!queue_.empty()) {
    uint64_t id = queue_.front();
    queue_.pop_front();
    auto it = instances_.find(id);
    if (it == instances_.end()) continue;  // already finished
    Instance* instance = it->second.get();
    const WorkflowDef::StepDef& step = instance->def->steps_[instance->step];

    instance->report.trace.push_back(step.name);
    instance->context.attempt_ = instance->attempt;
    StepResult result = step.fn(&instance->context);

    switch (result.kind()) {
      case StepResult::Kind::kNext:
        instance->attempt = 0;
        if (instance->step + 1 >= instance->def->size()) {
          Finish(instance, InstanceState::kCompleted, "", "");
        } else {
          ++instance->step;
          queue_.push_back(id);
        }
        return true;
      case StepResult::Kind::kGoto: {
        Result<size_t> target = instance->def->IndexOf(result.target());
        if (!target.ok()) {
          Finish(instance, InstanceState::kFailed, step.name,
                 target.status().ToString());
          return true;
        }
        instance->attempt = 0;
        instance->step = *target;
        queue_.push_back(id);
        return true;
      }
      case StepResult::Kind::kComplete:
        Finish(instance, InstanceState::kCompleted, "", "");
        return true;
      case StepResult::Kind::kFail:
        Finish(instance, InstanceState::kFailed, step.name, result.error());
        return true;
      case StepResult::Kind::kRetry:
        if (instance->attempt >= step.max_retries) {
          Finish(instance, InstanceState::kFailed, step.name,
                 "retry budget exhausted: " + result.error());
        } else {
          ++instance->attempt;
          queue_.push_back(id);
        }
        return true;
      case StepResult::Kind::kWait:
        if (instance->step + 1 >= instance->def->size()) {
          Finish(instance, InstanceState::kFailed, step.name,
                 "WaitFor in the final step has nowhere to resume");
          return true;
        }
        instance->waiting = true;
        instance->wait_event = result.target();
        instance->wait_deadline = result.deadline_ms() > 0
                                      ? now_ + result.deadline_ms()
                                      : kTimestampMax;
        // Not requeued: PostEvent / AdvanceTime wakes it.
        return true;
    }
  }
  return false;
}

void WorkflowEngine::RunToQuiescence() {
  while (PumpOne()) {
  }
}

const WorkflowReport* WorkflowEngine::Report(uint64_t instance_id) const {
  auto it = finished_.find(instance_id);
  return it == finished_.end() ? nullptr : &it->second;
}

size_t WorkflowEngine::running_instances() const {
  return instances_.size();
}

size_t WorkflowEngine::waiting_instances() const {
  size_t n = 0;
  for (const auto& [id, instance] : instances_) {
    (void)id;
    if (instance->waiting) ++n;
  }
  return n;
}

void WorkflowEngine::Wake(Instance* instance) {
  instance->waiting = false;
  instance->wait_event.clear();
  instance->wait_deadline = kTimestampMax;
  instance->attempt = 0;
  ++instance->step;  // resume AFTER the waiting step
  queue_.push_back(instance->report.instance_id);
}

Status WorkflowEngine::PostEvent(uint64_t instance_id,
                                 const std::string& event, Value payload) {
  auto it = instances_.find(instance_id);
  if (it == instances_.end()) {
    return Status::NotFound("instance " + std::to_string(instance_id) +
                            " is not running");
  }
  Instance* instance = it->second.get();
  if (!instance->waiting || instance->wait_event != event) {
    return Status::FailedPrecondition(
        "instance " + std::to_string(instance_id) + " is not waiting for '" +
        event + "'");
  }
  instance->context.vars_["event"] = Value(event);
  instance->context.vars_["event-payload"] = std::move(payload);
  instance->context.vars_.erase("timeout");
  Wake(instance);
  return Status::OK();
}

size_t WorkflowEngine::Broadcast(const std::string& event, Value payload) {
  size_t woken = 0;
  for (auto& [id, instance] : instances_) {
    (void)id;
    if (instance->waiting && instance->wait_event == event) {
      instance->context.vars_["event"] = Value(event);
      instance->context.vars_["event-payload"] = payload;
      instance->context.vars_.erase("timeout");
      Wake(instance.get());
      ++woken;
    }
  }
  return woken;
}

void WorkflowEngine::AdvanceTime(DurationMs delta) {
  if (delta > 0) now_ += delta;
  for (auto& [id, instance] : instances_) {
    (void)id;
    if (instance->waiting && instance->wait_deadline <= now_) {
      instance->context.vars_["timeout"] = Value(true);
      instance->context.vars_.erase("event");
      instance->context.vars_.erase("event-payload");
      Wake(instance.get());
    }
  }
}

}  // namespace promises
