#include "contract/monitor.h"

namespace promises {

Status ConformanceMonitor::Observe(MessageDir dir,
                                   const std::string& message) {
  const Contract::Transition* chosen = nullptr;
  for (const Contract::Transition& t : contract_->TransitionsFrom(state_)) {
    if (t.dir != dir || t.message != message) continue;
    if (chosen != nullptr) {
      return Status::FailedPrecondition(
          "contract '" + contract_->name() + "' is ambiguous in state '" +
          state_ + "' for " + std::string(MessageDirToString(dir)) + message);
    }
    chosen = &t;
  }
  if (chosen == nullptr) {
    return Status::FailedPrecondition(
        "conformance violation: contract '" + contract_->name() +
        "' in state '" + state_ + "' does not allow " +
        std::string(MessageDirToString(dir)) + message);
  }
  state_ = chosen->to;
  trace_.push_back(std::string(MessageDirToString(dir)) + message);
  return Status::OK();
}

void ConformanceMonitor::Reset() {
  state_ = contract_->initial();
  trace_.clear();
}

Status ConformanceMonitor::CheckTermination(
    const ConformanceMonitor& a, const ConformanceMonitor& b,
    const std::set<std::pair<std::string, std::string>>&
        consistent_outcomes) {
  if (!a.AtTerminal()) {
    return Status::FailedPrecondition("participant '" +
                                      a.contract_->name() +
                                      "' has not terminated (state '" +
                                      a.state_ + "')");
  }
  if (!b.AtTerminal()) {
    return Status::FailedPrecondition("participant '" +
                                      b.contract_->name() +
                                      "' has not terminated (state '" +
                                      b.state_ + "')");
  }
  auto pair = std::make_pair(a.outcome(), b.outcome());
  if (!consistent_outcomes.count(pair)) {
    return Status::Violated("inconsistent termination: ('" + pair.first +
                            "', '" + pair.second + "')");
  }
  return Status::OK();
}

}  // namespace promises
