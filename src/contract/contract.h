// Service behavioural contracts (§1, the authors' earlier consistency
// work [4]).
//
// "The key to this work was establishing a relationship between
// internal service states, messages and application-level protocols.
// This insight let us transform the problem of ensuring consistent
// outcomes into a protocol problem... We then developed tools that
// could test whether the contracts defining the behaviour of two
// services were compatible and that their interactions would never
// lead to an inconsistent outcome."
//
// A Contract is a finite state machine whose transitions send or
// receive named messages. Terminal states carry an outcome label
// ("paid", "cancelled", ...). Two contracts interact by synchronous
// message exchange: one side's send pairs with the other side's
// receive of the same message.

#ifndef PROMISES_CONTRACT_CONTRACT_H_
#define PROMISES_CONTRACT_CONTRACT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace promises {

enum class MessageDir { kSend, kReceive };

std::string_view MessageDirToString(MessageDir d);

/// One behavioural contract (communicating FSM).
class Contract {
 public:
  explicit Contract(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a state. The first state added is the initial state.
  /// Terminal states carry a non-empty `outcome` label and must have
  /// no outgoing transitions (checked by Validate).
  Status AddState(const std::string& state, std::string outcome = "");

  /// Adds a transition: in `from`, the service sends/receives
  /// `message` and moves to `to`.
  Status AddTransition(const std::string& from, MessageDir dir,
                       const std::string& message, const std::string& to);

  /// Structural checks: nonempty, all endpoints exist, terminals have
  /// no outgoing transitions, every state reachable from the initial.
  Status Validate() const;

  const std::string& initial() const { return initial_; }
  bool HasState(const std::string& state) const {
    return states_.count(state) > 0;
  }
  /// Outcome label, empty for non-terminal states.
  const std::string& OutcomeOf(const std::string& state) const;
  bool IsTerminal(const std::string& state) const {
    return !OutcomeOf(state).empty();
  }

  struct Transition {
    MessageDir dir;
    std::string message;
    std::string to;
  };
  /// Outgoing transitions of `state` (empty for unknown states).
  const std::vector<Transition>& TransitionsFrom(
      const std::string& state) const;

  /// All states in insertion order.
  const std::vector<std::string>& states() const { return order_; }

 private:
  std::string name_;
  std::string initial_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> states_;  // state -> outcome ("" = mid)
  std::map<std::string, std::vector<Transition>> transitions_;
};

}  // namespace promises

#endif  // PROMISES_CONTRACT_CONTRACT_H_
