// Runtime conformance monitoring (§1 / [4]).
//
// "The same message-based definitions of correctness and consistency
// were also used as the basis for a protocol for dynamically checking
// for consistency failures at the termination of service-based
// applications, without requiring an overall coordinator or a global
// view of the entire application."
//
// A ConformanceMonitor tracks one participant's contract state as
// messages are observed, rejecting events the contract does not allow;
// at termination, participants compare outcome labels pairwise.

#ifndef PROMISES_CONTRACT_MONITOR_H_
#define PROMISES_CONTRACT_MONITOR_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "contract/contract.h"

namespace promises {

class ConformanceMonitor {
 public:
  /// `contract` must outlive the monitor and must be deterministic in
  /// (direction, message) per state — checked on first use of an
  /// ambiguous pair.
  explicit ConformanceMonitor(const Contract* contract)
      : contract_(contract), state_(contract->initial()) {}

  /// Observes one message event for this participant. Fails with
  /// kFailedPrecondition when the contract does not allow it (a
  /// conformance violation); the state is left unchanged so the caller
  /// can decide how to recover.
  Status Observe(MessageDir dir, const std::string& message);

  const std::string& state() const { return state_; }
  bool AtTerminal() const { return contract_->IsTerminal(state_); }
  /// Outcome label ("" while non-terminal).
  const std::string& outcome() const { return contract_->OutcomeOf(state_); }
  const std::vector<std::string>& trace() const { return trace_; }

  /// Resets to the contract's initial state (new conversation).
  void Reset();

  /// The paper's decentralized termination check, pairwise form: both
  /// participants must be terminal and their outcome pair must be in
  /// the agreed consistent set.
  static Status CheckTermination(
      const ConformanceMonitor& a, const ConformanceMonitor& b,
      const std::set<std::pair<std::string, std::string>>&
          consistent_outcomes);

 private:
  const Contract* contract_;
  std::string state_;
  std::vector<std::string> trace_;  // "!msg" / "?msg" events
};

}  // namespace promises

#endif  // PROMISES_CONTRACT_MONITOR_H_
