#include "contract/monitored_endpoint.h"

namespace promises {

std::string ClassifyEnvelope(const Envelope& envelope) {
  // Precedence: promise headers identify the exchange step; plain
  // action/result envelopes classify by their body.
  if (envelope.promise_request) return "promise-request";
  if (envelope.promise_response) {
    return envelope.promise_response->result == PromiseResultCode::kAccepted
               ? "promise-accepted"
               : "promise-rejected";
  }
  if (envelope.release) return "release";
  if (envelope.action) return "action";
  if (envelope.action_result) {
    return envelope.action_result->ok ? "action-result" : "action-failed";
  }
  return "empty";
}

EndpointHandler MonitoredEndpoint::Handler() {
  return [this](const Envelope& request) -> Result<Envelope> {
    std::string inbound = ClassifyEnvelope(request);
    Status in_ok = monitor_.Observe(MessageDir::kReceive, inbound);
    if (!in_ok.ok()) {
      ++violations_;
      if (on_violation_) on_violation_(in_ok.ToString());
      if (enforce_) return in_ok;
    }
    Result<Envelope> reply = inner_(request);
    if (!reply.ok()) return reply;
    std::string outbound = ClassifyEnvelope(*reply);
    Status out_ok = monitor_.Observe(MessageDir::kSend, outbound);
    if (!out_ok.ok()) {
      ++violations_;
      if (on_violation_) on_violation_(out_ok.ToString());
      // Replies are never suppressed: the exchange already happened.
    }
    return reply;
  };
}

}  // namespace promises
