#include "contract/compatibility.h"

#include <deque>

namespace promises {

std::string CompatibilityIssue::ToString() const {
  std::string kind_name;
  switch (kind) {
    case Kind::kUnspecifiedReception:
      kind_name = "unspecified-reception";
      break;
    case Kind::kDeadlock:
      kind_name = "deadlock";
      break;
    case Kind::kInconsistentOutcome:
      kind_name = "inconsistent-outcome";
      break;
  }
  return kind_name + " at (" + state_a + ", " + state_b + "): " + detail;
}

Result<CompatibilityReport> CheckCompatibility(
    const Contract& a, const Contract& b,
    const std::set<std::pair<std::string, std::string>>&
        consistent_outcomes) {
  PROMISES_RETURN_IF_ERROR(a.Validate());
  PROMISES_RETURN_IF_ERROR(b.Validate());

  CompatibilityReport report;
  using ProductState = std::pair<std::string, std::string>;
  std::set<ProductState> seen;
  std::deque<ProductState> frontier;
  ProductState start{a.initial(), b.initial()};
  seen.insert(start);
  frontier.push_back(start);

  while (!frontier.empty()) {
    auto [sa, sb] = frontier.front();
    frontier.pop_front();
    ++report.explored_states;

    bool a_terminal = a.IsTerminal(sa);
    bool b_terminal = b.IsTerminal(sb);
    if (a_terminal && b_terminal) {
      auto pair = std::make_pair(a.OutcomeOf(sa), b.OutcomeOf(sb));
      report.final_outcomes.insert(pair);
      if (!consistent_outcomes.count(pair)) {
        report.issues.push_back(CompatibilityIssue{
            CompatibilityIssue::Kind::kInconsistentOutcome, sa, sb,
            "outcomes ('" + pair.first + "', '" + pair.second +
                "') are not consistent"});
      }
      continue;
    }

    // Joint steps: a sends m, b receives m — and symmetrically.
    std::vector<ProductState> successors;
    auto try_pair = [&](const Contract& sender, const std::string& s_state,
                        const Contract& receiver,
                        const std::string& r_state, bool a_is_sender) {
      for (const Contract::Transition& send :
           sender.TransitionsFrom(s_state)) {
        if (send.dir != MessageDir::kSend) continue;
        bool matched = false;
        for (const Contract::Transition& recv :
             receiver.TransitionsFrom(r_state)) {
          if (recv.dir == MessageDir::kReceive &&
              recv.message == send.message) {
            matched = true;
            successors.push_back(a_is_sender
                                     ? ProductState{send.to, recv.to}
                                     : ProductState{recv.to, send.to});
          }
        }
        if (!matched) {
          report.issues.push_back(CompatibilityIssue{
              CompatibilityIssue::Kind::kUnspecifiedReception, sa, sb,
              (a_is_sender ? a.name() : b.name()) + " sends '" +
                  send.message + "' which " +
                  (a_is_sender ? b.name() : a.name()) +
                  " cannot receive here"});
        }
      }
    };
    try_pair(a, sa, b, sb, /*a_is_sender=*/true);
    try_pair(b, sb, a, sa, /*a_is_sender=*/false);

    if (successors.empty()) {
      // No joint step and not both terminal: somebody is stuck.
      report.issues.push_back(CompatibilityIssue{
          CompatibilityIssue::Kind::kDeadlock, sa, sb,
          a_terminal ? (b.name() + " cannot proceed and is not terminal")
          : b_terminal
              ? (a.name() + " cannot proceed and is not terminal")
              : "no matching send/receive pair; both sides wait"});
    }
    for (const ProductState& next : successors) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }

  report.compatible = report.issues.empty();
  return report;
}

}  // namespace promises
