// Contract compatibility checking (§1 / [4]).
//
// Explores the synchronous product of two contracts. In a product
// state (a, b):
//   * a joint step exists for message m when one side sends m and the
//     other receives m;
//   * an UNSPECIFIED RECEPTION is a send with no matching receive on
//     the peer — the message would arrive in a state that cannot
//     handle it (the merchant-gets-payment-without-stock class of bug
//     the paper's methodology forces programmers to code for);
//   * a DEADLOCK is a reachable non-terminal product state with no
//     joint step (each side waits for the other);
//   * an INCONSISTENT OUTCOME is a reachable terminal pair whose
//     outcome labels are not in the caller-approved set — e.g.
//     (customer: "paid", merchant: "cancelled").
//
// The interaction is compatible iff none of these occur; the report
// lists each violation with the product state where it happens.

#ifndef PROMISES_CONTRACT_COMPATIBILITY_H_
#define PROMISES_CONTRACT_COMPATIBILITY_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "contract/contract.h"

namespace promises {

struct CompatibilityIssue {
  enum class Kind { kUnspecifiedReception, kDeadlock, kInconsistentOutcome };
  Kind kind;
  std::string state_a;
  std::string state_b;
  std::string detail;

  std::string ToString() const;
};

struct CompatibilityReport {
  bool compatible = false;
  std::vector<CompatibilityIssue> issues;
  /// Reachable terminal outcome pairs (a-outcome, b-outcome).
  std::set<std::pair<std::string, std::string>> final_outcomes;
  size_t explored_states = 0;
};

/// Checks `a` against `b`. `consistent_outcomes` lists the terminal
/// outcome pairs considered consistent; every other reachable terminal
/// pair is reported.
Result<CompatibilityReport> CheckCompatibility(
    const Contract& a, const Contract& b,
    const std::set<std::pair<std::string, std::string>>&
        consistent_outcomes);

}  // namespace promises

#endif  // PROMISES_CONTRACT_COMPATIBILITY_H_
