#include "contract/contract.h"

namespace promises {

std::string_view MessageDirToString(MessageDir d) {
  return d == MessageDir::kSend ? "!" : "?";
}

Status Contract::AddState(const std::string& state, std::string outcome) {
  if (states_.count(state)) {
    return Status::AlreadyExists("state '" + state + "' exists in contract '" +
                                 name_ + "'");
  }
  if (initial_.empty()) initial_ = state;
  order_.push_back(state);
  states_[state] = std::move(outcome);
  return Status::OK();
}

Status Contract::AddTransition(const std::string& from, MessageDir dir,
                               const std::string& message,
                               const std::string& to) {
  if (!states_.count(from)) {
    return Status::NotFound("state '" + from + "' not in contract '" + name_ +
                            "'");
  }
  if (!states_.count(to)) {
    return Status::NotFound("state '" + to + "' not in contract '" + name_ +
                            "'");
  }
  transitions_[from].push_back(Transition{dir, message, to});
  return Status::OK();
}

Status Contract::Validate() const {
  if (states_.empty()) {
    return Status::FailedPrecondition("contract '" + name_ + "' is empty");
  }
  for (const auto& [state, outcome] : states_) {
    if (!outcome.empty() && !TransitionsFrom(state).empty()) {
      return Status::FailedPrecondition(
          "terminal state '" + state + "' of '" + name_ +
          "' has outgoing transitions");
    }
  }
  // Reachability sweep.
  std::set<std::string> seen{initial_};
  std::vector<std::string> stack{initial_};
  while (!stack.empty()) {
    std::string s = stack.back();
    stack.pop_back();
    for (const Transition& t : TransitionsFrom(s)) {
      if (seen.insert(t.to).second) stack.push_back(t.to);
    }
  }
  for (const auto& [state, outcome] : states_) {
    (void)outcome;
    if (!seen.count(state)) {
      return Status::FailedPrecondition("state '" + state + "' of '" + name_ +
                                        "' is unreachable");
    }
  }
  return Status::OK();
}

const std::string& Contract::OutcomeOf(const std::string& state) const {
  static const std::string kEmpty;
  auto it = states_.find(state);
  return it == states_.end() ? kEmpty : it->second;
}

const std::vector<Contract::Transition>& Contract::TransitionsFrom(
    const std::string& state) const {
  static const std::vector<Transition> kNone;
  auto it = transitions_.find(state);
  return it == transitions_.end() ? kNone : it->second;
}

}  // namespace promises
