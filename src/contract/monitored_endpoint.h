// Contract-monitored transport endpoints.
//
// Connects the [4]-style runtime conformance machinery to the live §6
// protocol: a MonitoredEndpoint wraps a transport handler and classifies
// each envelope into a contract message name, feeding the receive and
// the reply's send through a ConformanceMonitor. Non-conforming
// exchanges are surfaced through a violation callback (and optionally
// refused), giving the "dynamically checking for consistency failures"
// behaviour of the paper's earlier system on this library's own
// messages.

#ifndef PROMISES_CONTRACT_MONITORED_ENDPOINT_H_
#define PROMISES_CONTRACT_MONITORED_ENDPOINT_H_

#include <functional>
#include <string>

#include "contract/monitor.h"
#include "protocol/transport.h"

namespace promises {

/// Maps an envelope to a contract message name. The default
/// classification distinguishes the §6 header/body combinations:
///   "promise-request", "promise-accepted", "promise-rejected",
///   "release", "action", "action-result", "action-failed".
std::string ClassifyEnvelope(const Envelope& envelope);

/// Wraps `inner` so that every inbound envelope is checked as a
/// receive and every reply as a send against `contract`.
class MonitoredEndpoint {
 public:
  /// `on_violation` is called with a description each time an exchange
  /// departs from the contract. When `enforce` is true, non-conforming
  /// inbound messages are refused with kFailedPrecondition instead of
  /// being passed to `inner`.
  MonitoredEndpoint(const Contract* contract, EndpointHandler inner,
                    std::function<void(const std::string&)> on_violation,
                    bool enforce = false)
      : monitor_(contract),
        inner_(std::move(inner)),
        on_violation_(std::move(on_violation)),
        enforce_(enforce) {}

  /// The handler to register with the transport.
  EndpointHandler Handler();

  const ConformanceMonitor& monitor() const { return monitor_; }
  uint64_t violations() const { return violations_; }

 private:
  ConformanceMonitor monitor_;
  EndpointHandler inner_;
  std::function<void(const std::string&)> on_violation_;
  bool enforce_;
  uint64_t violations_ = 0;
};

}  // namespace promises

#endif  // PROMISES_CONTRACT_MONITORED_ENDPOINT_H_
