#include "service/client.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "predicate/parser.h"

namespace promises {

Envelope PromiseClient::NewEnvelope() {
  Envelope env;
  env.message_id = transport_->NextMessageId();
  env.from = name_;
  env.to = manager_;
  if (deadline_clock_ != nullptr && deadline_budget_ms_ > 0) {
    // Absolute deadline, stamped once per logical call: retries re-send
    // the identical envelope, so the server sees how long this client
    // will actually wait, not how long the latest attempt will.
    env.deadline = deadline_clock_->Now() + deadline_budget_ms_;
  }
  // Sampling decision for the whole logical call: the trace id rides
  // every retry of this envelope unchanged; each attempt gets a fresh
  // span id in Send.
  TraceContext ctx = Tracer::Global().StartTrace();
  if (ctx.sampled) env.trace = ctx;
  return env;
}

Result<Envelope> PromiseClient::Send(Envelope envelope) {
  static Counter* calls =
      MetricsRegistry::Global().GetCounter("promises_client_calls_total");
  static Counter* call_failures = MetricsRegistry::Global().GetCounter(
      "promises_client_call_failures_total");
  static Counter* breaker_fast_fails = MetricsRegistry::Global().GetCounter(
      "promises_client_breaker_fast_fails_total");
  calls->Increment();

  // Root span for the logical call: its span id was fixed by
  // NewEnvelope, so it is recorded manually at the end (ScopedSpan
  // would mint a new id). Attempt spans nest under it.
  const bool traced = envelope.trace && envelope.trace->sampled;
  const TraceContext root = traced ? *envelope.trace : TraceContext{};
  const int64_t call_start_us = traced ? TraceNowUs() : 0;

  // One attempt = breaker gate, then the wire. An OK reply carrying an
  // <overload> header is a shed and surfaces as its ShedStatus — a
  // retryable kResourceExhausted with the server's retry-after hint.
  // Only real attempt outcomes feed the breaker; its own fast-failures
  // do not (they would re-trip it forever).
  uint64_t wire_sends = 0;
  auto attempt = [&]() -> Result<Envelope> {
    // Fresh span per attempt: same trace id (the retries belong to one
    // call), fresh span id (each wire attempt is its own node in the
    // tree). The message id is untouched, so the manager's idempotency
    // table still sees one request.
    ScopedSpan attempt_span(root, "attempt");
    if (traced) envelope.trace = attempt_span.context();
    if (breaker_ != nullptr) {
      Status gate = breaker_->Admit();
      if (!gate.ok()) {
        // Terminal span: the breaker failed this attempt locally,
        // before the wire.
        attempt_span.set_status("breaker-fast-fail");
        breaker_fast_fails->Increment();
        return gate;
      }
    }
    if (++wire_sends > 1) {
      ++retries_;
      transport_->NoteRetry(manager_);
    }
    Result<Envelope> reply = transport_->Send(envelope);
    if (!reply.ok()) {
      attempt_span.set_status(StatusCodeToString(reply.status().code()));
      if (breaker_ != nullptr) breaker_->RecordFailure(reply.status());
      return reply;
    }
    Status shed = reply->ShedStatus();
    if (!shed.ok()) {
      // Terminal span: the server shed this attempt under overload.
      attempt_span.set_status("shed");
      if (breaker_ != nullptr) breaker_->RecordFailure(shed);
      return shed;
    }
    if (breaker_ != nullptr) breaker_->RecordSuccess();
    return reply;
  };
  Result<Envelope> out = [&] {
    if (!retry_policy_) return attempt();
    // Re-send the IDENTICAL envelope: the manager's idempotency table
    // is keyed by (from, message id), so a fresh id would turn a retry
    // into a second request.
    return CallWithRetry(*retry_policy_, &rng_, attempt);
  }();
  if (!out.ok()) call_failures->Increment();
  if (traced) {
    Span span;
    span.trace_hi = root.trace_hi;
    span.trace_lo = root.trace_lo;
    span.span_id = root.span_id;
    span.parent_span_id = root.parent_span_id;
    span.name = "client-call";
    span.status =
        out.ok() ? "ok" : std::string(StatusCodeToString(out.status().code()));
    span.start_us = call_start_us;
    span.end_us = TraceNowUs();
    RecordSpan(std::move(span));
  }
  return out;
}

Result<ClientPromise> PromiseClient::Request(
    const std::string& predicates, DurationMs duration_ms,
    std::vector<PromiseId> release_on_grant) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<Predicate> parsed,
                            ParsePredicateList(predicates));
  return Request(std::move(parsed), duration_ms, std::move(release_on_grant));
}

Result<ClientPromise> PromiseClient::Request(
    std::vector<Predicate> predicates, DurationMs duration_ms,
    std::vector<PromiseId> release_on_grant) {
  Envelope env = NewEnvelope();
  PromiseRequestHeader req;
  req.request_id = request_ids_.Next();
  req.predicates = std::move(predicates);
  req.duration_ms = duration_ms;
  req.release_on_grant = std::move(release_on_grant);
  RequestId sent_id = req.request_id;
  env.promise_request = std::move(req);

  PROMISES_ASSIGN_OR_RETURN(Envelope reply, Send(std::move(env)));
  if (!reply.promise_response) {
    return Status::Internal("manager sent no promise-response");
  }
  const PromiseResponseHeader& resp = *reply.promise_response;
  if (resp.correlation != sent_id) {
    return Status::Internal("promise-response correlation mismatch");
  }
  if (resp.result != PromiseResultCode::kAccepted) {
    return Status::FailedPrecondition("promise rejected: " + resp.reason);
  }
  return ClientPromise{resp.promise_id, resp.granted_duration_ms};
}

Result<PromiseClient::RequestOutcome> PromiseClient::TryRequest(
    const std::string& predicates, DurationMs duration_ms,
    std::vector<PromiseId> release_on_grant) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<Predicate> parsed,
                            ParsePredicateList(predicates));
  Envelope env = NewEnvelope();
  PromiseRequestHeader req;
  req.request_id = request_ids_.Next();
  req.predicates = std::move(parsed);
  req.duration_ms = duration_ms;
  req.release_on_grant = std::move(release_on_grant);
  env.promise_request = std::move(req);

  PROMISES_ASSIGN_OR_RETURN(Envelope reply, Send(std::move(env)));
  if (!reply.promise_response) {
    return Status::Internal("manager sent no promise-response");
  }
  const PromiseResponseHeader& resp = *reply.promise_response;
  RequestOutcome out;
  out.granted = resp.result == PromiseResultCode::kAccepted;
  if (out.granted) {
    out.promise = ClientPromise{resp.promise_id, resp.granted_duration_ms};
  } else {
    out.reject_reason = resp.reason;
    out.counter_offer = resp.counter_offer;
  }
  return out;
}

Result<PromiseClient::CounterAccepted> PromiseClient::RequestOrCounter(
    const std::string& predicates, DurationMs duration_ms) {
  PROMISES_ASSIGN_OR_RETURN(RequestOutcome first,
                            TryRequest(predicates, duration_ms));
  if (first.granted) {
    return CounterAccepted{first.promise, false, predicates};
  }
  if (first.counter_offer.empty()) {
    return Status::FailedPrecondition("promise rejected with no "
                                      "counter-offer: " +
                                      first.reject_reason);
  }
  PROMISES_ASSIGN_OR_RETURN(RequestOutcome second,
                            TryRequest(first.counter_offer, duration_ms));
  if (!second.granted) {
    // The offer lapsed (concurrent grant between the two requests).
    return Status::FailedPrecondition("counter-offer no longer grantable: " +
                                      second.reject_reason);
  }
  return CounterAccepted{second.promise, true, first.counter_offer};
}

Result<PromiseClient::Negotiated> PromiseClient::RequestNegotiated(
    const std::vector<std::string>& alternatives, DurationMs duration_ms) {
  if (alternatives.empty()) {
    return Status::InvalidArgument("no alternatives supplied");
  }
  std::string last_reason;
  for (size_t i = 0; i < alternatives.size(); ++i) {
    Result<ClientPromise> attempt = Request(alternatives[i], duration_ms);
    if (attempt.ok()) return Negotiated{*attempt, i};
    // Syntax and transport errors abort the negotiation; only promise
    // rejection moves on to the next alternative.
    if (attempt.status().code() != StatusCode::kFailedPrecondition) {
      return attempt.status();
    }
    last_reason = attempt.status().message();
  }
  return Status::FailedPrecondition(
      "no alternative grantable; last rejection: " + last_reason);
}

namespace {

PromiseClient::QueuedRequest DecodeQueued(const PromiseResponseHeader& resp) {
  PromiseClient::QueuedRequest out;
  switch (resp.result) {
    case PromiseResultCode::kAccepted:
      out.granted = true;
      out.promise = ClientPromise{resp.promise_id, resp.granted_duration_ms};
      break;
    case PromiseResultCode::kPending:
      out.pending = true;
      out.ticket = resp.pending_ticket;
      break;
    case PromiseResultCode::kRejected:
      out.reject_reason = resp.reason;
      break;
  }
  return out;
}

}  // namespace

Result<PromiseClient::QueuedRequest> PromiseClient::RequestQueued(
    const std::string& predicates, DurationMs duration_ms) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<Predicate> parsed,
                            ParsePredicateList(predicates));
  Envelope env = NewEnvelope();
  PromiseRequestHeader req;
  req.request_id = request_ids_.Next();
  req.predicates = std::move(parsed);
  req.duration_ms = duration_ms;
  req.queue_if_unavailable = true;
  env.promise_request = std::move(req);
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, Send(std::move(env)));
  if (!reply.promise_response) {
    return Status::Internal("manager sent no promise-response");
  }
  return DecodeQueued(*reply.promise_response);
}

Result<PromiseClient::QueuedRequest> PromiseClient::Poll(uint64_t ticket) {
  Envelope env = NewEnvelope();
  env.poll = PollHeader{ticket};
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, Send(std::move(env)));
  if (!reply.promise_response) {
    return Status::Internal("manager sent no promise-response");
  }
  return DecodeQueued(*reply.promise_response);
}

Status PromiseClient::Release(const std::vector<PromiseId>& ids) {
  Envelope env = NewEnvelope();
  env.release = ReleaseHeader{ids};
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, Send(std::move(env)));
  (void)reply;
  return Status::OK();
}

Result<ActionResultBody> PromiseClient::Act(const ActionBody& action,
                                            const std::vector<PromiseId>& env,
                                            bool release_after) {
  Envelope envelope = NewEnvelope();
  if (!env.empty()) {
    EnvironmentHeader header;
    for (PromiseId id : env) header.entries.push_back({id, release_after});
    envelope.environment = std::move(header);
  }
  envelope.action = action;
  PROMISES_ASSIGN_OR_RETURN(Envelope reply, Send(std::move(envelope)));
  if (!reply.action_result) {
    return Status::Internal("manager sent no action-result");
  }
  return *reply.action_result;
}

Result<PromiseClient::CombinedOutcome> PromiseClient::RequestAndAct(
    const std::string& predicates, DurationMs duration_ms,
    const ActionBody& action, bool release_after,
    const std::vector<EnvironmentHeader::Entry>& extra_env) {
  PROMISES_ASSIGN_OR_RETURN(std::vector<Predicate> parsed,
                            ParsePredicateList(predicates));
  Envelope env = NewEnvelope();
  PromiseRequestHeader req;
  req.request_id = request_ids_.Next();
  req.predicates = std::move(parsed);
  req.duration_ms = duration_ms;
  env.promise_request = std::move(req);

  EnvironmentHeader header;
  // Promise id 0 = "the promise granted by this envelope" (manager
  // convention for combined messages).
  header.entries.push_back({PromiseId(), release_after});
  for (const EnvironmentHeader::Entry& e : extra_env) {
    header.entries.push_back(e);
  }
  env.environment = std::move(header);
  env.action = action;

  PROMISES_ASSIGN_OR_RETURN(Envelope reply, Send(std::move(env)));
  if (!reply.promise_response) {
    return Status::Internal("manager sent no promise-response");
  }
  CombinedOutcome out;
  out.granted =
      reply.promise_response->result == PromiseResultCode::kAccepted;
  if (out.granted) {
    out.promise = ClientPromise{reply.promise_response->promise_id,
                                reply.promise_response->granted_duration_ms};
  } else {
    out.reject_reason = reply.promise_response->reason;
  }
  if (reply.action_result) out.action = *reply.action_result;
  return out;
}

}  // namespace promises
