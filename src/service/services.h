// Built-in application services (§7, §8).
//
// Each factory returns a ServiceFn to register with a PromiseManager.
// Services follow the paper's application model: they execute inside
// the manager's per-request ACID transaction, mutate state through the
// resource manager, and rely on the manager's post-action check to
// catch promise violations. Operations that consume promised resources
// receive the covering promise id in the "promise" parameter and go
// through the ActionContext helpers so the manager can resolve the
// concrete instance backing an abstract promise.

#ifndef PROMISES_SERVICE_SERVICES_H_
#define PROMISES_SERVICE_SERVICES_H_

#include "core/service_api.h"

namespace promises {

/// Merchant inventory over anonymous pools (§3.1, Figure 1).
///
/// Operations:
///   purchase  item(string), quantity(int)           -> shipped(int)
///   restock   item(string), quantity(int)           -> quantity(int)
///   check     item(string)                          -> quantity(int)
ServiceFn MakeInventoryService();

/// Bookings over named/property-viewed instances (§3.2, §3.3).
///
/// Operations:
///   book      class(string), promise(int), count(int, default 1)
///             -> booked(string: comma-joined instance ids)
///   peek      class(string), promise(int)           -> instance(string)
///   vacate    class(string), instance(string)       -> ok(bool)
ServiceFn MakeBookingService();

/// Bank accounts as anonymous numeric resources (§3.1).
///
/// Operations:
///   withdraw  account(string), amount(int)          -> balance-left(int)
///   deposit   account(string), amount(int)          -> ok(bool)
///   balance   account(string)                       -> balance(int)
ServiceFn MakeAccountService();

/// Next-day shipping (§7 second example). Consumes local shipping
/// capacity, or — when `delegated_class` is nonempty — forwards the
/// consumption upstream under the delegated promise (§5 Delegation).
///
/// Operations:
///   ship      promise(int), [class(string)], [quantity(int)]
///             -> shipped(bool)
ServiceFn MakeShippingService(std::string local_capacity_pool,
                              std::string delegated_class = "");

/// Pulls the mandatory "promise" int parameter as a PromiseId.
Result<PromiseId> PromiseParam(const std::map<std::string, Value>& params);

/// Pulls a mandatory string/int parameter.
Result<std::string> StringParam(const std::map<std::string, Value>& params,
                                const std::string& name);
Result<int64_t> IntParam(const std::map<std::string, Value>& params,
                         const std::string& name);
/// Pulls an optional int parameter with a default.
int64_t IntParamOr(const std::map<std::string, Value>& params,
                   const std::string& name, int64_t fallback);

}  // namespace promises

#endif  // PROMISES_SERVICE_SERVICES_H_
