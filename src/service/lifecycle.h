// Restart survivability: a supervised server lifecycle (DESIGN.md §12).
//
// Every crash test before this module replayed a dead world offline —
// build state, kill the process in imagination, replay the log into a
// twin. Nothing ever killed a *serving* node and measured what its
// clients experience while it recovers. ServerLifecycle closes that
// gap: it owns the full single-node stack (operation log, checkpoint
// writer, promise manager, WS-BA coordinator, TCP endpoint server) and
// can tear it down two ways —
//
//   * KillHard(): simulated SIGKILL. Sockets are abandoned, both logs
//     are Abandon()ed mid-group (queued-but-unflushed records die,
//     exactly what a crash loses), the coordinator goes silent without
//     unregistering. Clients see connection errors and time-outs.
//   * StopGraceful(): drain. The listener closes, in-flight and queued
//     requests finish (new frames shed with reason "draining"), a
//     final checkpoint is cut, both logs stop cleanly.
//
// — and then bring the same endpoint back with Start(): fresh world,
// RecoverAll (checkpoint + oplog tail + WS-BA decision log, in that
// order), logs reopened, server rebound to the same port. Waiting
// clients ride the blackout on retry + idempotency: a re-sent envelope
// that was executed before the kill replays its cached reply from the
// recovered dedup table, so effects land exactly once.
//
// The reconnect thundering-herd is tamed from both sides: the
// admission controller's warm-up ramp (AdmissionOptions::warmup_*)
// slow-starts the recovered node's intake, and TcpClientChannel's
// reconnect backoff paces each client's dials during the blackout.
//
// Time: one WarmStartClock survives every generation. While serving it
// runs (simulated base + real elapsed wall time); during blackout and
// recovery it is pinned, so replayed records never drag `Now` backward
// and deadlines stamped before the kill are still meaningful after it.

#ifndef PROMISES_SERVICE_LIFECYCLE_H_
#define PROMISES_SERVICE_LIFECYCLE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/oplog.h"
#include "core/promise_manager.h"
#include "protocol/tcp_transport.h"
#include "protocol/transport.h"
#include "resource/resource_manager.h"
#include "txn/transaction.h"
#include "wsba/business_activity.h"

namespace promises {

/// A SimulatedClock that can also free-run against the wall clock.
///
/// Pinned (the initial state): pure simulated time — Now() only moves
/// via Advance/AdvanceTo, which is what recovery replay needs (a
/// replayed record's AdvanceTo(ts <= now) is a no-op, so restarts
/// never jump time for the promises that survived).
/// Running: Now() = max(simulated, base_sim + wall time elapsed since
/// Run()), so expiry, quota refill and the warm-up ramp all progress
/// in real time while the node serves.
/// Pin() folds the elapsed wall time into the simulated base (forward
/// only), so time is monotone across any Run/Pin sequence.
///
/// SleepFor always sleeps for real (never Advance): concurrent client
/// retry backoffs during a pinned blackout must wait, not teleport the
/// whole world's clock forward.
class WarmStartClock : public SimulatedClock {
 public:
  /// Switches to running mode, anchored at the current pinned time.
  void Run();

  /// Folds elapsed wall time into the simulated base and freezes.
  void Pin();

  bool running() const { return running_.load(std::memory_order_acquire); }

  void SleepFor(DurationMs duration) override;

 protected:
  Timestamp NowImpl() const override;

 private:
  static int64_t SteadyUs();

  std::atomic<bool> running_{false};
  std::atomic<Timestamp> base_sim_{0};
  std::atomic<int64_t> base_wall_us_{0};
};

/// Combined recovery forensics: the manager-side report plus the WS-BA
/// coordinator re-drive summary.
struct RecoverAllReport {
  RecoveryReport manager;
  CoordinatorRecovery wsba;
  bool wsba_recovered = false;  ///< False when no coordinator was given.
};

/// One entry point for the whole recovery sequence, in the correct
/// order: (1) checkpoint + oplog tail into `pm` (RecoverWithCheckpoint
/// — call it before AttachLog, with resources/services registered and
/// the log file quiescent), then (2) the WS-BA decision log into
/// `coordinator` (RecoverCoordinator — freshly constructed, its
/// options.log already Open()ed on `wsba_log_path`, so presumed-abort
/// re-drives are durably logged as they happen). `coordinator` may be
/// null when the node runs no coordination.
Status RecoverAll(PromiseManager* pm, SimulatedClock* clock,
                  const std::string& checkpoint_path,
                  const std::string& log_path,
                  BusinessActivityCoordinator* coordinator,
                  const std::string& wsba_log_path,
                  const RecoveryOptions& options = {},
                  RecoverAllReport* report = nullptr);

struct ServerLifecycleOptions {
  /// TCP port for the endpoint server; 0 picks a free port on the
  /// first Start and every later generation rebinds the same port.
  uint16_t port = 0;
  /// Directory for the durable state (oplog, checkpoint, WS-BA log).
  /// Must exist; files are created inside it.
  std::string data_dir = "/tmp";
  /// Filename prefix inside data_dir (so many lifecycles coexist).
  std::string name = "lifecycle";

  PromiseManagerConfig manager;
  /// Server knobs (workers, admission incl. the warm-up ramp). The
  /// lifecycle overrides clock and drain_ms (teardown is driven by
  /// KillHard/StopGraceful, not TcpEndpointServer::Stop), and arms
  /// begin_in_warmup on every generation after the first.
  TcpServerOptions server;
  GroupCommitConfig group_commit;
  RecoveryOptions recovery;

  /// Periodic checkpoint cadence; 0 disables (graceful stops still cut
  /// a final checkpoint).
  DurationMs checkpoint_interval_ms = 0;
  /// Wall-clock budget StopGraceful gives the drain.
  DurationMs drain_deadline_ms = 500;

  /// In-process transport hosting the WS-BA conversation (non-owning;
  /// participants typically live on it across generations). Null
  /// disables the coordinator entirely.
  Transport* wsba_transport = nullptr;
  std::string wsba_endpoint = "ba-coordinator";
  /// Coordinator knobs; log and clock are overwritten by the
  /// lifecycle (its own WS-BA log and WarmStartClock).
  CoordinatorOptions wsba;

  /// Called on every Start with the fresh world, before recovery:
  /// define resource pools/instances here (the ReplayLog contract).
  std::function<void(ResourceManager&)> define_resources;
  /// Called on every Start after define_resources: register services,
  /// tweak the manager.
  std::function<void(PromiseManager&)> configure_manager;
};

/// Supervisor for one promise-manager node. Start/KillHard/StopGraceful
/// are driven from one orchestrator thread; coordinator()/state()/
/// generation() may be read concurrently from workload threads.
class ServerLifecycle {
 public:
  enum class State { kIdle, kRecovering, kServing, kDraining, kStopped,
                     kKilled };

  explicit ServerLifecycle(ServerLifecycleOptions options);
  ~ServerLifecycle();

  ServerLifecycle(const ServerLifecycle&) = delete;
  ServerLifecycle& operator=(const ServerLifecycle&) = delete;

  /// Boots (or re-boots) the node: fresh world, RecoverAll from the
  /// durable state, logs reopened, server bound to the same endpoint.
  /// After the first generation the admission warm-up ramp is armed.
  Status Start();

  /// Simulated SIGKILL: coordinator goes silent, both logs are
  /// abandoned mid-group (waking any blocked WaitDurable with a
  /// failure), sockets are torn down hard, the world is dropped.
  void KillHard();

  /// Drains in-flight requests (bounded by drain_deadline_ms), cuts a
  /// final checkpoint, closes both logs cleanly. Returns false when
  /// the drain deadline lapsed and leftovers were discarded.
  bool StopGraceful();

  State state() const { return state_.load(std::memory_order_acquire); }
  /// Completed Start() calls (1 after first boot).
  int generation() const { return generation_.load(std::memory_order_acquire); }
  /// Bound port (stable across restarts; valid after the first Start).
  uint16_t port() const { return bound_port_; }

  WarmStartClock* clock() { return &clock_; }
  /// Valid between Start and the next KillHard/StopGraceful.
  PromiseManager* manager() { return pm_.get(); }
  TcpEndpointServer* server() { return server_.get(); }
  /// The recovered world's resources/transactions — audits read stock
  /// through these (same validity window as manager()).
  ResourceManager* resources() { return rm_.get(); }
  TransactionManager* transactions() { return tm_.get(); }
  /// Snapshot of the current coordinator (null when wsba is disabled;
  /// a crashed generation's coordinator answers kUnavailable until the
  /// next Start replaces it). Safe to call from workload threads.
  std::shared_ptr<BusinessActivityCoordinator> coordinator() const;

  /// Forensics from the most recent Start.
  const RecoverAllReport& last_recovery() const { return last_recovery_; }
  DurationMs last_recovery_ms() const { return last_recovery_ms_; }

  /// Admission counters summed over every torn-down generation plus
  /// the live one (per-generation controllers die with their server).
  OverloadStats accumulated_overload() const;

 private:
  std::string OplogPath() const;
  std::string CheckpointPath() const;
  std::string WsbaLogPath() const;

  /// Accumulates the live server's overload stats and destroys the
  /// world objects (server first, manager stack after).
  void TearDownWorld();

  ServerLifecycleOptions options_;
  WarmStartClock clock_;

  std::atomic<State> state_{State::kIdle};
  std::atomic<int> generation_{0};
  uint16_t bound_port_ = 0;

  // Durable spine: these objects survive generations (reopened, never
  // reconstructed) so poisoned/abandoned state resets via Open().
  OperationLog oplog_;
  OperationLog ba_log_;

  // The per-generation world.
  std::unique_ptr<ResourceManager> rm_;
  std::unique_ptr<TransactionManager> tm_;
  std::unique_ptr<PromiseManager> pm_;
  std::unique_ptr<CheckpointWriter> ckpt_writer_;
  std::unique_ptr<TcpEndpointServer> server_;

  mutable std::mutex coordinator_mu_;
  std::shared_ptr<BusinessActivityCoordinator> coordinator_;
  /// Previous generation's crashed coordinator, kept alive until the
  /// next Start re-registers the endpoint (its stale transport handler
  /// must keep pointing at a live object that answers kUnavailable).
  std::shared_ptr<BusinessActivityCoordinator> dead_coordinator_;

  RecoverAllReport last_recovery_;
  DurationMs last_recovery_ms_ = 0;

  mutable std::mutex overload_mu_;
  OverloadStats overload_total_;
};

}  // namespace promises

#endif  // PROMISES_SERVICE_LIFECYCLE_H_
