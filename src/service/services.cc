#include "service/services.h"

#include "common/string_util.h"

namespace promises {

Result<PromiseId> PromiseParam(const std::map<std::string, Value>& params) {
  auto it = params.find("promise");
  if (it == params.end() || !it->second.is_int()) {
    return Status::InvalidArgument("missing int parameter 'promise'");
  }
  return PromiseId(static_cast<uint64_t>(it->second.as_int()));
}

Result<std::string> StringParam(const std::map<std::string, Value>& params,
                                const std::string& name) {
  auto it = params.find(name);
  if (it == params.end() || !it->second.is_string()) {
    return Status::InvalidArgument("missing string parameter '" + name + "'");
  }
  return it->second.as_string();
}

Result<int64_t> IntParam(const std::map<std::string, Value>& params,
                         const std::string& name) {
  auto it = params.find(name);
  if (it == params.end() || !it->second.is_int()) {
    return Status::InvalidArgument("missing int parameter '" + name + "'");
  }
  return it->second.as_int();
}

int64_t IntParamOr(const std::map<std::string, Value>& params,
                   const std::string& name, int64_t fallback) {
  auto it = params.find(name);
  if (it == params.end() || !it->second.is_int()) return fallback;
  return it->second.as_int();
}

ServiceFn MakeInventoryService() {
  return [](ActionContext* ctx, const std::string& op,
            const std::map<std::string, Value>& params)
             -> Result<std::map<std::string, Value>> {
    if (op == "purchase") {
      PROMISES_ASSIGN_OR_RETURN(std::string item, StringParam(params, "item"));
      PROMISES_ASSIGN_OR_RETURN(int64_t quantity,
                                IntParam(params, "quantity"));
      // With a covering promise the consumption draws down the
      // reservation; without one it is a plain unprotected purchase.
      if (params.count("promise")) {
        PROMISES_ASSIGN_OR_RETURN(PromiseId promise, PromiseParam(params));
        PROMISES_RETURN_IF_ERROR(
            ctx->TakeQuantityUnder(promise, item, quantity));
      } else {
        PROMISES_RETURN_IF_ERROR(ctx->TakeQuantity(item, quantity));
      }
      return std::map<std::string, Value>{{"shipped", Value(quantity)}};
    }
    if (op == "restock") {
      PROMISES_ASSIGN_OR_RETURN(std::string item, StringParam(params, "item"));
      PROMISES_ASSIGN_OR_RETURN(int64_t quantity,
                                IntParam(params, "quantity"));
      PROMISES_RETURN_IF_ERROR(
          ctx->rm()->AdjustQuantity(ctx->txn(), item, quantity));
      PROMISES_ASSIGN_OR_RETURN(int64_t now_on_hand,
                                ctx->rm()->GetQuantity(ctx->txn(), item));
      return std::map<std::string, Value>{{"quantity", Value(now_on_hand)}};
    }
    if (op == "check") {
      PROMISES_ASSIGN_OR_RETURN(std::string item, StringParam(params, "item"));
      PROMISES_ASSIGN_OR_RETURN(int64_t on_hand,
                                ctx->rm()->GetQuantity(ctx->txn(), item));
      return std::map<std::string, Value>{{"quantity", Value(on_hand)}};
    }
    return Status::NotFound("inventory: unknown operation '" + op + "'");
  };
}

ServiceFn MakeBookingService() {
  return [](ActionContext* ctx, const std::string& op,
            const std::map<std::string, Value>& params)
             -> Result<std::map<std::string, Value>> {
    if (op == "book") {
      PROMISES_ASSIGN_OR_RETURN(std::string cls, StringParam(params, "class"));
      PROMISES_ASSIGN_OR_RETURN(PromiseId promise, PromiseParam(params));
      int64_t count = IntParamOr(params, "count", 1);
      std::vector<std::string> booked;
      for (int64_t i = 0; i < count; ++i) {
        PROMISES_ASSIGN_OR_RETURN(std::string instance,
                                  ctx->TakeInstance(promise, cls));
        booked.push_back(instance);
      }
      return std::map<std::string, Value>{{"booked", Value(Join(booked, ","))}};
    }
    if (op == "peek") {
      PROMISES_ASSIGN_OR_RETURN(std::string cls, StringParam(params, "class"));
      PROMISES_ASSIGN_OR_RETURN(PromiseId promise, PromiseParam(params));
      PROMISES_ASSIGN_OR_RETURN(std::string instance,
                                ctx->PeekInstance(promise, cls));
      return std::map<std::string, Value>{{"instance", Value(instance)}};
    }
    if (op == "vacate") {
      PROMISES_ASSIGN_OR_RETURN(std::string cls, StringParam(params, "class"));
      PROMISES_ASSIGN_OR_RETURN(std::string instance,
                                StringParam(params, "instance"));
      PROMISES_RETURN_IF_ERROR(ctx->rm()->SetInstanceStatus(
          ctx->txn(), cls, instance, InstanceStatus::kAvailable));
      return std::map<std::string, Value>{{"ok", Value(true)}};
    }
    return Status::NotFound("booking: unknown operation '" + op + "'");
  };
}

ServiceFn MakeAccountService() {
  return [](ActionContext* ctx, const std::string& op,
            const std::map<std::string, Value>& params)
             -> Result<std::map<std::string, Value>> {
    if (op == "withdraw") {
      PROMISES_ASSIGN_OR_RETURN(std::string account,
                                StringParam(params, "account"));
      PROMISES_ASSIGN_OR_RETURN(int64_t amount, IntParam(params, "amount"));
      if (params.count("promise")) {
        PROMISES_ASSIGN_OR_RETURN(PromiseId promise, PromiseParam(params));
        PROMISES_RETURN_IF_ERROR(
            ctx->TakeQuantityUnder(promise, account, amount));
      } else {
        PROMISES_RETURN_IF_ERROR(ctx->TakeQuantity(account, amount));
      }
      PROMISES_ASSIGN_OR_RETURN(int64_t left,
                                ctx->rm()->GetQuantity(ctx->txn(), account));
      return std::map<std::string, Value>{{"balance-left", Value(left)}};
    }
    if (op == "deposit") {
      PROMISES_ASSIGN_OR_RETURN(std::string account,
                                StringParam(params, "account"));
      PROMISES_ASSIGN_OR_RETURN(int64_t amount, IntParam(params, "amount"));
      PROMISES_RETURN_IF_ERROR(
          ctx->rm()->AdjustQuantity(ctx->txn(), account, amount));
      return std::map<std::string, Value>{{"ok", Value(true)}};
    }
    if (op == "balance") {
      PROMISES_ASSIGN_OR_RETURN(std::string account,
                                StringParam(params, "account"));
      PROMISES_ASSIGN_OR_RETURN(int64_t balance,
                                ctx->rm()->GetQuantity(ctx->txn(), account));
      return std::map<std::string, Value>{{"balance", Value(balance)}};
    }
    return Status::NotFound("account: unknown operation '" + op + "'");
  };
}

ServiceFn MakeShippingService(std::string local_capacity_pool,
                              std::string delegated_class) {
  return [local_capacity_pool, delegated_class](
             ActionContext* ctx, const std::string& op,
             const std::map<std::string, Value>& params)
             -> Result<std::map<std::string, Value>> {
    if (op != "ship") {
      return Status::NotFound("shipping: unknown operation '" + op + "'");
    }
    int64_t quantity = IntParamOr(params, "quantity", 1);
    if (!delegated_class.empty()) {
      PROMISES_ASSIGN_OR_RETURN(PromiseId promise, PromiseParam(params));
      ActionBody upstream;
      upstream.service = "inventory";
      upstream.operation = "purchase";
      upstream.params["item"] = Value(delegated_class);
      upstream.params["quantity"] = Value(quantity);
      PROMISES_ASSIGN_OR_RETURN(
          ActionResultBody result,
          ctx->ForwardUpstream(promise, delegated_class, std::move(upstream),
                               /*release_after=*/true));
      if (!result.ok) {
        return Status::FailedPrecondition("upstream shipping failed: " +
                                          result.error);
      }
      return std::map<std::string, Value>{{"shipped", Value(true)}};
    }
    PROMISES_RETURN_IF_ERROR(
        ctx->TakeQuantity(local_capacity_pool, quantity));
    return std::map<std::string, Value>{{"shipped", Value(true)}};
  };
}

}  // namespace promises
