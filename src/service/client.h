// Promise-aware client library.
//
// Wraps the §6 protocol exchange for client applications: building
// <promise-request> envelopes, correlating responses, attaching
// <environment> headers to actions, releasing promises, and the
// combined forms (§2: "Promise release requests can be combined with
// application request messages"; §4: atomic promise update via
// release-on-grant).
//
// With a retry policy attached (set_retry_policy), Send re-sends the
// identical envelope — same message id — on transport-level failures,
// which together with the manager's idempotency table yields
// exactly-once processing over an at-least-once exchange.

#ifndef PROMISES_SERVICE_CLIENT_H_
#define PROMISES_SERVICE_CLIENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "protocol/circuit_breaker.h"
#include "protocol/message.h"
#include "protocol/retry_policy.h"
#include "protocol/transport.h"

namespace promises {

/// A granted promise as seen by the client.
struct ClientPromise {
  PromiseId id;
  DurationMs duration_ms = 0;
};

class PromiseClient {
 public:
  PromiseClient(std::string name, Transport* transport,
                std::string manager_endpoint)
      : name_(std::move(name)),
        transport_(transport),
        manager_(std::move(manager_endpoint)) {}

  const std::string& name() const { return name_; }

  /// Requests promises for all predicates atomically. Textual form;
  /// separate multiple predicates with ';'. A rejection is returned as
  /// an error Status of code kFailedPrecondition carrying the reason.
  Result<ClientPromise> Request(const std::string& predicates,
                                DurationMs duration_ms = 0,
                                std::vector<PromiseId> release_on_grant = {});

  /// Structured-predicate variant.
  Result<ClientPromise> Request(std::vector<Predicate> predicates,
                                DurationMs duration_ms = 0,
                                std::vector<PromiseId> release_on_grant = {});

  /// Full request outcome, exposing the maker's §6 counter-offer on
  /// rejection (unlike Request, a rejection is a value here).
  struct RequestOutcome {
    bool granted = false;
    ClientPromise promise;
    std::string reject_reason;
    /// Predicate list the maker offered instead (may be empty).
    std::string counter_offer;
  };
  Result<RequestOutcome> TryRequest(
      const std::string& predicates, DurationMs duration_ms = 0,
      std::vector<PromiseId> release_on_grant = {});

  /// Requests `predicates`; if rejected with a counter-offer, accepts
  /// the counter-offer (one round). Returns the promise and whether the
  /// counter was taken.
  struct CounterAccepted {
    ClientPromise promise;
    bool took_counter = false;
    std::string granted_predicates;  ///< what was actually promised
  };
  Result<CounterAccepted> RequestOrCounter(const std::string& predicates,
                                           DurationMs duration_ms = 0);

  /// §4 atomic update: obtain `predicates` while handing back `old_id`.
  Result<ClientPromise> Update(PromiseId old_id,
                               const std::string& predicates,
                               DurationMs duration_ms = 0) {
    return Request(predicates, duration_ms, {old_id});
  }

  Status Release(const std::vector<PromiseId>& ids);

  /// §3.3 negotiation: "the client may initially request a non-smoking
  /// room with a view and twin beds, and eventually accept a promise
  /// for a room with just twin beds." `alternatives` lists predicate
  /// sets from most to least desirable; the first grantable one wins.
  struct Negotiated {
    ClientPromise promise;
    /// Index into `alternatives` that was granted (0 = most desirable).
    size_t alternative = 0;
  };
  Result<Negotiated> RequestNegotiated(
      const std::vector<std::string>& alternatives,
      DurationMs duration_ms = 0);

  /// Executes an action under the given environment promises.
  /// `release_after` applies to every listed promise.
  Result<ActionResultBody> Act(const ActionBody& action,
                               const std::vector<PromiseId>& env = {},
                               bool release_after = false);

  /// One-envelope combined request+action (§6 / §8 prototype): the
  /// action runs under the newly granted promise (plus `extra_env`) and
  /// is skipped when the request is rejected. Set `release_after` to
  /// bind the new promise's release to the action's success.
  struct CombinedOutcome {
    bool granted = false;
    ClientPromise promise;
    std::string reject_reason;
    ActionResultBody action;
  };
  Result<CombinedOutcome> RequestAndAct(
      const std::string& predicates, DurationMs duration_ms,
      const ActionBody& action, bool release_after,
      const std::vector<EnvironmentHeader::Entry>& extra_env = {});

  /// §6 'pending' over the wire: like TryRequest but an ungrantable
  /// request joins the maker's wait queue; Poll resolves the ticket.
  struct QueuedRequest {
    bool granted = false;
    ClientPromise promise;
    bool pending = false;
    uint64_t ticket = 0;
    std::string reject_reason;
  };
  Result<QueuedRequest> RequestQueued(const std::string& predicates,
                                      DurationMs duration_ms = 0);
  Result<QueuedRequest> Poll(uint64_t ticket);

  /// Raw envelope exchange for advanced uses. Subject to the retry
  /// policy: retryable transport failures (kTimeout / kUnavailable /
  /// kDeadlineExceeded) re-send the identical envelope until the
  /// policy's attempts or deadline run out.
  Result<Envelope> Send(Envelope envelope);

  /// Enables retries with `policy` (backoff jitter drawn from a client
  /// Rng seeded with `seed`, so runs are reproducible). Without a
  /// policy the client makes exactly one attempt — prior behavior.
  void set_retry_policy(RetryPolicy policy, uint64_t seed = 42) {
    retry_policy_ = policy;
    rng_ = Rng(seed);
  }
  void clear_retry_policy() { retry_policy_.reset(); }

  /// Stamps every outgoing envelope with an absolute deadline of
  /// `clock->Now() + budget_ms`. The deadline is set once per logical
  /// call and rides the identical envelope across retries, so the
  /// server (admission controller, promise manager) can shed requests
  /// this client has already given up on. budget_ms <= 0 disables.
  void set_deadline_policy(Clock* clock, DurationMs budget_ms) {
    deadline_clock_ = clock;
    deadline_budget_ms_ = budget_ms;
  }
  void clear_deadline_policy() {
    deadline_clock_ = nullptr;
    deadline_budget_ms_ = 0;
  }

  /// Layers a circuit breaker over the retry policy: a streak of
  /// overload failures (sheds, unavailability) trips it, after which
  /// attempts fail fast locally (kUnavailable with a retry-after hint
  /// equal to the remaining cooldown) until a half-open probe
  /// succeeds. `clock` is non-owning and should match the retry
  /// policy's clock.
  void set_circuit_breaker(CircuitBreakerConfig config, Clock* clock,
                           uint64_t seed = 42) {
    breaker_ = std::make_unique<CircuitBreaker>(config, clock, seed);
  }
  void clear_circuit_breaker() { breaker_.reset(); }
  /// Attached breaker, or nullptr (for state/stats inspection).
  CircuitBreaker* circuit_breaker() { return breaker_.get(); }

  /// Total re-sends performed across all calls (first attempts not
  /// counted; breaker fast-failures never reach the wire and are not
  /// counted either).
  uint64_t retries() const { return retries_; }

 private:
  Envelope NewEnvelope();

  std::string name_;
  Transport* transport_;
  std::string manager_;
  IdGenerator<RequestId> request_ids_;
  std::optional<RetryPolicy> retry_policy_;
  Rng rng_{42};
  uint64_t retries_ = 0;
  Clock* deadline_clock_ = nullptr;
  DurationMs deadline_budget_ms_ = 0;
  std::unique_ptr<CircuitBreaker> breaker_;
};

}  // namespace promises

#endif  // PROMISES_SERVICE_CLIENT_H_
