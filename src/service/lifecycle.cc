#include "service/lifecycle.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace promises {

namespace {

struct LifecycleMetrics {
  Counter* restarts;
  Counter* kills_hard;
  Counter* stops_graceful;
  Counter* ramp_sheds;
  Histogram* recovery_ms;

  static const LifecycleMetrics& Get() {
    static LifecycleMetrics metrics = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return LifecycleMetrics{
          reg.GetCounter("promises_lifecycle_restarts_total"),
          reg.GetCounter("promises_lifecycle_kills_hard_total"),
          reg.GetCounter("promises_lifecycle_stops_graceful_total"),
          reg.GetCounter("promises_lifecycle_ramp_sheds_total"),
          reg.GetHistogram("promises_lifecycle_recovery_ms")};
    }();
    return metrics;
  }
};

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// WarmStartClock

int64_t WarmStartClock::SteadyUs() { return SteadyNowUs(); }

void WarmStartClock::Run() {
  if (running_.load(std::memory_order_acquire)) return;
  base_sim_.store(SimulatedClock::NowImpl(), std::memory_order_relaxed);
  base_wall_us_.store(SteadyUs(), std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
}

void WarmStartClock::Pin() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Fold the elapsed wall time into the simulated base (forward-only
  // CAS), so readers racing the flag flip compute the same instant
  // either way and time stays monotone across generations.
  Timestamp now =
      base_sim_.load(std::memory_order_relaxed) +
      (SteadyUs() - base_wall_us_.load(std::memory_order_relaxed)) / 1000;
  AdvanceTo(now);
  running_.store(false, std::memory_order_release);
}

Timestamp WarmStartClock::NowImpl() const {
  Timestamp sim = SimulatedClock::NowImpl();
  if (!running_.load(std::memory_order_acquire)) return sim;
  Timestamp wall =
      base_sim_.load(std::memory_order_relaxed) +
      (SteadyUs() - base_wall_us_.load(std::memory_order_relaxed)) / 1000;
  return std::max(sim, wall);
}

void WarmStartClock::SleepFor(DurationMs duration) {
  // Never Advance: backoff waits issued by concurrent client threads
  // during a pinned blackout must cost wall time, not teleport the
  // shared clock (and with it every deadline and expiry) forward.
  if (duration > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(duration));
  }
}

// ---------------------------------------------------------------------------
// RecoverAll

Status RecoverAll(PromiseManager* pm, SimulatedClock* clock,
                  const std::string& checkpoint_path,
                  const std::string& log_path,
                  BusinessActivityCoordinator* coordinator,
                  const std::string& wsba_log_path,
                  const RecoveryOptions& options, RecoverAllReport* report) {
  RecoverAllReport local;
  RecoverAllReport* out = report != nullptr ? report : &local;
  *out = RecoverAllReport{};
  // Manager state first (checkpoint + oplog tail): the coordinator
  // re-drive below may compensate activities whose work touched
  // promise-managed resources, so the world must be rebuilt before
  // any outcome order fires.
  Status manager_st = RecoverWithCheckpoint(pm, clock, checkpoint_path,
                                            log_path, options, &out->manager);
  // kNotFound means a cold boot (no checkpoint, no log yet) — an empty
  // world is the correct recovery of nothing.
  if (!manager_st.ok() && manager_st.code() != StatusCode::kNotFound) {
    return manager_st;
  }
  if (coordinator != nullptr) {
    Result<CoordinatorRecovery> wsba =
        RecoverCoordinator(coordinator, wsba_log_path);
    if (!wsba.ok()) return wsba.status();
    out->wsba = *wsba;
    out->wsba_recovered = true;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ServerLifecycle

ServerLifecycle::ServerLifecycle(ServerLifecycleOptions options)
    : options_(std::move(options)) {
  // Touch every lifecycle metric so FormatPrometheus shows them at 0
  // before the first restart.
  (void)LifecycleMetrics::Get();
  bound_port_ = options_.port;
}

ServerLifecycle::~ServerLifecycle() {
  if (state() == State::kServing) StopGraceful();
}

std::string ServerLifecycle::OplogPath() const {
  return options_.data_dir + "/" + options_.name + ".oplog";
}

std::string ServerLifecycle::CheckpointPath() const {
  return options_.data_dir + "/" + options_.name + ".ckpt";
}

std::string ServerLifecycle::WsbaLogPath() const {
  return options_.data_dir + "/" + options_.name + ".balog";
}

std::shared_ptr<BusinessActivityCoordinator> ServerLifecycle::coordinator()
    const {
  std::lock_guard<std::mutex> lk(coordinator_mu_);
  return coordinator_;
}

OverloadStats ServerLifecycle::accumulated_overload() const {
  std::lock_guard<std::mutex> lk(overload_mu_);
  OverloadStats total = overload_total_;
  if (server_ != nullptr) {
    OverloadStats live = server_->overload_stats();
    total.admitted += live.admitted;
    total.shed_queue_full += live.shed_queue_full;
    total.shed_quota += live.shed_quota;
    total.shed_deadline += live.shed_deadline;
    total.shed_warmup += live.shed_warmup;
    total.queue_peak = std::max(total.queue_peak, live.queue_peak);
  }
  return total;
}

void ServerLifecycle::TearDownWorld() {
  if (server_ != nullptr) {
    OverloadStats live = server_->overload_stats();
    std::lock_guard<std::mutex> lk(overload_mu_);
    overload_total_.admitted += live.admitted;
    overload_total_.shed_queue_full += live.shed_queue_full;
    overload_total_.shed_quota += live.shed_quota;
    overload_total_.shed_deadline += live.shed_deadline;
    overload_total_.shed_warmup += live.shed_warmup;
    overload_total_.queue_peak =
        std::max(overload_total_.queue_peak, live.queue_peak);
  }
  server_.reset();
  ckpt_writer_.reset();
  pm_.reset();
  tm_.reset();
  rm_.reset();
}

Status ServerLifecycle::Start() {
  State cur = state();
  if (cur == State::kServing || cur == State::kRecovering ||
      cur == State::kDraining) {
    return Status::FailedPrecondition("lifecycle already running");
  }
  state_.store(State::kRecovering, std::memory_order_release);
  const bool restart = generation_.load(std::memory_order_relaxed) > 0;
  const int64_t t0_us = SteadyNowUs();

  ScopedSpan restart_span(Tracer::Global().StartTrace(),
                          restart ? "lifecycle-restart" : "lifecycle-boot");

  // Fresh world. The clock is pinned here (Pin() ran at teardown), so
  // recovery replay sees frozen, monotone time.
  rm_ = std::make_unique<ResourceManager>();
  tm_ = std::make_unique<TransactionManager>(250);
  pm_ = std::make_unique<PromiseManager>(options_.manager, &clock_, rm_.get(),
                                         tm_.get());
  if (options_.define_resources) options_.define_resources(*rm_);
  if (options_.configure_manager) options_.configure_manager(*pm_);

  // WS-BA spine: reopen the decision log (clearing any Abandon poison)
  // and register the new coordinator — Register replaces the crashed
  // generation's handler, after which its corpse can be dropped.
  std::shared_ptr<BusinessActivityCoordinator> coordinator;
  if (options_.wsba_transport != nullptr) {
    Status st = ba_log_.Open(WsbaLogPath());
    if (!st.ok()) {
      state_.store(State::kStopped, std::memory_order_release);
      return st;
    }
    st = ba_log_.StartGroupCommit(options_.group_commit, &clock_);
    if (!st.ok()) {
      state_.store(State::kStopped, std::memory_order_release);
      return st;
    }
    CoordinatorOptions copts = options_.wsba;
    copts.log = &ba_log_;
    copts.clock = &clock_;
    coordinator = std::make_shared<BusinessActivityCoordinator>(
        options_.wsba_endpoint, options_.wsba_transport, copts);
  }

  // Recovery: checkpoint + oplog tail + WS-BA decision log, with the
  // manager's log file still quiescent (it reopens just below).
  {
    ScopedSpan recover_span(restart_span.context(), "lifecycle-recover");
    Status st = RecoverAll(pm_.get(), &clock_, CheckpointPath(), OplogPath(),
                           coordinator.get(), WsbaLogPath(),
                           options_.recovery, &last_recovery_);
    if (!st.ok()) {
      recover_span.set_status("error");
      state_.store(State::kStopped, std::memory_order_release);
      return st;
    }
  }

  {
    std::lock_guard<std::mutex> lk(coordinator_mu_);
    dead_coordinator_.reset();  // new handler is registered; corpse safe
    coordinator_ = std::move(coordinator);
  }

  // Durable spine back online: reopen, restart group commit, attach.
  Status st = oplog_.Open(OplogPath());
  if (st.ok()) st = oplog_.StartGroupCommit(options_.group_commit, &clock_);
  if (st.ok()) st = pm_->AttachLog(&oplog_);
  if (!st.ok()) {
    state_.store(State::kStopped, std::memory_order_release);
    return st;
  }

  ckpt_writer_ =
      std::make_unique<CheckpointWriter>(pm_.get(), &oplog_, CheckpointPath());
  if (options_.checkpoint_interval_ms > 0) {
    st = ckpt_writer_->Start(options_.checkpoint_interval_ms);
    if (!st.ok()) {
      state_.store(State::kStopped, std::memory_order_release);
      return st;
    }
  }

  // Serve. Time starts running again just before the socket opens; on
  // a restart the admission warm-up ramp is armed so the reconnect
  // herd is slow-started instead of re-killing the node.
  clock_.Run();
  TcpServerOptions sopts = options_.server;
  sopts.clock = &clock_;
  sopts.drain_ms = 0;  // teardown goes through KillHard/StopGraceful
  sopts.begin_in_warmup = restart;
  server_ = std::make_unique<TcpEndpointServer>();
  st = server_->Start(bound_port_,
                      [pm = pm_.get()](const Envelope& envelope) {
                        return pm->Handle(envelope);
                      },
                      sopts);
  if (!st.ok()) {
    restart_span.set_status("error");
    state_.store(State::kStopped, std::memory_order_release);
    return st;
  }
  bound_port_ = server_->port();

  last_recovery_ms_ = (SteadyNowUs() - t0_us) / 1000;
  LifecycleMetrics::Get().recovery_ms->Observe(
      static_cast<double>(last_recovery_ms_));
  if (restart) LifecycleMetrics::Get().restarts->Increment();
  generation_.fetch_add(1, std::memory_order_release);
  state_.store(State::kServing, std::memory_order_release);
  return Status::OK();
}

void ServerLifecycle::KillHard() {
  if (state() != State::kServing) return;
  ScopedSpan span(Tracer::Global().StartTrace(), "lifecycle-kill-hard");

  // The coordinator dies first: a SIGKILL'd process never unregisters,
  // so the corpse stays alive (answering kUnavailable through the
  // stale handler) until the next generation re-registers.
  {
    std::lock_guard<std::mutex> lk(coordinator_mu_);
    if (coordinator_ != nullptr) {
      coordinator_->SimulateCrash();
      dead_coordinator_ = std::move(coordinator_);
    }
  }

  // Sockets first, logs second — the order matters. A SIGKILL cuts
  // replies and durability in the same instant; simulating it in two
  // steps must never leave a window where a handler can observe a
  // poisoned log (detaching it) and then send an OK reply for an
  // effect no log carries. Stop() discards the queued backlog and
  // joins in-flight handlers (their WaitDurable completes normally —
  // the group writer is still alive — but the reply hits a closed
  // socket, so clients see exactly a blackout: resets and time-outs,
  // and every acked effect is durable).
  server_->Stop();

  // Now abandon both logs mid-group: queued-but-unflushed records are
  // dropped (the crash ate them) and any straggler blocked in
  // WaitDurable (e.g. the checkpoint writer's cut marker) wakes with a
  // failure instead of lingering.
  oplog_.Abandon();
  ba_log_.Abandon();
  TearDownWorld();

  clock_.Pin();
  LifecycleMetrics::Get().kills_hard->Increment();
  state_.store(State::kKilled, std::memory_order_release);
}

bool ServerLifecycle::StopGraceful() {
  if (state() != State::kServing) return false;
  state_.store(State::kDraining, std::memory_order_release);
  ScopedSpan span(Tracer::Global().StartTrace(), "lifecycle-stop-graceful");

  // Drain: queued and in-flight requests finish (their oplog appends
  // commit normally), new frames are shed with reason "draining".
  bool drained = server_->StopGraceful(options_.drain_deadline_ms);
  if (!drained) span.set_status("drain-timeout");

  // The coordinator stops answering; like the hard path the corpse
  // keeps the endpoint's handler valid until the next registration.
  {
    std::lock_guard<std::mutex> lk(coordinator_mu_);
    if (coordinator_ != nullptr) {
      coordinator_->SimulateCrash();
      dead_coordinator_ = std::move(coordinator_);
    }
  }

  // Final checkpoint while the log still runs (the install waits for
  // the cut to be durable), then stop both logs cleanly.
  if (ckpt_writer_ != nullptr) {
    ckpt_writer_->Stop();
    (void)ckpt_writer_->RunOnce();
  }
  oplog_.StopGroupCommit();
  oplog_.Close();
  ba_log_.StopGroupCommit();
  ba_log_.Close();

  TearDownWorld();
  clock_.Pin();
  LifecycleMetrics::Get().stops_graceful->Increment();
  state_.store(State::kStopped, std::memory_order_release);
  return drained;
}

}  // namespace promises
