// The Resource Manager (RM) of §8.
//
// "The role of the RM is to store the state of the system, and to
// process queries and updates on this data as requested by the
// application and the promise manager."
//
// The store models the two physical shapes of §3:
//  * pool classes — anonymous resources tracked by an explicit quantity
//    attribute ("quantity on hand" / "account balance", §3.1);
//  * instance classes — named resources, each instance carrying a
//    unique id, a free/busy-style status field (§3.2, §5 allocated
//    tags) and typed properties (§3.3).
//
// All data operations run inside a Transaction: they acquire 2PL locks
// through it and register undo closures, which is what lets the promise
// manager roll an action back when it would violate a promise (§8).

#ifndef PROMISES_RESOURCE_RESOURCE_MANAGER_H_
#define PROMISES_RESOURCE_RESOURCE_MANAGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "resource/schema.h"
#include "resource/value.h"
#include "txn/transaction.h"

namespace promises {

/// §5 allocated-tag states: 'available' -> 'promised' -> 'taken'.
enum class InstanceStatus { kAvailable, kPromised, kTaken };

std::string_view InstanceStatusToString(InstanceStatus s);

/// Immutable copy of one instance handed to queries and checkers.
struct InstanceView {
  std::string id;
  InstanceStatus status = InstanceStatus::kAvailable;
  PropertyMap properties;
};

/// In-memory transactional record store.
///
/// Thread-compatible through the lock manager: logical isolation comes
/// from the 2PL locks each call acquires via its Transaction; an
/// internal mutex only protects physical map structure.
class ResourceManager {
 public:
  ResourceManager() = default;
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  // --- Definition (setup-time, not transactional) ---

  /// Registers an anonymous resource pool with an initial quantity.
  Status CreatePool(const std::string& cls, int64_t initial_quantity);

  /// Registers a named-instance class exporting `schema`.
  Status CreateInstanceClass(const std::string& cls, Schema schema);

  /// Adds an instance to `cls` in state kAvailable.
  Status AddInstance(const std::string& cls, const std::string& id,
                     PropertyMap properties);

  bool HasPool(const std::string& cls) const;
  bool HasInstanceClass(const std::string& cls) const;
  /// Schema of an instance class, or nullptr.
  const Schema* GetSchema(const std::string& cls) const;
  std::vector<std::string> PoolClasses() const;
  std::vector<std::string> InstanceClasses() const;

  // --- Lock keys ---

  /// Lock key covering the quantity of a pool class.
  static std::string PoolKey(const std::string& cls) { return "pool:" + cls; }
  /// Lock key covering the whole instance population of a class.
  static std::string ClassKey(const std::string& cls) {
    return "class:" + cls;
  }

  // --- Pool operations (anonymous view, §3.1) ---

  /// Quantity on hand. Shared lock on the pool.
  Result<int64_t> GetQuantity(Transaction* txn, const std::string& cls);

  /// Adds `delta` (may be negative). Fails with kFailedPrecondition if
  /// the result would be negative. Exclusive lock; undoable.
  Status AdjustQuantity(Transaction* txn, const std::string& cls,
                        int64_t delta);

  // --- Instance operations (named view §3.2, property view §3.3) ---

  Result<InstanceStatus> GetInstanceStatus(Transaction* txn,
                                           const std::string& cls,
                                           const std::string& id);

  /// Sets the allocated-tag status field. Exclusive class lock; undoable.
  Status SetInstanceStatus(Transaction* txn, const std::string& cls,
                           const std::string& id, InstanceStatus status);

  Result<InstanceView> GetInstance(Transaction* txn, const std::string& cls,
                                   const std::string& id);

  /// Updates one property value (validated against the schema).
  /// Exclusive class lock; undoable.
  Status SetInstanceProperty(Transaction* txn, const std::string& cls,
                             const std::string& id, const std::string& name,
                             Value value);

  /// Copies every instance of `cls`. Shared class lock.
  Result<std::vector<InstanceView>> ListInstances(Transaction* txn,
                                                  const std::string& cls);

  /// Counts instances currently kAvailable. Shared class lock.
  Result<int64_t> CountAvailable(Transaction* txn, const std::string& cls);

  // --- Checkpoint access (raw: no 2PL, physical mutex only) ---
  //
  // Capture and restore deliberately bypass the lock manager: the
  // caller holds the promise-manager stripe covering `cls`, which is
  // the real serialization point for every promise-mediated mutation
  // of that class, so acquiring 2PL locks here would only add
  // upgrade/deadlock hazards. Definitions (pools, classes, instances)
  // must pre-exist on restore — the same contract as log replay.

  /// Snapshot of a pool's quantity.
  Result<int64_t> ExportPoolQuantity(const std::string& cls) const;

  /// Snapshot of every instance of `cls` (id, status, properties).
  Result<std::vector<InstanceView>> ExportInstances(
      const std::string& cls) const;

  /// Overwrites a pool's quantity with the checkpointed value.
  Status RestorePoolQuantity(const std::string& cls, int64_t quantity);

  /// Overwrites one pre-defined instance's status and properties.
  Status RestoreInstance(const std::string& cls, const std::string& id,
                         InstanceStatus status, PropertyMap properties);

 private:
  struct InstanceRecord {
    InstanceStatus status = InstanceStatus::kAvailable;
    PropertyMap properties;
  };
  struct InstanceClass {
    Schema schema;
    std::map<std::string, InstanceRecord> instances;
  };

  // Both return nullptr when absent. Callers hold mu_.
  InstanceClass* FindClassLocked(const std::string& cls);
  const InstanceClass* FindClassLocked(const std::string& cls) const;

  mutable std::mutex mu_;
  std::map<std::string, int64_t> pools_;
  std::map<std::string, InstanceClass> instance_classes_;
};

}  // namespace promises

#endif  // PROMISES_RESOURCE_RESOURCE_MANAGER_H_
