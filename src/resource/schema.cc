#include "resource/schema.h"

namespace promises {

Schema::Schema(std::vector<PropertyDef> props) : props_(std::move(props)) {}

const PropertyDef* Schema::Find(const std::string& name) const {
  for (const PropertyDef& p : props_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Status Schema::ValidateProperties(const PropertyMap& props) const {
  for (const auto& [name, value] : props) {
    const PropertyDef* def = Find(name);
    if (def == nullptr) {
      return Status::InvalidArgument("property '" + name +
                                     "' is not exported by the schema");
    }
    bool type_ok = value.type() == def->type ||
                   (value.is_numeric() && (def->type == ValueType::kInt ||
                                           def->type == ValueType::kDouble));
    if (!type_ok) {
      return Status::InvalidArgument(
          "property '" + name + "' expects " +
          std::string(ValueTypeToString(def->type)) + " but got " +
          std::string(ValueTypeToString(value.type())));
    }
  }
  return Status::OK();
}

bool Schema::Exports(const Schema& required) const {
  for (const PropertyDef& need : required.properties()) {
    const PropertyDef* have = Find(need.name);
    if (have == nullptr || have->type != need.type) return false;
  }
  return true;
}

}  // namespace promises
