// Resource schemas.
//
// §3: clients construct predicates over "defined resource availability
// data that is specified using standard schemas". A Schema declares the
// properties a resource class exposes so that predicates can be
// validated before they are accepted into a promise, and so that
// heterogeneous providers exporting the same property set can be
// covered by one predicate (§3.3 polymorphic resources).

#ifndef PROMISES_RESOURCE_SCHEMA_H_
#define PROMISES_RESOURCE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "resource/value.h"

namespace promises {

/// Declares one exposed property of a resource class.
struct PropertyDef {
  std::string name;
  ValueType type;
  /// §3.3: values "ordered in acceptability" — a promise may be
  /// satisfied by a better value (e.g. a seat-class upgrade). When set,
  /// larger values (per Value::Compare) are acceptable substitutes for
  /// smaller requested ones.
  bool upgradeable = false;
};

/// The property set exported by a resource class.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<PropertyDef> props);

  /// Declaration for `name`, or nullptr when not exported.
  const PropertyDef* Find(const std::string& name) const;

  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  const std::vector<PropertyDef>& properties() const { return props_; }

  /// Verifies `props` only uses declared names with matching types.
  /// Missing declared properties are allowed (sparse instances).
  Status ValidateProperties(const PropertyMap& props) const;

  /// True when every property in `required` is exported by this schema
  /// with the same type — the §3.3 polymorphism test deciding whether a
  /// predicate written against `required` can cover this class.
  bool Exports(const Schema& required) const;

 private:
  std::vector<PropertyDef> props_;
};

}  // namespace promises

#endif  // PROMISES_RESOURCE_SCHEMA_H_
