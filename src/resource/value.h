// Dynamically-typed values for resource properties.
//
// §3.3: predicates are "expressions over the values of abstract
// properties of resources, not over concrete fields in database
// tables". Value is the runtime representation of one such property
// value; the predicate evaluator operates on Values.

#ifndef PROMISES_RESOURCE_VALUE_H_
#define PROMISES_RESOURCE_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "common/status.h"

namespace promises {

enum class ValueType { kBool, kInt, kDouble, kString };

std::string_view ValueTypeToString(ValueType t);

/// One property value: bool, 64-bit int, double or string.
///
/// Ints and doubles compare numerically against each other; all other
/// cross-type comparisons are errors surfaced by the evaluator.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  Value(bool b) : data_(b) {}                    // NOLINT
  Value(int64_t i) : data_(i) {}                 // NOLINT
  Value(int i) : data_(int64_t{i}) {}            // NOLINT
  Value(double d) : data_(d) {}                  // NOLINT
  Value(std::string s) : data_(std::move(s)) {}  // NOLINT
  Value(const char* s) : data_(std::string(s)) {}  // NOLINT

  ValueType type() const {
    switch (data_.index()) {
      case 0: return ValueType::kBool;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric value widened to double (ints and doubles only).
  double AsNumber() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Three-way comparison: -1, 0, +1; error on incomparable types.
  Result<int> Compare(const Value& other) const;

  /// Equality per Compare semantics (numeric cross-type allowed);
  /// incomparable types are simply unequal.
  bool Equals(const Value& other) const;

  std::string ToString() const;

  /// Parses the textual forms produced by ToString: `true`/`false`,
  /// integers, decimals, and anything else as a string.
  static Value FromText(std::string_view text);

 private:
  std::variant<bool, int64_t, double, std::string> data_;
};

/// Named property values of one resource instance.
using PropertyMap = std::map<std::string, Value>;

}  // namespace promises

#endif  // PROMISES_RESOURCE_VALUE_H_
