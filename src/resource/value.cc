#include "resource/value.h"

#include <charconv>
#include <cmath>

#include "common/string_util.h"

namespace promises {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "unknown";
}

Result<int> Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = AsNumber();
    double b = other.AsNumber();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != other.type()) {
    return Status::InvalidArgument(
        std::string("cannot compare ") +
        std::string(ValueTypeToString(type())) + " with " +
        std::string(ValueTypeToString(other.type())));
  }
  switch (type()) {
    case ValueType::kBool: {
      int a = as_bool() ? 1 : 0;
      int b = other.as_bool() ? 1 : 0;
      return a - b;
    }
    case ValueType::kString: {
      int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return Status::Internal("unreachable value comparison");
  }
}

bool Value::Equals(const Value& other) const {
  Result<int> c = Compare(other);
  return c.ok() && *c == 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      // Shortest representation that parses back to the same double.
      char buf[32];
      auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof(buf), as_double());
      if (ec != std::errc()) return "0";
      std::string s(buf, ptr);
      // Keep the textual form unambiguously a double (the predicate
      // grammar distinguishes int and double literals).
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString:
      return as_string();
  }
  return "";
}

Value Value::FromText(std::string_view text) {
  std::string_view t = Trim(text);
  if (t == "true") return Value(true);
  if (t == "false") return Value(false);
  if (Result<int64_t> i = ParseInt64(t); i.ok()) return Value(*i);
  if (Result<double> d = ParseDouble(t); d.ok()) return Value(*d);
  return Value(std::string(t));
}

}  // namespace promises
