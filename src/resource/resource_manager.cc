#include "resource/resource_manager.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace promises {
namespace {

Counter* ResourceMutations() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "promises_resource_mutations_total");
  return counter;
}

}  // namespace

std::string_view InstanceStatusToString(InstanceStatus s) {
  switch (s) {
    case InstanceStatus::kAvailable: return "available";
    case InstanceStatus::kPromised: return "promised";
    case InstanceStatus::kTaken: return "taken";
  }
  return "unknown";
}

Status ResourceManager::CreatePool(const std::string& cls,
                                   int64_t initial_quantity) {
  if (initial_quantity < 0) {
    return Status::InvalidArgument("initial quantity must be >= 0");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (pools_.count(cls) || instance_classes_.count(cls)) {
    return Status::AlreadyExists("resource class '" + cls + "' exists");
  }
  pools_[cls] = initial_quantity;
  return Status::OK();
}

Status ResourceManager::CreateInstanceClass(const std::string& cls,
                                            Schema schema) {
  std::lock_guard<std::mutex> lk(mu_);
  if (pools_.count(cls) || instance_classes_.count(cls)) {
    return Status::AlreadyExists("resource class '" + cls + "' exists");
  }
  instance_classes_[cls].schema = std::move(schema);
  return Status::OK();
}

Status ResourceManager::AddInstance(const std::string& cls,
                                    const std::string& id,
                                    PropertyMap properties) {
  std::lock_guard<std::mutex> lk(mu_);
  InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  PROMISES_RETURN_IF_ERROR(c->schema.ValidateProperties(properties));
  auto [it, inserted] =
      c->instances.emplace(id, InstanceRecord{InstanceStatus::kAvailable,
                                              std::move(properties)});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("instance '" + id + "' exists in '" + cls +
                                 "'");
  }
  return Status::OK();
}

bool ResourceManager::HasPool(const std::string& cls) const {
  std::lock_guard<std::mutex> lk(mu_);
  return pools_.count(cls) > 0;
}

bool ResourceManager::HasInstanceClass(const std::string& cls) const {
  std::lock_guard<std::mutex> lk(mu_);
  return instance_classes_.count(cls) > 0;
}

const Schema* ResourceManager::GetSchema(const std::string& cls) const {
  std::lock_guard<std::mutex> lk(mu_);
  const InstanceClass* c = FindClassLocked(cls);
  return c == nullptr ? nullptr : &c->schema;
}

std::vector<std::string> ResourceManager::PoolClasses() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(pools_.size());
  for (const auto& [name, qty] : pools_) {
    (void)qty;
    out.push_back(name);
  }
  return out;
}

std::vector<std::string> ResourceManager::InstanceClasses() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(instance_classes_.size());
  for (const auto& [name, c] : instance_classes_) {
    (void)c;
    out.push_back(name);
  }
  return out;
}

Result<int64_t> ResourceManager::ExportPoolQuantity(
    const std::string& cls) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pools_.find(cls);
  if (it == pools_.end()) {
    return Status::NotFound("pool '" + cls + "' not found");
  }
  return it->second;
}

Result<std::vector<InstanceView>> ResourceManager::ExportInstances(
    const std::string& cls) const {
  std::lock_guard<std::mutex> lk(mu_);
  const InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  std::vector<InstanceView> out;
  out.reserve(c->instances.size());
  for (const auto& [id, record] : c->instances) {
    out.push_back(InstanceView{id, record.status, record.properties});
  }
  return out;
}

Status ResourceManager::RestorePoolQuantity(const std::string& cls,
                                            int64_t quantity) {
  if (quantity < 0) {
    return Status::InvalidArgument("pool quantity must be >= 0");
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pools_.find(cls);
  if (it == pools_.end()) {
    return Status::NotFound("pool '" + cls + "' not found");
  }
  it->second = quantity;
  return Status::OK();
}

Status ResourceManager::RestoreInstance(const std::string& cls,
                                        const std::string& id,
                                        InstanceStatus status,
                                        PropertyMap properties) {
  std::lock_guard<std::mutex> lk(mu_);
  InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  auto it = c->instances.find(id);
  if (it == c->instances.end()) {
    return Status::NotFound("instance '" + id + "' not defined in '" + cls +
                            "' (definitions must pre-exist on restore)");
  }
  PROMISES_RETURN_IF_ERROR(c->schema.ValidateProperties(properties));
  it->second.status = status;
  it->second.properties = std::move(properties);
  return Status::OK();
}

Result<int64_t> ResourceManager::GetQuantity(Transaction* txn,
                                             const std::string& cls) {
  PROMISES_RETURN_IF_ERROR(txn->Lock(PoolKey(cls), LockMode::kShared));
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pools_.find(cls);
  if (it == pools_.end()) {
    return Status::NotFound("pool '" + cls + "' not found");
  }
  return it->second;
}

Status ResourceManager::AdjustQuantity(Transaction* txn,
                                       const std::string& cls,
                                       int64_t delta) {
  // State mutations get a span (reads stay untraced — they dominate
  // volume and the interesting latency is the exclusive-lock write).
  ScopedSpan apply_span("resource-apply");
  ResourceMutations()->Increment();
  PROMISES_RETURN_IF_ERROR(txn->Lock(PoolKey(cls), LockMode::kExclusive));
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pools_.find(cls);
  if (it == pools_.end()) {
    return Status::NotFound("pool '" + cls + "' not found");
  }
  if (it->second + delta < 0) {
    return Status::FailedPrecondition(
        "pool '" + cls + "' would go negative (" +
        std::to_string(it->second) + " + " + std::to_string(delta) + ")");
  }
  it->second += delta;
  txn->PushUndo([this, cls, delta] {
    std::lock_guard<std::mutex> lk2(mu_);
    pools_[cls] -= delta;
  });
  return Status::OK();
}

Result<InstanceStatus> ResourceManager::GetInstanceStatus(
    Transaction* txn, const std::string& cls, const std::string& id) {
  PROMISES_RETURN_IF_ERROR(txn->Lock(ClassKey(cls), LockMode::kShared));
  std::lock_guard<std::mutex> lk(mu_);
  const InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  auto it = c->instances.find(id);
  if (it == c->instances.end()) {
    return Status::NotFound("instance '" + id + "' not found in '" + cls +
                            "'");
  }
  return it->second.status;
}

Status ResourceManager::SetInstanceStatus(Transaction* txn,
                                          const std::string& cls,
                                          const std::string& id,
                                          InstanceStatus status) {
  ScopedSpan apply_span("resource-apply");
  ResourceMutations()->Increment();
  PROMISES_RETURN_IF_ERROR(txn->Lock(ClassKey(cls), LockMode::kExclusive));
  std::lock_guard<std::mutex> lk(mu_);
  InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  auto it = c->instances.find(id);
  if (it == c->instances.end()) {
    return Status::NotFound("instance '" + id + "' not found in '" + cls +
                            "'");
  }
  InstanceStatus old = it->second.status;
  it->second.status = status;
  txn->PushUndo([this, cls, id, old] {
    std::lock_guard<std::mutex> lk2(mu_);
    InstanceClass* c2 = FindClassLocked(cls);
    if (c2 == nullptr) return;
    auto it2 = c2->instances.find(id);
    if (it2 != c2->instances.end()) it2->second.status = old;
  });
  return Status::OK();
}

Result<InstanceView> ResourceManager::GetInstance(Transaction* txn,
                                                  const std::string& cls,
                                                  const std::string& id) {
  PROMISES_RETURN_IF_ERROR(txn->Lock(ClassKey(cls), LockMode::kShared));
  std::lock_guard<std::mutex> lk(mu_);
  const InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  auto it = c->instances.find(id);
  if (it == c->instances.end()) {
    return Status::NotFound("instance '" + id + "' not found in '" + cls +
                            "'");
  }
  return InstanceView{id, it->second.status, it->second.properties};
}

Status ResourceManager::SetInstanceProperty(Transaction* txn,
                                            const std::string& cls,
                                            const std::string& id,
                                            const std::string& name,
                                            Value value) {
  PROMISES_RETURN_IF_ERROR(txn->Lock(ClassKey(cls), LockMode::kExclusive));
  std::lock_guard<std::mutex> lk(mu_);
  InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  auto it = c->instances.find(id);
  if (it == c->instances.end()) {
    return Status::NotFound("instance '" + id + "' not found in '" + cls +
                            "'");
  }
  PropertyMap probe;
  probe[name] = value;
  PROMISES_RETURN_IF_ERROR(c->schema.ValidateProperties(probe));
  auto pit = it->second.properties.find(name);
  bool existed = pit != it->second.properties.end();
  Value old = existed ? pit->second : Value();
  it->second.properties[name] = std::move(value);
  txn->PushUndo([this, cls, id, name, existed, old] {
    std::lock_guard<std::mutex> lk2(mu_);
    InstanceClass* c2 = FindClassLocked(cls);
    if (c2 == nullptr) return;
    auto it2 = c2->instances.find(id);
    if (it2 == c2->instances.end()) return;
    if (existed) {
      it2->second.properties[name] = old;
    } else {
      it2->second.properties.erase(name);
    }
  });
  return Status::OK();
}

Result<std::vector<InstanceView>> ResourceManager::ListInstances(
    Transaction* txn, const std::string& cls) {
  PROMISES_RETURN_IF_ERROR(txn->Lock(ClassKey(cls), LockMode::kShared));
  std::lock_guard<std::mutex> lk(mu_);
  const InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  std::vector<InstanceView> out;
  out.reserve(c->instances.size());
  for (const auto& [id, rec] : c->instances) {
    out.push_back(InstanceView{id, rec.status, rec.properties});
  }
  return out;
}

Result<int64_t> ResourceManager::CountAvailable(Transaction* txn,
                                                const std::string& cls) {
  PROMISES_RETURN_IF_ERROR(txn->Lock(ClassKey(cls), LockMode::kShared));
  std::lock_guard<std::mutex> lk(mu_);
  const InstanceClass* c = FindClassLocked(cls);
  if (c == nullptr) {
    return Status::NotFound("instance class '" + cls + "' not found");
  }
  int64_t n = 0;
  for (const auto& [id, rec] : c->instances) {
    (void)id;
    if (rec.status == InstanceStatus::kAvailable) ++n;
  }
  return n;
}

ResourceManager::InstanceClass* ResourceManager::FindClassLocked(
    const std::string& cls) {
  auto it = instance_classes_.find(cls);
  return it == instance_classes_.end() ? nullptr : &it->second;
}

const ResourceManager::InstanceClass* ResourceManager::FindClassLocked(
    const std::string& cls) const {
  auto it = instance_classes_.find(cls);
  return it == instance_classes_.end() ? nullptr : &it->second;
}

}  // namespace promises
