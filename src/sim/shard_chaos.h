// Federated-shard chaos workload (DESIGN.md §13).
//
// Drives a ShardRouter over a LocalShardCluster with a mix of
// single-shard (fast path) and cross-shard (WS-BA federated) promise
// orders on a lossy transport, then — like the WS-BA harness — runs
// deterministic router crash/recovery rounds: a crash point is armed
// at one of the fedgrant-* boundaries, a federated grant dies mid-
// flight, the corpse router is destroyed and a twin is recovered from
// the shared journal. The audit proves the paper's cross-shard
// atomicity claim operationally:
//
//   * every federated activity resolves to exactly one outcome
//     (closed or compensated — never mixed, never stuck open);
//   * no reservation leaks: after all grants are released and all
//     activities resolved, a full-pool probe grant succeeds on every
//     shard (an orphaned sub-grant would still hold quantity and make
//     the probe reject);
//   * the shard guard holds: every envelope the workload routes lands
//     on the shard it was planned for.

#ifndef PROMISES_SIM_SHARD_CHAOS_H_
#define PROMISES_SIM_SHARD_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "protocol/fault_injector.h"
#include "protocol/retry_policy.h"
#include "protocol/transport.h"

namespace promises {

struct ShardChaosConfig {
  int shards = 4;
  int workers = 4;
  int orders_per_worker = 24;
  /// Probability an order spans two shards (needs shards >= 2).
  double cross_shard_fraction = 0.2;
  /// Initial quantity of each shard's pool. Small enough that
  /// concurrent reservations sometimes collide — rejects exercise the
  /// federated cancel/compensate path.
  int64_t pool_quantity = 48;
  /// Per-order reservation size is uniform in [1, order_qty_max].
  int order_qty_max = 3;
  /// Transport fault schedule; `crash` is zeroed (router crashes are
  /// the deterministic rounds below).
  FaultConfig faults;
  RetryPolicy retry{/*max_attempts=*/12, /*deadline_ms=*/30'000,
                    /*initial_backoff_ms=*/1, /*backoff_multiplier=*/2.0,
                    /*max_backoff_ms=*/8, /*jitter=*/0.25};
  uint64_t seed = 42;
  /// Sequential router crash/recovery rounds after the concurrent
  /// phase. Each arms a fedgrant-* crash point at a random sub-grant
  /// passage, kills the router mid-federated-grant, recovers a twin
  /// from the journal and re-drives. 0 disables.
  int crash_rounds = 0;
  int max_redrives = 16;
  double trace_sampling = 0;
};

struct ShardChaosReport {
  uint64_t orders = 0;
  uint64_t single_shard_orders = 0;
  uint64_t federated_orders = 0;
  uint64_t granted = 0;
  uint64_t rejected = 0;
  uint64_t released = 0;
  uint64_t infra_errors = 0;  ///< Non-crash Request failures.

  /// Federated outcomes accumulated across router incarnations.
  uint64_t fed_closed = 0;
  uint64_t fed_compensated = 0;
  uint64_t fed_mixed = 0;
  uint64_t fed_unresolved = 0;  ///< Open after all re-drives.

  uint64_t crash_rounds_run = 0;
  uint64_t crashes_fired = 0;
  uint64_t worlds_rebuilt = 0;
  uint64_t intents_probed = 0;
  uint64_t orphan_releases = 0;
  uint64_t presumed_aborts = 0;
  uint64_t shard_retransmissions = 0;

  TransportStats transport;
  FaultCounters faults;
  int64_t wall_time_us = 0;
  /// Per-order request latency (concurrent phase, granted or not).
  std::vector<int64_t> grant_us;

  std::vector<PhaseStat> phases;
  uint64_t spans_collected = 0;
  uint64_t spans_dropped = 0;

  /// Cross-shard atomicity violations; empty = pass.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }

  /// Fraction of federated activities that resolved to exactly one
  /// consistent outcome. The CI gate demands 1.0.
  double AtomicConsistency() const {
    uint64_t total =
        fed_closed + fed_compensated + fed_mixed + fed_unresolved;
    return total == 0 ? 1.0
                      : static_cast<double>(fed_closed + fed_compensated) /
                            static_cast<double>(total);
  }
  int64_t GrantPercentileUs(double p) const;
};

/// Runs the workload; deterministic per config.seed (modulo thread
/// interleaving).
ShardChaosReport RunShardChaosWorkload(const ShardChaosConfig& config);

/// One-line human summary.
std::string FormatShardChaosReport(const ShardChaosReport& report);

}  // namespace promises

#endif  // PROMISES_SIM_SHARD_CHAOS_H_
