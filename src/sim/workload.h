// Concurrent ordering workload (experiments E1 and E6).
//
// Models the paper's merchant scenario: concurrent client processes
// check stock, run a long business step (payment, shippers — simulated
// as think time), then purchase. The isolation strategy is pluggable so
// promises, held locks and optimistic check-then-act run the identical
// workload.

#ifndef PROMISES_SIM_WORKLOAD_H_
#define PROMISES_SIM_WORKLOAD_H_

#include <memory>
#include <string>

#include "baseline/ordering.h"
#include "core/promise_manager.h"
#include "sim/metrics.h"

namespace promises {

enum class StrategyKind {
  kPromises,
  kLocking,           // shared check locks, upgrade at purchase
  kLockingExclusive,  // write locks from check time
  kOptimistic,
};

std::string_view StrategyKindToString(StrategyKind k);

struct OrderingWorkloadConfig {
  int num_items = 4;             ///< Distinct widget pools.
  int64_t initial_stock = 200;   ///< Per pool.
  int64_t order_quantity = 5;    ///< Units per order line.
  int items_per_order = 1;       ///< >1 exercises multi-resource orders.
  bool shuffle_item_order = false;  ///< Unordered lock acquisition (E6).
  int workers = 8;
  int orders_per_worker = 50;
  int64_t think_us = 1000;       ///< The "long-running" business step.
  double zipf_theta = 0.0;       ///< Item popularity skew.
  uint64_t seed = 42;
  DurationMs lock_timeout_ms = 250;  ///< For the locking baselines.
};

/// Shared environment: RM with the item pools, transaction manager,
/// promise manager with the inventory service registered.
class OrderingWorld {
 public:
  explicit OrderingWorld(const OrderingWorkloadConfig& config);

  ResourceManager& rm() { return rm_; }
  TransactionManager& tm() { return tm_; }
  PromiseManager& pm() { return *pm_; }
  const std::string& ItemName(int i) const { return items_[i]; }

  /// Refills every pool to the configured stock level (between runs).
  Status ResetStock();

  /// Sum of remaining stock across pools.
  int64_t TotalStock();

 private:
  OrderingWorkloadConfig config_;
  SystemClock clock_;
  ResourceManager rm_;
  TransactionManager tm_;
  std::unique_ptr<PromiseManager> pm_;
  std::vector<std::string> items_;
};

/// Runs the workload with `kind` and returns merged metrics.
OrderingMetrics RunOrderingWorkload(OrderingWorld* world,
                                    const OrderingWorkloadConfig& config,
                                    StrategyKind kind);

/// One row of the striped-locking scaling sweep.
struct ScalingPoint {
  int workers = 0;
  double throughput_ops_s = 0.0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  uint64_t attempts = 0;
  uint64_t completed = 0;
};

/// Measures promise-manager throughput at each worker count on a
/// low-contention mix (fresh world per point, identical per-worker
/// order count). With striped operation locking, workers on disjoint
/// items overlap their think time, so throughput scales with the
/// worker count until the machine saturates.
std::vector<ScalingPoint> RunScalingSweep(
    const OrderingWorkloadConfig& base, const std::vector<int>& worker_counts);

}  // namespace promises

#endif  // PROMISES_SIM_WORKLOAD_H_
